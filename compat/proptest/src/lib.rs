//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace overrides `proptest` with this local implementation. It keeps
//! the same source-level API for the subset the test suite uses — the
//! `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`, `Just`,
//! `prop_oneof!`, range and tuple strategies, `collection::{vec, btree_set}`
//! and the `prop_assert*` macros — but samples deterministically: case `i`
//! of a test always sees the same inputs. There is no shrinking; a failing
//! case reports the case index so it can be replayed exactly.

pub mod test_runner {
    /// Deterministic splitmix64 generator used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Per-case RNG; case `i` always produces the same stream.
        pub fn from_case(case: u32) -> Self {
            Self { state: 0x9e37_79b9_7f4a_7c15 ^ ((case as u64) << 17) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// A failed property-test assertion (carried out of the case body).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            Self(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            let first = self.inner.sample(rng);
            (self.f)(first).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].sample(rng)
        }
    }

    /// Boxes a `prop_oneof!` arm (helper for the macro; avoids `as` casts).
    pub fn union_arm<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng), self.3.sample(rng))
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies (`lo..hi`, exclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let count = self.size.draw(rng);
            (0..count).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Set of up to `size` sampled elements (duplicates collapse, so the
    /// result may be smaller than the drawn count — same as a proptest
    /// set that hit its retry limit).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let count = self.size.draw(rng);
            (0..count).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests. Mirrors proptest's surface:
/// an optional `#![proptest_config(..)]` header, then `fn` items whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::from_case(case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_case() {
        let strat = crate::collection::vec(0..100usize, 0..10);
        for case in 0..16 {
            let mut a = TestRng::from_case(case);
            let mut b = TestRng::from_case(case);
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_case(3);
        for _ in 0..500 {
            let v = (5..9usize).sample(&mut rng);
            assert!((5..9).contains(&v));
            let w = (2..=4u32).sample(&mut rng);
            assert!((2..=4).contains(&w));
            let f = (-1.5..2.5f64).sample(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end: args, oneof, map, asserts, early return.
        #[test]
        fn macro_front_end_works(
            n in 1..8usize,
            pick in prop_oneof![Just(0u8), Just(1u8)],
            xs in crate::collection::vec(0..50u64, 0..6),
        ) {
            prop_assert!((1..8).contains(&n));
            prop_assert_ne!(n, 0);
            if pick == 0 {
                return Ok(());
            }
            prop_assert_eq!(xs.len(), xs.len(), "length is reflexive for {:?}", xs);
        }
    }
}
