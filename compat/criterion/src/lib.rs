//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace overrides `criterion` with this local shim. It keeps the same
//! source-level API the bench targets use (`Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`/`iter_custom`, the `criterion_group!` /
//! `criterion_main!` macros) but executes every benchmark exactly once and
//! prints the single-shot wall time — a smoke run, not a statistical
//! measurement. That keeps all 17 experiment targets compiling and runnable
//! so regressions in the measured code paths still surface.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver. Configuration knobs are accepted and ignored (the
/// shim always runs one iteration).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }
}

/// Identifies one benchmark within a group, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed: Duration::ZERO };
        f(&mut b);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed: Duration::ZERO };
        f(&mut b, input);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, elapsed: Duration) {
        println!("{}/{}: one-shot {elapsed:?} (offline criterion shim)", self.name, id);
    }
}

/// Timing harness handed to benchmark closures; runs the body once.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed = start.elapsed();
    }

    /// The closure receives the iteration count (always 1 here) and
    /// returns its own measured duration.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(1);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).measurement_time(Duration::from_secs(1));
        group.bench_function("iter", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(n * 2);
                }
                start.elapsed()
            })
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default();
        targets = sample_bench
    }

    #[test]
    fn group_runs_all_targets_once() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
