//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace overrides `parking_lot` with this local implementation over
//! `std::sync`. It reproduces the subset of the API the workspace uses:
//! [`Mutex::lock`], [`RwLock::read`]/[`RwLock::write`], and a [`Condvar`]
//! with parking_lot's by-`&mut`-guard calling convention. Like parking_lot
//! (and unlike raw `std::sync`), locks here do not poison: a panic while
//! holding a lock leaves it usable for the next locker, which the runtime
//! relies on when a rank thread dies mid-operation.

use std::sync::PoisonError;
use std::time::Instant;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that recovers from poisoning instead of propagating it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock that recovers from poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable using parking_lot's `&mut MutexGuard` convention.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded mutex and waits for a notification.
    ///
    /// `std`'s condvar consumes the guard and returns a fresh one; to keep
    /// parking_lot's in-place signature we move the guard out through a raw
    /// pointer and write the reacquired guard back. An `AbortOnDrop` sentinel
    /// turns a panic in the window between the two (which would otherwise
    /// double-drop the guard) into an abort.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let bomb = AbortOnDrop;
        unsafe {
            let taken = std::ptr::read(guard);
            let reacquired = self.0.wait(taken).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
        }
        std::mem::forget(bomb);
    }

    /// Waits until notified or `deadline` passes, whichever comes first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let bomb = AbortOnDrop;
        let timed_out;
        unsafe {
            let taken = std::ptr::read(guard);
            let (reacquired, result) =
                self.0.wait_timeout(taken, timeout).unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            std::ptr::write(guard, reacquired);
        }
        std::mem::forget(bomb);
        WaitTimeoutResult(timed_out)
    }

    /// Wakes all waiters. parking_lot returns the number woken; `std` does
    /// not expose it, so this reports 0.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Wakes one waiter (woken-count unavailable over `std`, reports false).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        false
    }
}

struct AbortOnDrop;

impl Drop for AbortOnDrop {
    fn drop(&mut self) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
