//! One-call redistribution conveniences.
//!
//! Thin wrappers that build (or fetch from a [`ScheduleCache`]) the
//! appropriate [`RegionSchedule`] and run it — the "higher-level operations
//! on top of these fundamental M×N data transfer functions" the paper's
//! Summary calls for.

use mxn_dad::{Dad, LocalArray};
use mxn_runtime::{Comm, InterComm, MsgSize, Result};

use crate::cache::ScheduleCache;
use crate::plan::TransferBuffers;
use crate::region_schedule::{RegionSchedule, Role};

/// Sender side of a one-shot cross-program redistribution.
pub fn send_redistributed<T>(
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    local: &LocalArray<T>,
    tag: i32,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    RegionSchedule::for_sender(src, dst, ic.local_rank()).execute_send(ic, local, tag)
}

/// Receiver side of a one-shot cross-program redistribution; allocates the
/// destination storage.
pub fn recv_redistributed<T>(
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    tag: i32,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let mut local = LocalArray::allocate(dst, ic.local_rank());
    RegionSchedule::for_receiver(src, dst, ic.local_rank()).execute_recv(ic, &mut local, tag)?;
    Ok(local)
}

/// Cached-schedule variants, for persistent couplings that transfer many
/// times between the same pair of templates.
pub fn send_redistributed_cached<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    local: &LocalArray<T>,
    tag: i32,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    cache.get_or_build(src, dst, ic.local_rank(), Role::Sender).execute_send(ic, local, tag)
}

/// Receiver counterpart of [`send_redistributed_cached`].
pub fn recv_redistributed_cached<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    tag: i32,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let mut local = LocalArray::allocate(dst, ic.local_rank());
    cache
        .get_or_build(src, dst, ic.local_rank(), Role::Receiver)
        .execute_recv(ic, &mut local, tag)?;
    Ok(local)
}

/// Intra-program redistribution (self-connection, e.g. transpose): every
/// rank of `comm` calls this collectively; returns the new local storage.
pub fn redistribute_within<T>(
    comm: &Comm,
    src: &Dad,
    dst: &Dad,
    src_local: &LocalArray<T>,
    tag: i32,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let send = RegionSchedule::for_sender(src, dst, comm.rank());
    let recv = RegionSchedule::for_receiver(src, dst, comm.rank());
    let mut dst_local = LocalArray::allocate(dst, comm.rank());
    RegionSchedule::execute_local(&send, &recv, comm, src_local, &mut dst_local, tag)?;
    Ok(dst_local)
}

/// Steady-state variant of [`redistribute_within`] for couplings that
/// redistribute every timestep: the caller keeps the built schedules, the
/// destination storage, and a [`TransferBuffers`] pool, so repeated calls
/// perform no schedule construction and no per-region allocation (fresh
/// buffer allocation stops once the pool warms up).
#[allow(clippy::too_many_arguments)]
pub fn redistribute_within_pooled<T>(
    comm: &Comm,
    send: &RegionSchedule,
    recv: &RegionSchedule,
    src_local: &LocalArray<T>,
    dst_local: &mut LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    RegionSchedule::execute_local_pooled(send, recv, comm, src_local, dst_local, tag, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::{Universe, World};

    #[test]
    fn one_shot_convenience() {
        Universe::run(&[2, 3], |_, ctx| {
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[3, 1]).unwrap();
            if ctx.program == 0 {
                let local =
                    LocalArray::from_fn(&src, ctx.comm.rank(), |idx| (idx[0] * 6 + idx[1]) as f32);
                send_redistributed(ctx.intercomm(1), &src, &dst, &local, 0).unwrap();
            } else {
                let local: LocalArray<f32> =
                    recv_redistributed(ctx.intercomm(0), &src, &dst, 0).unwrap();
                for (idx, &v) in local.iter() {
                    assert_eq!(v, (idx[0] * 6 + idx[1]) as f32);
                }
            }
        });
    }

    #[test]
    fn cached_persistent_coupling() {
        Universe::run(&[2, 2], |_, ctx| {
            let e = Extents::new([4, 4]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[1, 2]).unwrap();
            let cache = ScheduleCache::new();
            for step in 0..4 {
                if ctx.program == 0 {
                    let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| {
                        (idx[0] * 4 + idx[1] + step) as u32
                    });
                    send_redistributed_cached(
                        &cache,
                        ctx.intercomm(1),
                        &src,
                        &dst,
                        &local,
                        step as i32,
                    )
                    .unwrap();
                } else {
                    let local: LocalArray<u32> = recv_redistributed_cached(
                        &cache,
                        ctx.intercomm(0),
                        &src,
                        &dst,
                        step as i32,
                    )
                    .unwrap();
                    for (idx, &v) in local.iter() {
                        assert_eq!(v, (idx[0] * 4 + idx[1] + step) as u32);
                    }
                }
            }
            // 4 steps, 1 build: 3 hits.
            assert_eq!(cache.stats(), (3, 1));
        });
    }

    #[test]
    fn pooled_transpose_loop() {
        World::run(3, |p| {
            let comm = p.world();
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[3, 1]).unwrap();
            let dst = Dad::block(e, &[1, 3]).unwrap();
            let send = RegionSchedule::for_sender(&src, &dst, comm.rank());
            let recv = RegionSchedule::for_receiver(&src, &dst, comm.rank());
            let mut dst_local: LocalArray<i64> = LocalArray::allocate(&dst, comm.rank());
            let mut pool = TransferBuffers::new();
            for step in 0..4i64 {
                let src_local = LocalArray::from_fn(&src, comm.rank(), |idx| {
                    (idx[0] * 6 + idx[1]) as i64 + step
                });
                let moved = redistribute_within_pooled(
                    comm,
                    &send,
                    &recv,
                    &src_local,
                    &mut dst_local,
                    step as i32,
                    &mut pool,
                )
                .unwrap();
                comm.barrier().unwrap();
                assert_eq!(moved, 12);
                for (idx, &v) in dst_local.iter() {
                    assert_eq!(v, (idx[0] * 6 + idx[1]) as i64 + step);
                }
            }
            let (_, fresh) = pool.stats();
            assert_eq!(fresh, send.num_messages() as u64, "pool warmed after step 1");
        });
    }

    #[test]
    fn transpose_within_program() {
        World::run(3, |p| {
            let comm = p.world();
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[3, 1]).unwrap();
            let dst = Dad::block(e, &[1, 3]).unwrap();
            let src_local =
                LocalArray::from_fn(&src, comm.rank(), |idx| (idx[0] * 6 + idx[1]) as i64);
            let dst_local = redistribute_within(comm, &src, &dst, &src_local, 9).unwrap();
            assert_eq!(dst_local.len(), 12);
            for (idx, &v) in dst_local.iter() {
                assert_eq!(v, (idx[0] * 6 + idx[1]) as i64);
            }
        });
    }
}
