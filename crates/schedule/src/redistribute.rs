//! One-call redistribution conveniences.
//!
//! Thin wrappers that build (or fetch from a [`ScheduleCache`]) the
//! appropriate [`RegionSchedule`] and run it — the "higher-level operations
//! on top of these fundamental M×N data transfer functions" the paper's
//! Summary calls for.

use mxn_dad::{Dad, LocalArray};
use mxn_runtime::{Comm, InterComm, MsgSize, Result};

use crate::cache::ScheduleCache;
use crate::plan::TransferBuffers;
use crate::region_schedule::{RegionSchedule, Role};
use crate::route::{
    execute_recv_routed, execute_send_routed, execute_within_routed, RedistRoute, RoutePlanner,
};

/// A buffer pool sized for a route: the idle pool may keep at most the
/// budget headroom above the resident shards, so pooling itself can never
/// break the declared peak.
fn budget_pool<T>(route: &RedistRoute) -> TransferBuffers<T> {
    let headroom = route.budget_bytes.saturating_sub(route.peak_bytes.min(route.budget_bytes));
    // Always leave room for at least one in-flight buffer's worth.
    let floor = (route.peak_bytes / 4).max(4096);
    TransferBuffers::with_byte_cap(16, headroom.max(floor) as usize)
}

/// Sender side of a one-shot cross-program redistribution.
pub fn send_redistributed<T>(
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    local: &LocalArray<T>,
    tag: i32,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    RegionSchedule::for_sender(src, dst, ic.local_rank()).execute_send(ic, local, tag)
}

/// Receiver side of a one-shot cross-program redistribution; allocates the
/// destination storage.
pub fn recv_redistributed<T>(
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    tag: i32,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let mut local = LocalArray::allocate(dst, ic.local_rank());
    RegionSchedule::for_receiver(src, dst, ic.local_rank()).execute_recv(ic, &mut local, tag)?;
    Ok(local)
}

/// Cached-schedule variants, for persistent couplings that transfer many
/// times between the same pair of templates.
pub fn send_redistributed_cached<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    local: &LocalArray<T>,
    tag: i32,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    cache.get_or_build(src, dst, ic.local_rank(), Role::Sender).execute_send(ic, local, tag)
}

/// Receiver counterpart of [`send_redistributed_cached`].
pub fn recv_redistributed_cached<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    tag: i32,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let mut local = LocalArray::allocate(dst, ic.local_rank());
    cache
        .get_or_build(src, dst, ic.local_rank(), Role::Receiver)
        .execute_recv(ic, &mut local, tag)?;
    Ok(local)
}

/// [`send_redistributed`] under a per-rank peak-memory budget: plans the
/// fastest route whose declared peak fits `budget_bytes` (direct when it
/// fits, fenced chunked rounds when it does not) and executes it. Both
/// sides must pass the same budget — the route is a pure function of
/// `(src, dst, element size, budget)`, so they agree without negotiating.
pub fn send_redistributed_budgeted<T>(
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    local: &LocalArray<T>,
    tag: i32,
    budget_bytes: u64,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    let route = RoutePlanner::default().plan_for(src, dst, size_of::<T>(), budget_bytes, false);
    let sched = RegionSchedule::for_sender(src, dst, ic.local_rank());
    execute_send_routed(&route, &sched, ic, local, tag, &mut budget_pool(&route))
}

/// Receiver counterpart of [`send_redistributed_budgeted`]; allocates the
/// destination storage.
pub fn recv_redistributed_budgeted<T>(
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    tag: i32,
    budget_bytes: u64,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let route = RoutePlanner::default().plan_for(src, dst, size_of::<T>(), budget_bytes, false);
    let sched = RegionSchedule::for_receiver(src, dst, ic.local_rank());
    let mut local = LocalArray::allocate(dst, ic.local_rank());
    execute_recv_routed(&route, &sched, ic, &mut local, tag, &mut budget_pool(&route))?;
    Ok(local)
}

/// Cached variant of [`send_redistributed_budgeted`] for persistent
/// couplings: both the pairwise schedule and the planned route (keyed on
/// descriptors, element size, and budget) come from `cache`. Epoch 0 — a
/// connection that has healed or reconfigured must use
/// [`send_redistributed_budgeted_cached_for_epoch`] instead.
pub fn send_redistributed_budgeted_cached<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    local: &LocalArray<T>,
    tag: i32,
    budget_bytes: u64,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    send_redistributed_budgeted_cached_for_epoch(cache, ic, src, dst, local, tag, budget_bytes, 0)
}

/// Receiver counterpart of [`send_redistributed_budgeted_cached`].
pub fn recv_redistributed_budgeted_cached<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    tag: i32,
    budget_bytes: u64,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    recv_redistributed_budgeted_cached_for_epoch(cache, ic, src, dst, tag, budget_bytes, 0)
}

/// [`send_redistributed_budgeted_cached`] salted with a recovery or
/// reconfiguration epoch. The schedule cache keys routes on descriptor
/// fingerprints *and* the epoch; an epoch change forces a fresh profile
/// and plan even when the fingerprints are byte-identical to a previous
/// topology's — which grow→shrink cycles that return to the original
/// decomposition produce. Connections that heal or reconfigure must thread
/// their current epoch through here, or a post-heal transfer silently runs
/// a route profiled for the old world.
#[allow(clippy::too_many_arguments)]
pub fn send_redistributed_budgeted_cached_for_epoch<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    local: &LocalArray<T>,
    tag: i32,
    budget_bytes: u64,
    epoch: u64,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    let planner = RoutePlanner::default();
    let route =
        cache.route_for_epoch(src, dst, size_of::<T>(), budget_bytes, false, &planner, epoch);
    let sched = cache.get_or_build_for_epoch(src, dst, ic.local_rank(), Role::Sender, epoch);
    execute_send_routed(&route, &sched, ic, local, tag, &mut budget_pool(&route))
}

/// Receiver counterpart of [`send_redistributed_budgeted_cached_for_epoch`].
pub fn recv_redistributed_budgeted_cached_for_epoch<T>(
    cache: &ScheduleCache,
    ic: &InterComm,
    src: &Dad,
    dst: &Dad,
    tag: i32,
    budget_bytes: u64,
    epoch: u64,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let planner = RoutePlanner::default();
    let route =
        cache.route_for_epoch(src, dst, size_of::<T>(), budget_bytes, false, &planner, epoch);
    let sched = cache.get_or_build_for_epoch(src, dst, ic.local_rank(), Role::Receiver, epoch);
    let mut local = LocalArray::allocate(dst, ic.local_rank());
    execute_recv_routed(&route, &sched, ic, &mut local, tag, &mut budget_pool(&route))?;
    Ok(local)
}

/// Intra-program redistribution (self-connection, e.g. transpose): every
/// rank of `comm` calls this collectively; returns the new local storage.
pub fn redistribute_within<T>(
    comm: &Comm,
    src: &Dad,
    dst: &Dad,
    src_local: &LocalArray<T>,
    tag: i32,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + MsgSize + 'static,
{
    let send = RegionSchedule::for_sender(src, dst, comm.rank());
    let recv = RegionSchedule::for_receiver(src, dst, comm.rank());
    let mut dst_local = LocalArray::allocate(dst, comm.rank());
    RegionSchedule::execute_local(&send, &recv, comm, src_local, &mut dst_local, tag)?;
    Ok(dst_local)
}

/// Steady-state variant of [`redistribute_within`] for couplings that
/// redistribute every timestep: the caller keeps the built schedules, the
/// destination storage, and a [`TransferBuffers`] pool, so repeated calls
/// perform no schedule construction and no per-region allocation (fresh
/// buffer allocation stops once the pool warms up).
#[allow(clippy::too_many_arguments)]
pub fn redistribute_within_pooled<T>(
    comm: &Comm,
    send: &RegionSchedule,
    recv: &RegionSchedule,
    src_local: &LocalArray<T>,
    dst_local: &mut LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    RegionSchedule::execute_local_pooled(send, recv, comm, src_local, dst_local, tag, pool)
}

/// [`redistribute_within`] under a per-rank peak-memory budget. The
/// intra-communicator setting additionally admits the allgather+slice
/// lowering, which the planner picks for tiny fields on wide
/// communicators where per-pair latency dominates.
pub fn redistribute_within_budgeted<T>(
    comm: &Comm,
    src: &Dad,
    dst: &Dad,
    src_local: &LocalArray<T>,
    tag: i32,
    budget_bytes: u64,
) -> Result<LocalArray<T>>
where
    T: Copy + Default + Send + Sync + MsgSize + 'static,
{
    let route = RoutePlanner::default().plan_for(src, dst, size_of::<T>(), budget_bytes, true);
    let send = RegionSchedule::for_sender(src, dst, comm.rank());
    let recv = RegionSchedule::for_receiver(src, dst, comm.rank());
    let mut dst_local = LocalArray::allocate(dst, comm.rank());
    execute_within_routed(
        &route,
        &send,
        &recv,
        comm,
        src,
        src_local,
        &mut dst_local,
        tag,
        &mut budget_pool(&route),
    )?;
    Ok(dst_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::{Universe, World};

    #[test]
    fn one_shot_convenience() {
        Universe::run(&[2, 3], |_, ctx| {
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[3, 1]).unwrap();
            if ctx.program == 0 {
                let local =
                    LocalArray::from_fn(&src, ctx.comm.rank(), |idx| (idx[0] * 6 + idx[1]) as f32);
                send_redistributed(ctx.intercomm(1), &src, &dst, &local, 0).unwrap();
            } else {
                let local: LocalArray<f32> =
                    recv_redistributed(ctx.intercomm(0), &src, &dst, 0).unwrap();
                for (idx, &v) in local.iter() {
                    assert_eq!(v, (idx[0] * 6 + idx[1]) as f32);
                }
            }
        });
    }

    #[test]
    fn cached_persistent_coupling() {
        Universe::run(&[2, 2], |_, ctx| {
            let e = Extents::new([4, 4]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[1, 2]).unwrap();
            let cache = ScheduleCache::new();
            for step in 0..4 {
                if ctx.program == 0 {
                    let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| {
                        (idx[0] * 4 + idx[1] + step) as u32
                    });
                    send_redistributed_cached(
                        &cache,
                        ctx.intercomm(1),
                        &src,
                        &dst,
                        &local,
                        step as i32,
                    )
                    .unwrap();
                } else {
                    let local: LocalArray<u32> = recv_redistributed_cached(
                        &cache,
                        ctx.intercomm(0),
                        &src,
                        &dst,
                        step as i32,
                    )
                    .unwrap();
                    for (idx, &v) in local.iter() {
                        assert_eq!(v, (idx[0] * 4 + idx[1] + step) as u32);
                    }
                }
            }
            // 4 steps, 1 build: 3 hits.
            assert_eq!(cache.stats(), (3, 1));
        });
    }

    #[test]
    fn pooled_transpose_loop() {
        World::run(3, |p| {
            let comm = p.world();
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[3, 1]).unwrap();
            let dst = Dad::block(e, &[1, 3]).unwrap();
            let send = RegionSchedule::for_sender(&src, &dst, comm.rank());
            let recv = RegionSchedule::for_receiver(&src, &dst, comm.rank());
            let mut dst_local: LocalArray<i64> = LocalArray::allocate(&dst, comm.rank());
            let mut pool = TransferBuffers::new();
            for step in 0..4i64 {
                let src_local = LocalArray::from_fn(&src, comm.rank(), |idx| {
                    (idx[0] * 6 + idx[1]) as i64 + step
                });
                let moved = redistribute_within_pooled(
                    comm,
                    &send,
                    &recv,
                    &src_local,
                    &mut dst_local,
                    step as i32,
                    &mut pool,
                )
                .unwrap();
                comm.barrier().unwrap();
                assert_eq!(moved, 12);
                for (idx, &v) in dst_local.iter() {
                    assert_eq!(v, (idx[0] * 6 + idx[1]) as i64 + step);
                }
            }
            let (_, fresh) = pool.stats();
            assert_eq!(fresh, send.num_messages() as u64, "pool warmed after step 1");
        });
    }

    #[test]
    fn budgeted_transfer_chunks_under_tight_budget() {
        use crate::route::{RedistProfile, RouteKind, RoutePlanner};
        let e = Extents::new([24, 24]);
        let src = Dad::block(e.clone(), &[2, 1]).unwrap();
        let dst = Dad::block(e.clone(), &[3, 1]).unwrap();
        // Tight enough that the full receive set cannot sit in the
        // mailbox, loose enough that fenced chunks fit.
        let budget = 2000u64;
        let p = RedistProfile::compute(&src, &dst, size_of::<f32>());
        let route = RoutePlanner::default().plan(&p, budget, false);
        assert_eq!(route.kind, RouteKind::Chunked);
        assert!(route.fits && route.rounds() > 1);
        Universe::run(&[2, 3], move |_, ctx| {
            let e = Extents::new([24, 24]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[3, 1]).unwrap();
            if ctx.program == 0 {
                let local =
                    LocalArray::from_fn(&src, ctx.comm.rank(), |idx| (idx[0] * 24 + idx[1]) as f32);
                send_redistributed_budgeted(ctx.intercomm(1), &src, &dst, &local, 0, budget)
                    .unwrap();
            } else {
                let local: LocalArray<f32> =
                    recv_redistributed_budgeted(ctx.intercomm(0), &src, &dst, 0, budget).unwrap();
                assert_eq!(local.len(), 192);
                for (idx, &v) in local.iter() {
                    assert_eq!(v, (idx[0] * 24 + idx[1]) as f32);
                }
            }
        });
    }

    #[test]
    fn budgeted_cached_replans_when_only_the_epoch_changes() {
        // A grow→shrink cycle that returns to the original decomposition
        // reproduces byte-identical descriptor fingerprints; the epoch salt
        // is then the *only* thing forcing a re-profile, and the plain
        // `*_budgeted_cached` wrappers used to drop it (always epoch 0).
        let budget = 2000u64;
        Universe::run(&[2, 3], move |_, ctx| {
            let e = Extents::new([24, 24]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[3, 1]).unwrap();
            let cache = ScheduleCache::new();
            for epoch in 0..2u64 {
                if ctx.program == 0 {
                    let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| {
                        (idx[0] * 24 + idx[1]) as f32 + epoch as f32
                    });
                    send_redistributed_budgeted_cached_for_epoch(
                        &cache,
                        ctx.intercomm(1),
                        &src,
                        &dst,
                        &local,
                        epoch as i32,
                        budget,
                        epoch,
                    )
                    .unwrap();
                } else {
                    let local: LocalArray<f32> = recv_redistributed_budgeted_cached_for_epoch(
                        &cache,
                        ctx.intercomm(0),
                        &src,
                        &dst,
                        epoch as i32,
                        budget,
                        epoch,
                    )
                    .unwrap();
                    // The post-reconfiguration transfer still fits: fresh
                    // plan, correct contents.
                    for (idx, &v) in local.iter() {
                        assert_eq!(v, (idx[0] * 24 + idx[1]) as f32 + epoch as f32);
                    }
                }
            }
            assert_eq!(
                cache.routes_len(),
                2,
                "identical fingerprints must still re-plan across epochs"
            );
        });
    }

    #[test]
    fn budgeted_within_matches_direct_results() {
        World::run(3, |p| {
            let comm = p.world();
            let e = Extents::new([12, 12]);
            let src = Dad::block(e.clone(), &[3, 1]).unwrap();
            let dst = Dad::block(e, &[1, 3]).unwrap();
            let src_local =
                LocalArray::from_fn(&src, comm.rank(), |idx| (idx[0] * 12 + idx[1]) as i64);
            // Starved budget → best-effort chunked; huge budget → whatever
            // the model calls fastest. Both must produce identical data.
            for budget in [1u64, u64::MAX] {
                let got =
                    redistribute_within_budgeted(comm, &src, &dst, &src_local, 5, budget).unwrap();
                for (idx, &v) in got.iter() {
                    assert_eq!(v, (idx[0] * 12 + idx[1]) as i64, "budget {budget} at {idx:?}");
                }
            }
        });
    }

    #[test]
    fn transpose_within_program() {
        World::run(3, |p| {
            let comm = p.world();
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[3, 1]).unwrap();
            let dst = Dad::block(e, &[1, 3]).unwrap();
            let src_local =
                LocalArray::from_fn(&src, comm.rank(), |idx| (idx[0] * 6 + idx[1]) as i64);
            let dst_local = redistribute_within(comm, &src, &dst, &src_local, 9).unwrap();
            assert_eq!(dst_local.len(), 12);
            for (idx, &v) in dst_local.iter() {
                assert_eq!(v, (idx[0] * 6 + idx[1]) as i64);
            }
        });
    }
}
