//! Ghost-cell (halo) exchange schedules.
//!
//! The paper's data-parallel components "perform operations on their local
//! portion of a distributed array" (§2.2.2) — and every stencil-shaped
//! operation needs its neighbours' boundary cells. A [`HaloSchedule`] is
//! the intra-component counterpart of the M×N schedule: built from the
//! same DAD, it exchanges each rank's boundary regions with the owners of
//! the adjacent cells, into a ghost-augmented local buffer.
//!
//! Ghost storage layout: each rank allocates its patch *expanded* by the
//! halo width on every side (clipped at the global boundary); the
//! interior is the owned patch, the fringe is filled by
//! [`HaloSchedule::exchange`].

use crate::plan::TransferBuffers;
use mxn_dad::{region_runs, CopyRun, Dad, LocalArray, Region};
use mxn_runtime::{record_schedule_build, record_schedule_copy, Comm, MsgSize, Result};

/// A ghost-augmented view of one rank's (single) patch.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostedPatch<T> {
    /// The owned (interior) region in global coordinates.
    pub owned: Region,
    /// The expanded region including the halo fringe.
    pub expanded: Region,
    /// Storage for `expanded`, row-major.
    pub data: Vec<T>,
}

impl<T: Copy + Default> GhostedPatch<T> {
    fn allocate(owned: Region, expanded: Region) -> Self {
        let data = vec![T::default(); expanded.len()];
        GhostedPatch { owned, expanded, data }
    }
}

impl<T: Copy> GhostedPatch<T> {
    /// Value at a global index inside the expanded region.
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.expanded.local_offset(idx)]
    }

    /// Sets a value at a global index inside the expanded region.
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.expanded.local_offset(idx);
        self.data[off] = v;
    }

    /// Copies the owned interior in from plain local storage.
    pub fn load_interior(&mut self, local: &LocalArray<T>) {
        for idx in self.owned.iter() {
            let off = self.expanded.local_offset(&idx);
            self.data[off] = *local.get(&idx).expect("interior is owned");
        }
    }
}

/// A reusable halo-exchange plan for one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloSchedule {
    /// `(peer, region)` pairs this rank sends (regions it owns that lie in
    /// peers' halos).
    sends: Vec<(usize, Region)>,
    /// `(peer, region)` pairs this rank receives (its halo cells, grouped
    /// by owner).
    recvs: Vec<(usize, Region)>,
    /// Precompiled copy runs into the expanded buffer, parallel to `sends`.
    send_runs: Vec<Vec<CopyRun>>,
    /// Precompiled copy runs into the expanded buffer, parallel to `recvs`.
    recv_runs: Vec<Vec<CopyRun>>,
    owned: Region,
    expanded: Region,
}

fn expand(region: &Region, width: usize, extents: &[usize]) -> Region {
    let lo: Vec<usize> = region.lo().iter().map(|&l| l.saturating_sub(width)).collect();
    let hi: Vec<usize> =
        region.hi().iter().zip(extents).map(|(&h, &e)| (h + width).min(e)).collect();
    Region::new(lo, hi)
}

impl HaloSchedule {
    /// Builds the halo plan for `rank` of `dad` with the given halo
    /// `width`. The descriptor must give each rank exactly one patch
    /// (block-family decompositions; cyclic layouts have no meaningful
    /// halos).
    ///
    /// # Panics
    /// If the rank owns zero or multiple patches.
    pub fn build(dad: &Dad, rank: usize, width: usize) -> HaloSchedule {
        let patches = dad.patches(rank);
        assert_eq!(patches.len(), 1, "halo exchange needs one patch per rank");
        let owned = patches[0].clone();
        let extents = dad.extents().dims().to_vec();
        let expanded = expand(&owned, width, &extents);

        // My halo: expanded minus owned, grouped by owning peer. Candidate
        // neighbours come from the descriptor's overlap index queried with
        // the expanded region — a peer whose halo reaches my patch also has
        // a patch within `width` of mine, so its patch intersects my
        // expanded region and the one query covers both directions.
        let hits = dad.overlap_index().query(&expanded);
        let mut recvs = Vec::new();
        let mut sends = Vec::new();
        for (peer, _) in &hits.hits {
            let peer = *peer;
            if peer == rank {
                continue;
            }
            for peer_patch in dad.patches(peer) {
                if let Some(overlap) = expanded.intersect(&peer_patch) {
                    recvs.push((peer, overlap));
                }
                // Symmetric: what of mine lies in the peer's halo.
                let peer_expanded = expand(&peer_patch, width, &extents);
                if let Some(overlap) = peer_expanded.intersect(&owned) {
                    sends.push((peer, overlap));
                }
            }
        }
        sends.sort_by_key(|a| (a.0, a.1.lo().to_vec()));
        recvs.sort_by_key(|a| (a.0, a.1.lo().to_vec()));
        record_schedule_build(hits.probes as u64, sends.len() as u64);
        // Precompile each message's copy runs against the expanded buffer,
        // so exchanges move whole rows instead of single elements.
        let runs_for = |list: &[(usize, Region)]| -> Vec<Vec<CopyRun>> {
            list.iter().map(|(_, r)| region_runs([&expanded], r)).collect()
        };
        let send_runs = runs_for(&sends);
        let recv_runs = runs_for(&recvs);
        HaloSchedule { sends, recvs, send_runs, recv_runs, owned, expanded }
    }

    /// The rank's owned region.
    pub fn owned(&self) -> &Region {
        &self.owned
    }

    /// The owned region expanded by the halo.
    pub fn expanded(&self) -> &Region {
        &self.expanded
    }

    /// Number of neighbour messages sent per exchange.
    pub fn num_messages(&self) -> usize {
        self.sends.len()
    }

    /// The `(peer, region)` pairs this rank sends.
    pub fn sends(&self) -> &[(usize, Region)] {
        &self.sends
    }

    /// The `(peer, region)` pairs this rank receives.
    pub fn recvs(&self) -> &[(usize, Region)] {
        &self.recvs
    }

    /// Total halo cells received per exchange.
    pub fn halo_cells(&self) -> usize {
        self.recvs.iter().map(|(_, r)| r.len()).sum()
    }

    /// Allocates the ghost-augmented buffer and loads the interior.
    pub fn allocate<T: Copy + Default>(&self, local: &LocalArray<T>) -> GhostedPatch<T> {
        let mut g = GhostedPatch::allocate(self.owned.clone(), self.expanded.clone());
        g.load_interior(local);
        g
    }

    /// One halo exchange: sends this rank's boundary cells and fills the
    /// ghost fringe from the neighbours. Collective over `comm`.
    pub fn exchange<T>(&self, comm: &Comm, ghosted: &mut GhostedPatch<T>, tag: i32) -> Result<()>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        let mut pool = TransferBuffers::new();
        self.exchange_pooled(comm, ghosted, tag, &mut pool)
    }

    /// [`Self::exchange`] with a caller-owned buffer pool: every rank both
    /// sends and receives, so received buffers satisfy the next step's
    /// leases and steady-state stencil loops stop allocating.
    pub fn exchange_pooled<T>(
        &self,
        comm: &Comm,
        ghosted: &mut GhostedPatch<T>,
        tag: i32,
        pool: &mut TransferBuffers<T>,
    ) -> Result<()>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(
            ghosted.expanded, self.expanded,
            "ghosted buffer does not match this schedule's expanded region"
        );
        for ((peer, region), runs) in self.sends.iter().zip(&self.send_runs) {
            let mut buf = pool.lease(region.len());
            for run in runs {
                buf.extend_from_slice(&ghosted.data[run.patch_off..run.patch_off + run.len]);
            }
            record_schedule_copy(buf.len() as u64, runs.len() as u64);
            comm.send(*peer, tag, buf)?;
        }
        for ((peer, _), runs) in self.recvs.iter().zip(&self.recv_runs) {
            let buf: Vec<T> = comm.recv(*peer, tag)?;
            for run in runs {
                ghosted.data[run.patch_off..run.patch_off + run.len]
                    .copy_from_slice(&buf[run.sub_off..run.sub_off + run.len]);
            }
            record_schedule_copy(buf.len() as u64, runs.len() as u64);
            pool.recycle(buf);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::World;

    fn dad_1d(n: usize, p: usize) -> Dad {
        Dad::block(Extents::new([n]), &[p]).unwrap()
    }

    #[test]
    fn plan_shape_1d() {
        let dad = dad_1d(12, 3);
        let mid = HaloSchedule::build(&dad, 1, 2);
        assert_eq!(mid.owned(), &Region::new([4], [8]));
        assert_eq!(mid.expanded(), &Region::new([2], [10]));
        assert_eq!(mid.num_messages(), 2, "two neighbours");
        assert_eq!(mid.halo_cells(), 4);
        // Edge ranks clip at the boundary.
        let left = HaloSchedule::build(&dad, 0, 2);
        assert_eq!(left.expanded(), &Region::new([0], [6]));
        assert_eq!(left.halo_cells(), 2);
    }

    #[test]
    fn exchange_fills_ghosts_1d() {
        World::run(3, |p| {
            let comm = p.world();
            let dad = dad_1d(12, 3);
            let plan = HaloSchedule::build(&dad, comm.rank(), 2);
            let local = LocalArray::from_fn(&dad, comm.rank(), |idx| idx[0] as i64 * 10);
            let mut g = plan.allocate(&local);
            plan.exchange(comm, &mut g, 7).unwrap();
            // Every cell of the expanded region now holds its global value.
            for idx in plan.expanded().clone().iter() {
                assert_eq!(g.get(&idx), idx[0] as i64 * 10, "at {idx:?}");
            }
        });
    }

    #[test]
    fn exchange_2d_grid() {
        World::run(4, |p| {
            let comm = p.world();
            let dad = Dad::block(Extents::new([8, 8]), &[2, 2]).unwrap();
            let plan = HaloSchedule::build(&dad, comm.rank(), 1);
            let local = LocalArray::from_fn(&dad, comm.rank(), |idx| (idx[0] * 8 + idx[1]) as f64);
            let mut g = plan.allocate(&local);
            plan.exchange(comm, &mut g, 3).unwrap();
            for idx in plan.expanded().clone().iter() {
                assert_eq!(g.get(&idx), (idx[0] * 8 + idx[1]) as f64);
            }
            // Interior ranks exchange with 3 neighbours (2 edges + corner).
            assert_eq!(plan.num_messages(), 3);
        });
    }

    #[test]
    fn stencil_after_exchange_matches_serial() {
        // A 1-D 3-point average computed in parallel with halos equals the
        // serial computation.
        let n = 16;
        let serial: Vec<f64> = {
            let vals: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
            (0..n)
                .map(|i| {
                    let l = if i == 0 { vals[0] } else { vals[i - 1] };
                    let r = if i == n - 1 { vals[n - 1] } else { vals[i + 1] };
                    (l + vals[i] + r) / 3.0
                })
                .collect()
        };
        let serial = std::sync::Arc::new(serial);
        World::run(4, move |p| {
            let comm = p.world();
            let dad = dad_1d(n, 4);
            let plan = HaloSchedule::build(&dad, comm.rank(), 1);
            let local = LocalArray::from_fn(&dad, comm.rank(), |idx| (idx[0] * idx[0]) as f64);
            let mut g = plan.allocate(&local);
            plan.exchange(comm, &mut g, 0).unwrap();
            for idx in plan.owned().clone().iter() {
                let i = idx[0];
                let left = if i == 0 { g.get(&[0]) } else { g.get(&[i - 1]) };
                let right = if i == n - 1 { g.get(&[n - 1]) } else { g.get(&[i + 1]) };
                let avg = (left + g.get(&[i]) + right) / 3.0;
                assert_eq!(avg, serial[i], "stencil at {i}");
            }
        });
    }

    #[test]
    #[should_panic(expected = "one patch")]
    fn multi_patch_layout_rejected() {
        use mxn_dad::{AxisDist, Template};
        let dad = Dad::regular(
            Template::new(Extents::new([8]), vec![AxisDist::Cyclic { nprocs: 2 }]).unwrap(),
        );
        HaloSchedule::build(&dad, 0, 1);
    }

    #[test]
    fn build_probes_only_neighbours() {
        use mxn_runtime::{reset_schedule_stats, schedule_stats};
        let dad = dad_1d(4096, 256);
        reset_schedule_stats();
        let plan = HaloSchedule::build(&dad, 128, 2);
        let stats = schedule_stats();
        assert_eq!(plan.num_messages(), 2, "two neighbours");
        assert!(
            stats.peer_probes <= 4,
            "probed {} of 256 ranks for a width-2 halo",
            stats.peer_probes
        );
    }

    #[test]
    fn pooled_exchange_stops_allocating_after_first_step() {
        World::run(2, |p| {
            let comm = p.world();
            let dad = dad_1d(8, 2);
            let plan = HaloSchedule::build(&dad, comm.rank(), 1);
            let local = LocalArray::from_fn(&dad, comm.rank(), |idx| idx[0] as i64);
            let mut g = plan.allocate(&local);
            let mut pool = TransferBuffers::new();
            for step in 0..5 {
                plan.exchange_pooled(comm, &mut g, step, &mut pool).unwrap();
            }
            let (leases, fresh) = pool.stats();
            assert_eq!(leases, 5);
            assert_eq!(fresh, 1, "only the first step allocates");
            for idx in plan.expanded().clone().iter() {
                assert_eq!(g.get(&idx), idx[0] as i64);
            }
        });
    }

    #[test]
    fn repeated_exchanges_reuse_the_plan() {
        World::run(2, |p| {
            let comm = p.world();
            let dad = dad_1d(8, 2);
            let plan = HaloSchedule::build(&dad, comm.rank(), 1);
            let local = LocalArray::from_fn(&dad, comm.rank(), |idx| idx[0] as i64);
            let mut g = plan.allocate(&local);
            for step in 0..5 {
                plan.exchange(comm, &mut g, step).unwrap();
                for idx in plan.expanded().clone().iter() {
                    assert_eq!(g.get(&idx), idx[0] as i64);
                }
            }
        });
    }
}
