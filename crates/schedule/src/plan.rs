//! Precompiled copy plans and pooled transfer buffers.
//!
//! The second layer of the schedule pipeline: at build time every
//! [`crate::PairRegions`] is resolved against the local patch layout into a
//! [`CopyPlan`] — a flat list of `(patch, patch_offset, buffer_offset,
//! length)` runs — so steady-state transfer execution is nothing but
//! `copy_from_slice` loops. Combined with a [`TransferBuffers`] pool the
//! per-step work allocates no per-region `Vec`s at all: one leased buffer
//! per peer, refilled in place (the memory-efficient-redistribution model
//! of the compiled-collective literature).

use mxn_dad::{region_runs, CopyRun, LocalArray, Region};
use mxn_runtime::{record_buffer_lease, record_pool_bytes, record_schedule_copy};

/// A precompiled pack/unpack program for one peer: contiguous runs that
/// tile the peer's packed buffer `[0, total)`, each resolved to a patch
/// index and offset in the local storage layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyPlan {
    /// Runs in ascending buffer-offset order (`sub_off` here is the offset
    /// into the packed per-peer buffer).
    runs: Vec<CopyRun>,
    /// Total elements moved per execution.
    total: usize,
}

impl CopyPlan {
    /// Compiles the plan for a peer's region list against this rank's
    /// patch layout. `regions` must each be fully covered by `patches`
    /// (they are, by construction: every pair region is an intersection
    /// with one of this rank's patches).
    pub fn compile(patches: &[Region], regions: &[Region]) -> CopyPlan {
        let mut runs = Vec::new();
        let mut base = 0;
        for region in regions {
            for mut run in region_runs(patches.iter(), region) {
                run.sub_off += base;
                runs.push(run);
            }
            base += region.len();
        }
        CopyPlan { runs, total: base }
    }

    /// Like [`Self::compile`], but with known provenance: `parts` pairs
    /// each region with the index of the single patch that covers it, so
    /// compilation is linear in the region count instead of scanning every
    /// patch per region (schedule builders know the source patch because
    /// each pair region *is* an intersection with one local patch).
    pub fn from_sources(patches: &[Region], parts: &[(usize, Region)]) -> CopyPlan {
        let mut runs = Vec::new();
        let mut base = 0;
        for (pi, region) in parts {
            for mut run in region_runs([&patches[*pi]], region) {
                run.patch = *pi;
                run.sub_off += base;
                runs.push(run);
            }
            base += region.len();
        }
        CopyPlan { runs, total: base }
    }

    /// Elements moved per execution.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of contiguous copy runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Packs the planned elements into `out` (cleared first) with straight
    /// `extend_from_slice` runs — no per-region allocation, no index
    /// arithmetic beyond the precompiled offsets.
    pub fn pack_into<T: Copy>(&self, local: &LocalArray<T>, out: &mut Vec<T>) {
        out.clear();
        out.reserve(self.total);
        for run in &self.runs {
            let (_, data) = local.patch(run.patch);
            out.extend_from_slice(&data[run.patch_off..run.patch_off + run.len]);
        }
        debug_assert_eq!(out.len(), self.total);
        record_schedule_copy(self.total as u64, self.runs.len() as u64);
        mxn_trace::emit_instant(
            mxn_trace::EventId::CopyPack,
            [self.total as u64, self.runs.len() as u64, 0, 0],
        );
    }

    /// Packs elements `[start, end)` of the canonical packed buffer into
    /// `out` (cleared first) — the chunked-route primitive: one plan, many
    /// bounded rounds, no per-round plan recompilation. Run boundaries need
    /// not align with the range; partial runs are clipped.
    pub fn pack_range_into<T: Copy>(
        &self,
        local: &LocalArray<T>,
        out: &mut Vec<T>,
        start: usize,
        end: usize,
    ) {
        debug_assert!(start <= end && end <= self.total, "range out of plan bounds");
        out.clear();
        out.reserve(end - start);
        let mut nruns = 0u64;
        // First run that ends after `start`: runs tile [0, total) in
        // ascending sub_off order, so partition on run end.
        let first = self.runs.partition_point(|r| r.sub_off + r.len <= start);
        for run in &self.runs[first..] {
            if run.sub_off >= end {
                break;
            }
            let lo = start.max(run.sub_off);
            let hi = end.min(run.sub_off + run.len);
            let off = run.patch_off + (lo - run.sub_off);
            let (_, data) = local.patch(run.patch);
            out.extend_from_slice(&data[off..off + (hi - lo)]);
            nruns += 1;
        }
        debug_assert_eq!(out.len(), end - start);
        record_schedule_copy((end - start) as u64, nruns);
        mxn_trace::emit_instant(mxn_trace::EventId::CopyPack, [(end - start) as u64, nruns, 0, 0]);
    }

    /// Unpacks `data`, holding elements `[start, end)` of the canonical
    /// packed buffer, into local storage — the receive side of
    /// [`Self::pack_range_into`].
    pub fn unpack_range_from<T: Copy>(
        &self,
        local: &mut LocalArray<T>,
        data: &[T],
        start: usize,
        end: usize,
    ) {
        debug_assert!(start <= end && end <= self.total, "range out of plan bounds");
        assert_eq!(data.len(), end - start, "chunk length mismatch");
        let mut nruns = 0u64;
        let first = self.runs.partition_point(|r| r.sub_off + r.len <= start);
        for run in &self.runs[first..] {
            if run.sub_off >= end {
                break;
            }
            let lo = start.max(run.sub_off);
            let hi = end.min(run.sub_off + run.len);
            let off = run.patch_off + (lo - run.sub_off);
            let (_, buf) = local.patch_mut(run.patch);
            buf[off..off + (hi - lo)].copy_from_slice(&data[lo - start..hi - start]);
            nruns += 1;
        }
        record_schedule_copy((end - start) as u64, nruns);
        mxn_trace::emit_instant(
            mxn_trace::EventId::CopyUnpack,
            [(end - start) as u64, nruns, 0, 0],
        );
    }

    /// Unpacks a packed per-peer buffer into local storage with straight
    /// `copy_from_slice` runs.
    pub fn unpack_from<T: Copy>(&self, local: &mut LocalArray<T>, data: &[T]) {
        assert_eq!(data.len(), self.total, "packed buffer length mismatch");
        for run in &self.runs {
            let (_, buf) = local.patch_mut(run.patch);
            buf[run.patch_off..run.patch_off + run.len]
                .copy_from_slice(&data[run.sub_off..run.sub_off + run.len]);
        }
        record_schedule_copy(self.total as u64, self.runs.len() as u64);
        mxn_trace::emit_instant(
            mxn_trace::EventId::CopyUnpack,
            [self.total as u64, self.runs.len() as u64, 0, 0],
        );
    }
}

/// A pool of reusable transfer buffers.
///
/// The runtime's transport moves payloads by ownership, so a sent buffer
/// leaves the sender — but every *received* buffer can be recycled, and in
/// symmetric exchanges (transposes, halo steps, persistent couplings that
/// send and receive) buffers circulate: after the first step, leases are
/// satisfied from the free list and fresh allocation stops.
#[derive(Debug)]
pub struct TransferBuffers<T> {
    free: Vec<Vec<T>>,
    max_free: usize,
    /// Maximum bytes parked idle across the free list; recycling past the
    /// cap drops the buffer (largest-first trim), so one huge transfer does
    /// not pin its high-water allocation for the rest of the run.
    byte_cap: usize,
    /// Bytes currently parked idle (sum of free-list capacities).
    idle_bytes: usize,
    leases: u64,
    fresh_allocs: u64,
}

impl<T> Default for TransferBuffers<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TransferBuffers<T> {
    /// An empty pool keeping at most 32 idle buffers, unlimited idle bytes.
    pub fn new() -> Self {
        Self::with_max_free(32)
    }

    /// An empty pool keeping at most `max_free` idle buffers (recycling
    /// beyond that drops the buffer, bounding memory in one-directional
    /// flows where receives outnumber sends).
    pub fn with_max_free(max_free: usize) -> Self {
        Self::with_byte_cap(max_free, usize::MAX)
    }

    /// An empty pool bounded both ways: at most `max_free` idle buffers
    /// *and* at most `byte_cap` idle bytes.
    pub fn with_byte_cap(max_free: usize, byte_cap: usize) -> Self {
        TransferBuffers {
            free: Vec::new(),
            max_free,
            byte_cap,
            idle_bytes: 0,
            leases: 0,
            fresh_allocs: 0,
        }
    }

    fn buf_bytes(buf: &Vec<T>) -> usize {
        buf.capacity() * std::mem::size_of::<T>()
    }

    /// Takes a cleared buffer with at least `capacity` reserved, reusing a
    /// pooled one when available.
    pub fn lease(&mut self, capacity: usize) -> Vec<T> {
        self.leases += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.idle_bytes -= Self::buf_bytes(&buf);
                record_buffer_lease(false);
                mxn_trace::emit_instant(
                    mxn_trace::EventId::BufferLease,
                    [0, capacity as u64, 0, 0],
                );
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => {
                self.fresh_allocs += 1;
                record_buffer_lease(true);
                mxn_trace::emit_instant(
                    mxn_trace::EventId::BufferLease,
                    [1, capacity as u64, 0, 0],
                );
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a buffer to the pool (dropped if the pool is full by count
    /// or the byte cap would be exceeded). Raises the thread's
    /// `pool_peak_bytes` high-water mark.
    pub fn recycle(&mut self, mut buf: Vec<T>) {
        let bytes = Self::buf_bytes(&buf);
        if self.free.len() < self.max_free && self.idle_bytes.saturating_add(bytes) <= self.byte_cap
        {
            buf.clear();
            self.idle_bytes += bytes;
            self.free.push(buf);
            record_pool_bytes(self.idle_bytes as u64);
        }
    }

    /// Drops idle buffers, largest first, until at most `bytes` remain
    /// parked — reclaims a one-off spike without touching the cap for
    /// future recycling.
    pub fn trim_to(&mut self, bytes: usize) {
        while self.idle_bytes > bytes {
            let (i, _) = self
                .free
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.capacity())
                .expect("idle_bytes > 0 implies a free buffer");
            let dropped = self.free.swap_remove(i);
            self.idle_bytes -= Self::buf_bytes(&dropped);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Bytes currently parked idle in the pool.
    pub fn idle_bytes(&self) -> usize {
        self.idle_bytes
    }

    /// `(leases, fresh_allocs)` so far: in steady state `fresh_allocs`
    /// stays put while `leases` keeps climbing.
    pub fn stats(&self) -> (u64, u64) {
        (self.leases, self.fresh_allocs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::{Dad, Extents};

    #[test]
    fn plan_pack_unpack_roundtrip() {
        let dad = Dad::block(Extents::new([4, 4]), &[2, 2]).unwrap();
        let patches = dad.patches(0); // [0..2) x [0..2)
        let regions = vec![Region::new([0, 0], [1, 2]), Region::new([1, 0], [2, 1])];
        let plan = CopyPlan::compile(&patches, &regions);
        assert_eq!(plan.total(), 3);
        assert_eq!(plan.num_runs(), 2);

        let local = LocalArray::from_fn(&dad, 0, |idx| (idx[0] * 4 + idx[1]) as i64);
        let mut buf = Vec::new();
        plan.pack_into(&local, &mut buf);
        assert_eq!(buf, vec![0, 1, 4]);

        let mut dst: LocalArray<i64> = LocalArray::allocate(&dad, 0);
        plan.unpack_from(&mut dst, &buf);
        assert_eq!(*dst.get(&[0, 1]).unwrap(), 1);
        assert_eq!(*dst.get(&[1, 0]).unwrap(), 4);
        assert_eq!(*dst.get(&[1, 1]).unwrap(), 0, "outside plan untouched");
    }

    #[test]
    fn pack_into_reuses_capacity() {
        let dad = Dad::block(Extents::new([8]), &[1]).unwrap();
        let patches = dad.patches(0);
        let plan = CopyPlan::compile(&patches, &[Region::new([2], [6])]);
        let local = LocalArray::from_fn(&dad, 0, |idx| idx[0] as u32);
        let mut buf = Vec::new();
        plan.pack_into(&local, &mut buf);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for _ in 0..10 {
            plan.pack_into(&local, &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "no growth across repeated packs");
        assert_eq!(buf.as_ptr(), ptr, "no reallocation across repeated packs");
    }

    #[test]
    fn pool_circulates_buffers() {
        let mut pool: TransferBuffers<u8> = TransferBuffers::new();
        let a = pool.lease(16);
        assert_eq!(pool.stats(), (1, 1), "first lease allocates");
        pool.recycle(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.lease(8);
        assert_eq!(pool.stats(), (2, 1), "second lease reuses");
        assert!(b.capacity() >= 8);
        pool.recycle(b);
    }

    #[test]
    fn pool_bounds_idle_buffers() {
        let mut pool: TransferBuffers<u8> = TransferBuffers::with_max_free(2);
        for _ in 0..5 {
            pool.recycle(Vec::with_capacity(4));
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn range_pack_unpack_matches_full_plan() {
        let dad = Dad::block(Extents::new([6, 6]), &[2, 3]).unwrap();
        let patches = dad.patches(0);
        let regions = vec![
            Region::new([0, 0], [2, 1]),
            Region::new([1, 1], [3, 2]),
            Region::new([2, 0], [3, 2]),
        ];
        let plan = CopyPlan::compile(&patches, &regions);
        let local = LocalArray::from_fn(&dad, 0, |idx| (idx[0] * 6 + idx[1]) as i64);
        let mut full = Vec::new();
        plan.pack_into(&local, &mut full);

        // Every split point, including run-splitting ones, reproduces the
        // full buffer and a full unpack.
        for cut in 0..=plan.total() {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            plan.pack_range_into(&local, &mut a, 0, cut);
            plan.pack_range_into(&local, &mut b, cut, plan.total());
            a.extend_from_slice(&b);
            assert_eq!(a, full, "cut at {cut}");

            let mut dst: LocalArray<i64> = LocalArray::allocate(&dad, 0);
            plan.unpack_range_from(&mut dst, &full[..cut], 0, cut);
            plan.unpack_range_from(&mut dst, &full[cut..], cut, plan.total());
            let mut roundtrip = Vec::new();
            plan.pack_into(&dst, &mut roundtrip);
            assert_eq!(roundtrip, full, "unpack cut at {cut}");
        }
    }

    #[test]
    fn pool_byte_cap_refuses_oversized_recycle() {
        let mut pool: TransferBuffers<u8> = TransferBuffers::with_byte_cap(32, 100);
        pool.recycle(Vec::with_capacity(60));
        assert_eq!((pool.idle(), pool.idle_bytes()), (1, 60));
        pool.recycle(Vec::with_capacity(60));
        assert_eq!((pool.idle(), pool.idle_bytes()), (1, 60), "second buffer would breach the cap");
        pool.recycle(Vec::with_capacity(40));
        assert_eq!((pool.idle(), pool.idle_bytes()), (2, 100), "fits exactly");
        let buf = pool.lease(8);
        assert!(pool.idle_bytes() < 100);
        pool.recycle(buf);
    }

    #[test]
    fn pool_trim_drops_largest_first() {
        let mut pool: TransferBuffers<u8> = TransferBuffers::new();
        pool.recycle(Vec::with_capacity(10));
        pool.recycle(Vec::with_capacity(1000));
        pool.recycle(Vec::with_capacity(50));
        assert_eq!(pool.idle_bytes(), 1060);
        pool.trim_to(64);
        assert_eq!(pool.idle_bytes(), 60, "the one-off 1000-byte spike is gone");
        assert_eq!(pool.idle(), 2);
        pool.trim_to(0);
        assert_eq!((pool.idle(), pool.idle_bytes()), (0, 0));
    }

    #[test]
    fn pool_peak_bytes_reaches_schedule_stats() {
        mxn_runtime::reset_schedule_stats();
        let mut pool: TransferBuffers<u8> = TransferBuffers::new();
        pool.recycle(Vec::with_capacity(128));
        pool.recycle(Vec::with_capacity(64));
        pool.trim_to(0);
        pool.recycle(Vec::with_capacity(16));
        let s = mxn_runtime::schedule_stats();
        assert_eq!(s.pool_peak_bytes, 192, "high-water survives the trim");
        mxn_runtime::reset_schedule_stats();
    }
}
