//! Collective-route redistribution planning under per-rank memory budgets.
//!
//! The direct M×N path ([`RegionSchedule::execute_send`] /
//! [`RegionSchedule::execute_recv`]) is message-optimal — one packed buffer
//! per overlapping peer — but not memory-optimal: with eager sends, a
//! receiver's mailbox holds its *entire* incoming set before the first
//! `recv` drains it, so the per-rank transfer footprint reaches the full
//! destination shard on top of the destination allocation (≈ 2× shard).
//! For fields sized near the memory limit that is fatal; redistribution
//! then has to trade messages (time) for peak bytes.
//!
//! This module makes that trade explicit. A [`RoutePlanner`] compiles a
//! [`RedistRoute`] — a short list of typed [`RouteStep`]s, each with a
//! closed-form per-rank peak-bytes bound — for a given
//! (source [`Dad`], destination [`Dad`], element size, budget):
//!
//! * [`RouteKind::Direct`] — the existing one-message-per-peer exchange.
//!   Peak ≈ shard + full receive set + one pack buffer. Fastest.
//! * [`RouteKind::Chunked`] — the same pairwise schedule, executed in
//!   fenced rounds of at most `chunk_elems` elements per pair. After
//!   posting round *k* each side receives/unpacks everything of round *k*
//!   before acking; a sender never posts round *k+1* to a pair before that
//!   pair's round-*k* ack. Peak ≈ shard + one round of chunks + one chunk,
//!   tunable down to a single element per pair.
//! * [`RouteKind::AllgatherSlice`] — intra-communicator only: move whole
//!   shards with a collective allgather and slice the needed regions out
//!   locally. Fewest distinct messages (good for latency-bound tiny
//!   fields on wide communicators), but peak includes the whole array.
//!
//! The planner scores each candidate with a [`NetworkModel`] for time and
//! the summed step bounds for memory, then picks the fastest route whose
//! peak fits the budget (falling back to the smallest-peak route when none
//! fits, so a too-tight budget degrades to best effort rather than
//! failing). Both sides of a transfer derive the plan from the descriptor
//! pair alone — no negotiation round is needed for them to agree.
//!
//! Every execution opens a `RoutePlan` trace span with one `RouteStep`
//! span per executed step, and threads live-transfer bytes through
//! [`record_transfer_acquired`] / [`record_transfer_released`] so
//! [`mxn_runtime::ScheduleStats`] exposes the measured high-water mark the
//! declared bounds promise.

use std::time::Duration;

use mxn_dad::{Dad, LocalArray};
use mxn_runtime::{
    record_transfer_acquired, record_transfer_released, Comm, InterComm, MsgSize, NetworkModel,
    Result,
};
use mxn_trace::EventId;

use crate::plan::{CopyPlan, TransferBuffers};
use crate::region_schedule::{RegionSchedule, Role};

/// Round-fence acknowledgements travel on the transfer tag with this bit
/// set, so they can never match a data receive. User tags must keep the
/// bit clear.
pub const ROUTE_ACK_BIT: i32 = 1 << 28;

/// Worst-case per-rank footprint profile of a redistribution, derived
/// purely from the descriptor pair (plus element size) by building every
/// sender's pruned schedule. Rank-independent: all ranks computing the
/// profile for the same `(src, dst, elem_size)` get identical numbers, so
/// route planning needs no negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedistProfile {
    /// Element size in bytes the byte figures below are scaled by.
    pub elem_size: usize,
    /// Ranks in the source / destination decompositions.
    pub src_ranks: usize,
    pub dst_ranks: usize,
    /// Max bytes any single rank sends / receives in total.
    pub max_send_bytes: u64,
    pub max_recv_bytes: u64,
    /// Max messages any single rank sends / receives on the direct path.
    pub max_send_msgs: u64,
    pub max_recv_msgs: u64,
    /// Largest single pairwise message on the direct path.
    pub max_pair_bytes: u64,
    /// Largest source / destination shard (resident array bytes).
    pub max_src_shard_bytes: u64,
    pub max_dst_shard_bytes: u64,
    /// Whole-array bytes (what an allgather moves to every rank).
    pub total_bytes: u64,
}

impl RedistProfile {
    /// Profiles the redistribution `src → dst` for `elem_size`-byte
    /// elements by building all sender schedules (pruned construction, so
    /// this scales with overlap, not with `src_ranks × dst_ranks`).
    pub fn compute(src: &Dad, dst: &Dad, elem_size: usize) -> RedistProfile {
        let es = elem_size as u64;
        let mut recv_bytes = vec![0u64; dst.nranks()];
        let mut recv_msgs = vec![0u64; dst.nranks()];
        let mut max_send_bytes = 0u64;
        let mut max_send_msgs = 0u64;
        let mut max_pair_bytes = 0u64;
        for s in 0..src.nranks() {
            let sched = RegionSchedule::for_sender(src, dst, s);
            let mut sent = 0u64;
            for pair in sched.pairs() {
                let b = pair.elements() as u64 * es;
                sent += b;
                max_pair_bytes = max_pair_bytes.max(b);
                recv_bytes[pair.peer] += b;
                recv_msgs[pair.peer] += 1;
            }
            max_send_bytes = max_send_bytes.max(sent);
            max_send_msgs = max_send_msgs.max(sched.num_messages() as u64);
        }
        let shard = |d: &Dad, r: usize| d.patches(r).iter().map(|p| p.len() as u64 * es).sum();
        let src_shards: Vec<u64> = (0..src.nranks()).map(|r| shard(src, r)).collect();
        RedistProfile {
            elem_size,
            src_ranks: src.nranks(),
            dst_ranks: dst.nranks(),
            max_send_bytes,
            max_recv_bytes: recv_bytes.iter().copied().max().unwrap_or(0),
            max_send_msgs,
            max_recv_msgs: recv_msgs.iter().copied().max().unwrap_or(0),
            max_pair_bytes,
            max_src_shard_bytes: src_shards.iter().copied().max().unwrap_or(0),
            max_dst_shard_bytes: (0..dst.nranks()).map(|r| shard(dst, r)).max().unwrap_or(0),
            total_bytes: src_shards.iter().sum(),
        }
    }
}

/// The lowering a route uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteKind {
    /// One packed message per overlapping peer (the classic schedule).
    Direct,
    /// The pairwise schedule in fenced, bounded-size rounds.
    Chunked,
    /// Whole-shard allgather plus local slicing (intra-communicator only).
    AllgatherSlice,
}

impl RouteKind {
    /// Stable numeric code used in trace span arguments.
    pub fn code(self) -> u64 {
        match self {
            RouteKind::Direct => 0,
            RouteKind::Chunked => 1,
            RouteKind::AllgatherSlice => 2,
        }
    }
}

/// What one step of a route does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOp {
    /// Whole pairwise exchange, one message per peer.
    DirectExchange,
    /// `rounds` fenced rounds of ≤ `chunk_elems` elements per pair.
    ChunkRounds { rounds: u32, chunk_elems: usize },
    /// Collective allgather of every rank's flat shard.
    Allgather,
    /// Local slice of the gathered shards into the destination layout.
    Slice,
}

/// One typed step with its closed-form per-rank bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStep {
    pub op: StepOp,
    /// Max bytes any rank moves during this step.
    pub bytes: u64,
    /// Declared per-rank peak (resident shards + live transfer bytes)
    /// while this step runs.
    pub peak_bytes: u64,
}

/// A compiled route: the lowering, its steps, and the planner's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedistRoute {
    pub kind: RouteKind,
    pub steps: Vec<RouteStep>,
    /// Declared per-rank peak over all steps.
    pub peak_bytes: u64,
    /// [`NetworkModel`] time estimate used for selection.
    pub est_time: Duration,
    /// The budget this route was planned against.
    pub budget_bytes: u64,
    /// Whether `peak_bytes <= budget_bytes`. When no candidate fits, the
    /// planner returns the smallest-peak route with `fits == false`.
    pub fits: bool,
}

impl RedistRoute {
    /// Chunk size (elements) for [`RouteKind::Chunked`] routes, 0 otherwise.
    pub fn chunk_elems(&self) -> usize {
        self.steps
            .iter()
            .find_map(|s| match s.op {
                StepOp::ChunkRounds { chunk_elems, .. } => Some(chunk_elems),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Round count for [`RouteKind::Chunked`] routes, 0 otherwise.
    pub fn rounds(&self) -> u32 {
        self.steps
            .iter()
            .find_map(|s| match s.op {
                StepOp::ChunkRounds { rounds, .. } => Some(rounds),
                _ => None,
            })
            .unwrap_or(0)
    }
}

/// Chooses the fastest route whose declared peak fits a per-rank budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutePlanner {
    /// Cost model scoring candidate routes for time.
    pub model: NetworkModel,
}

impl Default for RoutePlanner {
    /// A cluster-shaped default: 1 µs latency, 12.5 GB/s links.
    fn default() -> Self {
        RoutePlanner {
            model: NetworkModel { latency: Duration::from_micros(1), bytes_per_sec: 12.5e9 },
        }
    }
}

impl RoutePlanner {
    /// A planner scoring time with `model`.
    pub fn new(model: NetworkModel) -> Self {
        RoutePlanner { model }
    }

    /// Resident (non-transfer) array bytes a rank holds during the
    /// exchange: one shard across an inter-communicator, both shards for
    /// an in-place intra-communicator redistribution.
    fn resident(p: &RedistProfile, intra: bool) -> u64 {
        if intra {
            p.max_src_shard_bytes + p.max_dst_shard_bytes
        } else {
            p.max_src_shard_bytes.max(p.max_dst_shard_bytes)
        }
    }

    fn direct_candidate(&self, p: &RedistProfile, intra: bool) -> RedistRoute {
        let bytes = p.max_send_bytes.max(p.max_recv_bytes);
        // Receiver mailbox holds the full receive set before draining,
        // plus one pack/unpack buffer in flight.
        let peak = Self::resident(p, intra) + p.max_recv_bytes + p.max_pair_bytes;
        let msgs = (p.max_send_msgs + p.max_recv_msgs).max(1);
        let time = self.model.delay(bytes as usize) + self.model.latency * (msgs - 1) as u32;
        RedistRoute {
            kind: RouteKind::Direct,
            steps: vec![RouteStep { op: StepOp::DirectExchange, bytes, peak_bytes: peak }],
            peak_bytes: peak,
            est_time: time,
            budget_bytes: 0,
            fits: false,
        }
    }

    fn chunked_candidate(&self, p: &RedistProfile, budget: u64, intra: bool) -> RedistRoute {
        let resident = Self::resident(p, intra);
        let pairs = p.max_send_msgs.max(p.max_recv_msgs).max(1);
        // Solve resident + pairs·C (mailbox round) + 2·C (pack + unpack
        // buffers) ≤ budget for the chunk size C, floored at one element.
        let headroom = budget.saturating_sub(resident);
        let chunk_bytes =
            (headroom / (pairs + 2)).clamp(p.elem_size as u64, p.max_pair_bytes.max(1));
        let chunk_elems = (chunk_bytes / p.elem_size as u64).max(1) as usize;
        let chunk_bytes = chunk_elems as u64 * p.elem_size as u64;
        let rounds = p.max_pair_bytes.div_ceil(chunk_bytes).max(1) as u32;
        let round_bytes = (pairs * chunk_bytes).min(p.max_recv_bytes.max(chunk_bytes));
        let peak = resident + round_bytes + 2 * chunk_bytes;
        let bytes = p.max_send_bytes.max(p.max_recv_bytes);
        // Data messages per round plus an ack round trip per pair.
        let time = self.model.delay(bytes as usize)
            + self.model.latency * (2 * pairs as u32).saturating_mul(rounds);
        RedistRoute {
            kind: RouteKind::Chunked,
            steps: vec![RouteStep {
                op: StepOp::ChunkRounds { rounds, chunk_elems },
                bytes,
                peak_bytes: peak,
            }],
            peak_bytes: peak,
            est_time: time,
            budget_bytes: 0,
            fits: false,
        }
    }

    fn allgather_candidate(&self, p: &RedistProfile) -> RedistRoute {
        // Intra only: every rank ends up holding the whole array (its own
        // flat copy included) before slicing.
        let resident = Self::resident(p, true);
        let gather_peak = resident + p.total_bytes;
        let slice_peak = gather_peak + p.max_pair_bytes;
        let ranks = p.src_ranks.max(1) as u32;
        let time =
            self.model.latency * (ranks - 1).max(1) + self.model.delay(p.total_bytes as usize);
        RedistRoute {
            kind: RouteKind::AllgatherSlice,
            steps: vec![
                RouteStep { op: StepOp::Allgather, bytes: p.total_bytes, peak_bytes: gather_peak },
                RouteStep { op: StepOp::Slice, bytes: p.max_recv_bytes, peak_bytes: slice_peak },
            ],
            peak_bytes: slice_peak,
            est_time: time,
            budget_bytes: 0,
            fits: false,
        }
    }

    /// Plans the fastest route with declared peak ≤ `budget_bytes`.
    /// `intra` admits the allgather lowering (it needs one communicator)
    /// and charges both shards as resident. When nothing fits, returns
    /// the smallest-peak candidate with [`RedistRoute::fits`] = `false`.
    pub fn plan(&self, p: &RedistProfile, budget_bytes: u64, intra: bool) -> RedistRoute {
        let mut cands =
            vec![self.direct_candidate(p, intra), self.chunked_candidate(p, budget_bytes, intra)];
        if intra {
            cands.push(self.allgather_candidate(p));
        }
        for c in &mut cands {
            c.budget_bytes = budget_bytes;
            c.fits = c.peak_bytes <= budget_bytes;
        }
        cands
            .iter()
            .filter(|c| c.fits)
            .min_by_key(|c| c.est_time)
            .or_else(|| cands.iter().min_by_key(|c| c.peak_bytes))
            .unwrap()
            .clone()
    }

    /// [`RoutePlanner::plan`] from descriptors: profiles then plans.
    pub fn plan_for(
        &self,
        src: &Dad,
        dst: &Dad,
        elem_size: usize,
        budget_bytes: u64,
        intra: bool,
    ) -> RedistRoute {
        self.plan(&RedistProfile::compute(src, dst, elem_size), budget_bytes, intra)
    }
}

fn route_span(route: &RedistRoute) -> mxn_trace::SpanGuard {
    mxn_trace::span(
        EventId::RoutePlan,
        [route.kind.code(), route.budget_bytes, route.peak_bytes, route.steps.len() as u64],
    )
}

/// Per-pair round counts under a chunk size, identical on both sides by
/// the schedule mirror property.
fn pair_rounds(sched: &RegionSchedule, chunk: usize) -> Vec<usize> {
    (0..sched.pairs().len()).map(|i| sched.plan(i).total().div_ceil(chunk)).collect()
}

/// Sender side of a planned route across an inter-communicator.
/// Returns elements sent.
pub fn execute_send_routed<T>(
    route: &RedistRoute,
    sched: &RegionSchedule,
    ic: &InterComm,
    local: &LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    let mut span = route_span(route);
    let moved = match route.kind {
        RouteKind::Direct => {
            let mut step = mxn_trace::span(EventId::RouteStep, [route.kind.code(), 0, 0, 0]);
            let moved = sched.execute_send_pooled(ic, local, tag, pool)?;
            step.set_end([route.kind.code(), 0, moved as u64 * size_of::<T>() as u64, 0]);
            moved
        }
        RouteKind::Chunked => chunked_send(route, sched, ic, local, tag, pool)?,
        RouteKind::AllgatherSlice => {
            panic!("allgather-slice routes only apply within one communicator")
        }
    };
    span.set_end([route.kind.code(), moved as u64 * size_of::<T>() as u64, 0, 0]);
    Ok(moved)
}

/// Receiver side of a planned route across an inter-communicator.
/// Returns elements received.
pub fn execute_recv_routed<T>(
    route: &RedistRoute,
    sched: &RegionSchedule,
    ic: &InterComm,
    local: &mut LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    let mut span = route_span(route);
    let moved = match route.kind {
        RouteKind::Direct => {
            let mut step = mxn_trace::span(EventId::RouteStep, [route.kind.code(), 0, 0, 0]);
            let moved = sched.execute_recv_pooled(ic, local, tag, pool)?;
            step.set_end([route.kind.code(), 0, moved as u64 * size_of::<T>() as u64, 0]);
            moved
        }
        RouteKind::Chunked => chunked_recv(route, sched, ic, local, tag, pool)?,
        RouteKind::AllgatherSlice => {
            panic!("allgather-slice routes only apply within one communicator")
        }
    };
    span.set_end([route.kind.code(), moved as u64 * size_of::<T>() as u64, 0, 0]);
    Ok(moved)
}

/// Intra-communicator execution of a planned route (every rank of `comm`
/// calls this collectively). `src` is the source descriptor — the
/// allgather lowering needs it to slice peers' gathered shards. Returns
/// elements received into `dst_local`.
#[allow(clippy::too_many_arguments)]
pub fn execute_within_routed<T>(
    route: &RedistRoute,
    send: &RegionSchedule,
    recv: &RegionSchedule,
    comm: &Comm,
    src: &Dad,
    src_local: &LocalArray<T>,
    dst_local: &mut LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + Sync + MsgSize + 'static,
{
    let mut span = route_span(route);
    let moved = match route.kind {
        RouteKind::Direct => {
            let mut step = mxn_trace::span(EventId::RouteStep, [route.kind.code(), 0, 0, 0]);
            let moved = RegionSchedule::execute_local_pooled(
                send, recv, comm, src_local, dst_local, tag, pool,
            )?;
            step.set_end([route.kind.code(), 0, moved as u64 * size_of::<T>() as u64, 0]);
            moved
        }
        RouteKind::Chunked => {
            chunked_within(route, send, recv, comm, src_local, dst_local, tag, pool)?
        }
        RouteKind::AllgatherSlice => allgather_within(recv, comm, src, src_local, dst_local, pool)?,
    };
    span.set_end([route.kind.code(), moved as u64 * size_of::<T>() as u64, 0, 0]);
    Ok(moved)
}

/// One chunked round, sender half: packs and posts the round-`k` chunk of
/// every still-active pair. Returns `(elements, bytes)` posted.
fn post_round<T>(
    sched: &RegionSchedule,
    rounds: &[usize],
    chunk: usize,
    k: usize,
    send: impl Fn(usize, Vec<T>) -> Result<()>,
    local: &LocalArray<T>,
    pool: &mut TransferBuffers<T>,
) -> Result<(usize, u64)>
where
    T: Copy,
{
    let mut moved = 0usize;
    let mut posted = 0u64;
    for (i, pair) in sched.pairs().iter().enumerate() {
        if k >= rounds[i] {
            continue;
        }
        let plan = sched.plan(i);
        let lo = k * chunk;
        let hi = (lo + chunk).min(plan.total());
        let mut buf = pool.lease(hi - lo);
        plan.pack_range_into(local, &mut buf, lo, hi);
        let bytes = (buf.len() * size_of::<T>()) as u64;
        record_transfer_acquired(bytes);
        moved += buf.len();
        send(pair.peer, buf)?;
        // The transport owns the buffer now; the receiver's mailbox
        // accounting carries it from here.
        record_transfer_released(bytes);
        posted += bytes;
    }
    Ok((moved, posted))
}

/// One chunked round, receiver half: drains and unpacks the round-`k`
/// chunk of every still-active pair. Returns elements received.
fn drain_round<T>(
    sched: &RegionSchedule,
    rounds: &[usize],
    chunk: usize,
    k: usize,
    recv: impl Fn(usize) -> Result<Vec<T>>,
    local: &mut LocalArray<T>,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy,
{
    let mut moved = 0usize;
    for (i, pair) in sched.pairs().iter().enumerate() {
        if k >= rounds[i] {
            continue;
        }
        let data = recv(pair.peer)?;
        let bytes = (data.len() * size_of::<T>()) as u64;
        record_transfer_acquired(bytes);
        let lo = k * chunk;
        sched.plan(i).unpack_range_from(local, &data, lo, lo + data.len());
        record_transfer_released(bytes);
        moved += data.len();
        pool.recycle(data);
    }
    Ok(moved)
}

fn chunked_send<T>(
    route: &RedistRoute,
    sched: &RegionSchedule,
    ic: &InterComm,
    local: &LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    assert_eq!(sched.role(), Role::Sender, "chunked send needs a sender schedule");
    let chunk = route.chunk_elems().max(1);
    let rounds = pair_rounds(sched, chunk);
    let max_rounds = rounds.iter().copied().max().unwrap_or(0);
    let mut moved = 0;
    for k in 0..max_rounds {
        let mut step = mxn_trace::span(EventId::RouteStep, [route.kind.code(), k as u64, 0, 0]);
        let (m, posted) =
            post_round(sched, &rounds, chunk, k, |peer, buf| ic.send(peer, tag, buf), local, pool)?;
        moved += m;
        // Fence: round k+1 is not posted to a pair until its receiver has
        // drained round k — this is what bounds the receiver's mailbox to
        // one round of chunks.
        for (i, pair) in sched.pairs().iter().enumerate() {
            if k + 1 < rounds[i] {
                let _ack: u8 = ic.recv(pair.peer, tag | ROUTE_ACK_BIT)?;
            }
        }
        step.set_end([route.kind.code(), k as u64, posted, 0]);
    }
    Ok(moved)
}

fn chunked_recv<T>(
    route: &RedistRoute,
    sched: &RegionSchedule,
    ic: &InterComm,
    local: &mut LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    assert_eq!(sched.role(), Role::Receiver, "chunked recv needs a receiver schedule");
    let chunk = route.chunk_elems().max(1);
    let rounds = pair_rounds(sched, chunk);
    let max_rounds = rounds.iter().copied().max().unwrap_or(0);
    let mut moved = 0;
    for k in 0..max_rounds {
        let mut step = mxn_trace::span(EventId::RouteStep, [route.kind.code(), k as u64, 0, 0]);
        let m = drain_round(sched, &rounds, chunk, k, |peer| ic.recv(peer, tag), local, pool)?;
        moved += m;
        // Ack only after the *whole* round is unpacked, and only to pairs
        // that still have data coming.
        for (i, pair) in sched.pairs().iter().enumerate() {
            if k + 1 < rounds[i] {
                ic.send(pair.peer, tag | ROUTE_ACK_BIT, 1u8)?;
            }
        }
        step.set_end([route.kind.code(), k as u64, m as u64 * size_of::<T>() as u64, 0]);
    }
    Ok(moved)
}

#[allow(clippy::too_many_arguments)]
fn chunked_within<T>(
    route: &RedistRoute,
    send: &RegionSchedule,
    recv: &RegionSchedule,
    comm: &Comm,
    src_local: &LocalArray<T>,
    dst_local: &mut LocalArray<T>,
    tag: i32,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + MsgSize + 'static,
{
    assert_eq!(send.role(), Role::Sender);
    assert_eq!(recv.role(), Role::Receiver);
    let chunk = route.chunk_elems().max(1);
    let srounds = pair_rounds(send, chunk);
    let rrounds = pair_rounds(recv, chunk);
    let max_rounds = srounds.iter().chain(rrounds.iter()).copied().max().unwrap_or(0);
    let mut moved = 0;
    // Per round, every rank: posts its sends, drains its receives, posts
    // its acks, then waits for acks. All sends precede every blocking
    // receive on every rank, so no round can deadlock.
    for k in 0..max_rounds {
        let mut step = mxn_trace::span(EventId::RouteStep, [route.kind.code(), k as u64, 0, 0]);
        let (_, posted) = post_round(
            send,
            &srounds,
            chunk,
            k,
            |peer, buf| comm.send(peer, tag, buf),
            src_local,
            pool,
        )?;
        moved +=
            drain_round(recv, &rrounds, chunk, k, |peer| comm.recv(peer, tag), dst_local, pool)?;
        for (i, pair) in recv.pairs().iter().enumerate() {
            if k + 1 < rrounds[i] {
                comm.send(pair.peer, tag | ROUTE_ACK_BIT, 1u8)?;
            }
        }
        for (i, pair) in send.pairs().iter().enumerate() {
            if k + 1 < srounds[i] {
                let _ack: u8 = comm.recv(pair.peer, tag | ROUTE_ACK_BIT)?;
            }
        }
        step.set_end([route.kind.code(), k as u64, posted, 0]);
    }
    Ok(moved)
}

fn allgather_within<T>(
    recv: &RegionSchedule,
    comm: &Comm,
    src: &Dad,
    src_local: &LocalArray<T>,
    dst_local: &mut LocalArray<T>,
    pool: &mut TransferBuffers<T>,
) -> Result<usize>
where
    T: Copy + Send + Sync + MsgSize + 'static,
{
    assert_eq!(recv.role(), Role::Receiver);
    assert_eq!(
        comm.size(),
        src.nranks(),
        "allgather-slice needs the communicator to span the source decomposition"
    );
    let kind = RouteKind::AllgatherSlice.code();
    let mut gather = mxn_trace::span(EventId::RouteStep, [kind, 0, 0, 0]);
    let mut shards: Vec<Vec<T>> = comm.allgather(src_local.to_flat())?;
    let total_bytes: u64 = shards.iter().map(|s| (s.len() * size_of::<T>()) as u64).sum();
    record_transfer_acquired(total_bytes);
    gather.set_end([kind, 0, total_bytes, 0]);

    let mut slice = mxn_trace::span(EventId::RouteStep, [kind, 1, 0, 0]);
    let mut moved = 0;
    for (i, pair) in recv.pairs().iter().enumerate() {
        let peer = LocalArray::from_flat(src, pair.peer, std::mem::take(&mut shards[pair.peer]));
        let cut = CopyPlan::compile(&src.patches(pair.peer), &pair.regions);
        let mut buf = pool.lease(cut.total());
        cut.pack_into(&peer, &mut buf);
        recv.plan(i).unpack_from(dst_local, &buf);
        moved += buf.len();
        pool.recycle(buf);
    }
    record_transfer_released(total_bytes);
    slice.set_end([kind, 1, moved as u64 * size_of::<T>() as u64, 0]);
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;

    fn dads(rows: usize) -> (Dad, Dad) {
        (
            Dad::block(Extents::new([rows, 8]), &[4, 1]).unwrap(),
            Dad::block(Extents::new([rows, 8]), &[1, 4]).unwrap(),
        )
    }

    #[test]
    fn profile_is_mirror_consistent() {
        let (src, dst) = dads(8);
        let p = RedistProfile::compute(&src, &dst, 8);
        // 4×1 → 1×4 on 8×8: every sender meets every receiver with a 2×2
        // block of f64.
        assert_eq!(p.max_send_msgs, 4);
        assert_eq!(p.max_recv_msgs, 4);
        assert_eq!(p.max_pair_bytes, 4 * 8);
        assert_eq!(p.max_send_bytes, 16 * 8);
        assert_eq!(p.max_recv_bytes, 16 * 8);
        assert_eq!(p.max_src_shard_bytes, 16 * 8);
        assert_eq!(p.max_dst_shard_bytes, 16 * 8);
        assert_eq!(p.total_bytes, 64 * 8);
    }

    #[test]
    fn loose_budget_picks_direct() {
        let (src, dst) = dads(8);
        let r = RoutePlanner::default().plan_for(&src, &dst, 8, u64::MAX, false);
        assert_eq!(r.kind, RouteKind::Direct);
        assert!(r.fits);
    }

    #[test]
    fn tight_budget_picks_chunked_and_respects_bound() {
        let (src, dst) = dads(64);
        let p = RedistProfile::compute(&src, &dst, 8);
        // Direct needs shard + full receive set; offer only shard + 25%.
        let budget = p.max_dst_shard_bytes + p.max_dst_shard_bytes / 4;
        let planner = RoutePlanner::default();
        assert!(planner.plan(&p, u64::MAX, false).kind == RouteKind::Direct);
        let r = planner.plan(&p, budget, false);
        assert_eq!(r.kind, RouteKind::Chunked, "direct cannot fit {budget}");
        assert!(r.fits, "declared peak {} over budget {budget}", r.peak_bytes);
        assert!(r.peak_bytes <= budget);
        assert!(r.rounds() > 1);
    }

    #[test]
    fn impossible_budget_degrades_to_smallest_peak() {
        let (src, dst) = dads(8);
        let r = RoutePlanner::default().plan_for(&src, &dst, 8, 1, false);
        assert!(!r.fits, "a 1-byte budget cannot be met");
        assert_eq!(r.kind, RouteKind::Chunked, "chunked is the memory-minimal lowering");
        assert_eq!(r.chunk_elems(), 1, "degrades to single-element chunks");
    }

    #[test]
    fn tiny_field_on_wide_comm_prefers_allgather_intra() {
        // 16 elements over 16 ranks: direct transpose costs ~n² tiny
        // messages; one allgather is latency-cheaper under the model.
        let e = Extents::new([16, 16]);
        let src = Dad::block(e.clone(), &[16, 1]).unwrap();
        let dst = Dad::block(e, &[1, 16]).unwrap();
        let r = RoutePlanner::default().plan_for(&src, &dst, 8, u64::MAX, true);
        assert_eq!(r.kind, RouteKind::AllgatherSlice);
        assert_eq!(r.steps.len(), 2);
        assert!(r.steps[1].peak_bytes >= r.steps[0].peak_bytes);
    }

    #[test]
    fn route_is_identical_on_both_sides() {
        let (src, dst) = dads(32);
        let planner = RoutePlanner::default();
        let budget = 3000;
        // Any two ranks planning from the descriptors alone agree.
        let a = planner.plan_for(&src, &dst, 8, budget, false);
        let b = planner.plan_for(&src, &dst, 8, budget, false);
        assert_eq!(a, b);
    }
}
