//! # mxn-schedule — communication schedules for parallel data redistribution
//!
//! "A communication schedule for distributed arrays specifies the
//! destination process of each of the data elements in the source array and
//! their locations in the destination processes. This schedule is computed
//! prior to the transfer operation, and can be reused" (paper §2.3).
//!
//! Two constructions are provided:
//!
//! * [`RegionSchedule`] — the descriptor fast path: intersect rectangular
//!   patches directly (CUMULVS/PAWS/InterComm style). Packing moves whole
//!   rows; messages carry data only. Construction prunes the peer space
//!   with the descriptor's per-axis overlap index (build cost scales with
//!   overlapping peers, not communicator size) and compiles each pair into
//!   a [`CopyPlan`] executed against pooled [`TransferBuffers`].
//! * [`LinearSchedule`] — the generic path: refer both layouts to the
//!   abstract 1-D linearization and intersect segment lists (Meta-Chaos
//!   style). Works for any linearizable structure, pays per-element index
//!   translation.
//!
//! Both are built *per rank with no coordinator* (scalability requirement
//! of §3), are reusable across transfers and across arrays conforming to
//! the same templates ([`ScheduleCache`]), and execute over either an
//! inter-communicator (coupled programs) or a single communicator
//! (self-connections such as transposes).

pub mod cache;
pub mod halo;
pub mod linear_schedule;
pub mod plan;
pub mod redistribute;
pub mod region_schedule;
pub mod route;

pub use cache::ScheduleCache;
pub use halo::{GhostedPatch, HaloSchedule};
pub use linear_schedule::LinearSchedule;
pub use plan::{CopyPlan, TransferBuffers};
pub use redistribute::{
    recv_redistributed, recv_redistributed_budgeted, recv_redistributed_budgeted_cached,
    recv_redistributed_budgeted_cached_for_epoch, recv_redistributed_cached, redistribute_within,
    redistribute_within_budgeted, redistribute_within_pooled, send_redistributed,
    send_redistributed_budgeted, send_redistributed_budgeted_cached,
    send_redistributed_budgeted_cached_for_epoch, send_redistributed_cached,
};
pub use region_schedule::{PairRegions, RegionSchedule, Role};
pub use route::{
    execute_recv_routed, execute_send_routed, execute_within_routed, RedistProfile, RedistRoute,
    RouteKind, RoutePlanner, RouteStep, StepOp, ROUTE_ACK_BIT,
};
