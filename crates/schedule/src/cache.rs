//! Schedule caching and reuse.
//!
//! "Communication schedules can be expensive to calculate … this schedule
//! is computed prior to the transfer operation, and can be reused in
//! consecutive transfers, and even for different arrays as long as they
//! conform to the same distribution template" (paper §2.3). The cache keys
//! on the *descriptor pair* (plus rank and role), so any array aligned to
//! the same templates reuses the plan — experiment E6's amortization.
//!
//! Keys are the descriptors' precomputed 128-bit fingerprints
//! ([`Dad::fingerprint`]), not descriptor clones: a lookup hashes two
//! `u128`s instead of walking (and on insert, deep-copying) patch lists.
//! Distinct descriptors colliding on both halves of a seeded 128-bit
//! fingerprint is vanishingly unlikely (~2⁻¹²⁸) and would only yield a
//! schedule for the colliding layout, caught by the conformance assert.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use mxn_dad::Dad;

use crate::region_schedule::{RegionSchedule, Role};
use crate::route::{RedistRoute, RoutePlanner};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    src_fp: u128,
    dst_fp: u128,
    rank: usize,
    role: Role,
    /// Recovery epoch salt. Healed connections rebuild schedules for the
    /// same descriptor pair under a new epoch, so plans from before a
    /// shrink can never be served to the survivor topology.
    epoch: u64,
}

/// Key of a planned route: the descriptor pair plus everything the
/// planner's answer depends on. Rank and role are deliberately absent —
/// a route is a global property of the redistribution, identical on every
/// rank of both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RouteKey {
    src_fp: u128,
    dst_fp: u128,
    elem_size: usize,
    /// Per-rank peak-memory budget the route was planned under.
    budget_bytes: u64,
    intra: bool,
    epoch: u64,
}

/// A thread-safe cache of built [`RegionSchedule`]s with hit/miss counters.
#[derive(Default)]
pub struct ScheduleCache {
    map: Mutex<HashMap<Key, Arc<RegionSchedule>>>,
    routes: Mutex<HashMap<RouteKey, Arc<RedistRoute>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ScheduleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached schedule for `(src, dst, rank, role)`, building
    /// and inserting it on first use. Epoch 0 — the pre-failure plan.
    pub fn get_or_build(
        &self,
        src: &Dad,
        dst: &Dad,
        rank: usize,
        role: Role,
    ) -> Arc<RegionSchedule> {
        self.get_or_build_for_epoch(src, dst, rank, role, 0)
    }

    /// [`ScheduleCache::get_or_build`] salted with a recovery epoch: the
    /// entry point for healed connections, which must rebuild rather than
    /// reuse plans computed for the pre-shrink topology.
    pub fn get_or_build_for_epoch(
        &self,
        src: &Dad,
        dst: &Dad,
        rank: usize,
        role: Role,
        epoch: u64,
    ) -> Arc<RegionSchedule> {
        use std::sync::atomic::Ordering;
        let key = Key { src_fp: src.fingerprint(), dst_fp: dst.fingerprint(), rank, role, epoch };
        let mut map = self.map.lock();
        if let Some(s) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sched = Arc::new(match role {
            Role::Sender => RegionSchedule::for_sender(src, dst, rank),
            Role::Receiver => RegionSchedule::for_receiver(src, dst, rank),
        });
        map.insert(key, sched.clone());
        sched
    }

    /// Returns the cached [`RedistRoute`] for the descriptor pair under
    /// `(elem_size, budget_bytes, intra)`, planning and inserting it on
    /// first use (epoch 0). Route planning profiles every sender schedule,
    /// so persistent couplings should hit this cache, not replan per step.
    pub fn route_for(
        &self,
        src: &Dad,
        dst: &Dad,
        elem_size: usize,
        budget_bytes: u64,
        intra: bool,
        planner: &RoutePlanner,
    ) -> Arc<RedistRoute> {
        self.route_for_epoch(src, dst, elem_size, budget_bytes, intra, planner, 0)
    }

    /// [`ScheduleCache::route_for`] salted with a recovery epoch, mirroring
    /// [`ScheduleCache::get_or_build_for_epoch`].
    #[allow(clippy::too_many_arguments)]
    pub fn route_for_epoch(
        &self,
        src: &Dad,
        dst: &Dad,
        elem_size: usize,
        budget_bytes: u64,
        intra: bool,
        planner: &RoutePlanner,
        epoch: u64,
    ) -> Arc<RedistRoute> {
        use std::sync::atomic::Ordering;
        let key = RouteKey {
            src_fp: src.fingerprint(),
            dst_fp: dst.fingerprint(),
            elem_size,
            budget_bytes,
            intra,
            epoch,
        };
        let mut routes = self.routes.lock();
        if let Some(r) = routes.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return r.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let route = Arc::new(planner.plan_for(src, dst, elem_size, budget_bytes, intra));
        routes.insert(key, route.clone());
        route
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cached routes.
    pub fn routes_len(&self) -> usize {
        self.routes.lock().len()
    }

    /// Drops every cached schedule and route (benchmark phase separation).
    pub fn clear(&self) {
        self.map.lock().clear();
        self.routes.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;

    fn dads() -> (Dad, Dad) {
        (
            Dad::block(Extents::new([8, 8]), &[2, 1]).unwrap(),
            Dad::block(Extents::new([8, 8]), &[1, 2]).unwrap(),
        )
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ScheduleCache::new();
        let (src, dst) = dads();
        let a = cache.get_or_build(&src, &dst, 0, Role::Sender);
        let b = cache.get_or_build(&src, &dst, 0, Role::Sender);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_ranks_and_roles_are_distinct_entries() {
        let cache = ScheduleCache::new();
        let (src, dst) = dads();
        cache.get_or_build(&src, &dst, 0, Role::Sender);
        cache.get_or_build(&src, &dst, 1, Role::Sender);
        cache.get_or_build(&src, &dst, 0, Role::Receiver);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 3));
    }

    #[test]
    fn different_templates_do_not_collide() {
        let cache = ScheduleCache::new();
        let (src, dst) = dads();
        let other = Dad::block(Extents::new([8, 8]), &[2, 2]).unwrap();
        let a = cache.get_or_build(&src, &dst, 0, Role::Sender);
        let b = cache.get_or_build(&src, &other, 0, Role::Sender);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets_contents_but_not_counters() {
        let cache = ScheduleCache::new();
        let (src, dst) = dads();
        cache.get_or_build(&src, &dst, 0, Role::Sender);
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_build(&src, &dst, 0, Role::Sender);
        assert_eq!(cache.stats(), (0, 2), "rebuild after clear is a miss");
    }

    #[test]
    fn epochs_are_distinct_entries() {
        let cache = ScheduleCache::new();
        let (src, dst) = dads();
        let a = cache.get_or_build(&src, &dst, 0, Role::Sender);
        let b = cache.get_or_build_for_epoch(&src, &dst, 0, Role::Sender, 1);
        assert!(!Arc::ptr_eq(&a, &b), "a new epoch must rebuild, not reuse");
        let c = cache.get_or_build_for_epoch(&src, &dst, 0, Role::Sender, 1);
        assert!(Arc::ptr_eq(&b, &c), "within an epoch the plan is reused");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn routes_key_on_elem_size_and_budget() {
        let cache = ScheduleCache::new();
        let (src, dst) = dads();
        let planner = RoutePlanner::default();
        let a = cache.route_for(&src, &dst, 8, u64::MAX, false, &planner);
        let b = cache.route_for(&src, &dst, 8, u64::MAX, false, &planner);
        assert!(Arc::ptr_eq(&a, &b), "same (elem, budget) reuses the plan");
        let c = cache.route_for(&src, &dst, 8, 1024, false, &planner);
        assert!(!Arc::ptr_eq(&a, &c), "a different budget must replan");
        let d = cache.route_for(&src, &dst, 4, u64::MAX, false, &planner);
        assert!(!Arc::ptr_eq(&a, &d), "a different element size must replan");
        assert_eq!(cache.routes_len(), 3);
        cache.clear();
        assert_eq!(cache.routes_len(), 0);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(ScheduleCache::new());
        let (src, dst) = dads();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                let (src, dst) = (src.clone(), dst.clone());
                std::thread::spawn(move || {
                    cache.get_or_build(&src, &dst, 0, Role::Receiver).total_elements()
                })
            })
            .collect();
        let totals: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(totals.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.len(), 1);
    }
}
