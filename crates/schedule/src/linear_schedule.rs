//! Linearization-based communication schedules (the generic sweep).
//!
//! The alternative construction of §2.3: refer both layouts to the abstract
//! 1-D linearization and intersect *segment lists* instead of rectangular
//! patches. This handles anything a linearization exists for (trees,
//! graphs, arrays in foreign orders) at the cost of per-element index
//! translation during packing — the trade-off experiment E6/E8 quantifies
//! against the region fast path.

use mxn_dad::{Dad, LocalArray};
use mxn_linearize::{extract_segments, insert_segments, ArrayOrder, SegmentList};
use mxn_runtime::{Comm, InterComm, MsgSize, Result};

use crate::region_schedule::Role;

/// A per-rank schedule expressed in linearization segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearSchedule {
    role: Role,
    my_rank: usize,
    order: ArrayOrder,
    /// `(peer, segments)` with non-empty segments, ascending peer.
    pairs: Vec<(usize, SegmentList)>,
}

impl LinearSchedule {
    fn build(me: &Dad, peer_dad: &Dad, my_rank: usize, order: ArrayOrder, role: Role) -> Self {
        assert!(me.conforms(peer_dad), "descriptors must share global extents");
        let mine = order.rank_segments(me, my_rank);
        let mut pairs = Vec::new();
        for peer in 0..peer_dad.nranks() {
            let theirs = order.rank_segments(peer_dad, peer);
            let overlap = mine.intersect(&theirs);
            if !overlap.is_empty() {
                pairs.push((peer, overlap));
            }
        }
        LinearSchedule { role, my_rank, order, pairs }
    }

    /// Builds the sending side's schedule for `my_rank` of `src`.
    pub fn for_sender(src: &Dad, dst: &Dad, order: ArrayOrder, my_rank: usize) -> Self {
        Self::build(src, dst, my_rank, order, Role::Sender)
    }

    /// Builds the receiving side's schedule for `my_rank` of `dst`.
    pub fn for_receiver(src: &Dad, dst: &Dad, order: ArrayOrder, my_rank: usize) -> Self {
        Self::build(dst, src, my_rank, order, Role::Receiver)
    }

    /// The schedule's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Per-peer segment plans.
    pub fn pairs(&self) -> &[(usize, SegmentList)] {
        &self.pairs
    }

    /// Number of messages exchanged.
    pub fn num_messages(&self) -> usize {
        self.pairs.len()
    }

    /// Total elements moved by this rank.
    pub fn total_elements(&self) -> usize {
        self.pairs.iter().map(|(_, s)| s.total_len()).sum()
    }

    /// In-memory size of the schedule.
    pub fn schedule_bytes(&self) -> usize {
        self.pairs.iter().map(|(_, s)| std::mem::size_of::<usize>() + s.descriptor_bytes()).sum()
    }

    /// Sender side over an inter-communicator. Returns elements sent.
    pub fn execute_send<T>(
        &self,
        ic: &InterComm,
        dad: &Dad,
        local: &LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(self.role, Role::Sender, "execute_send needs a sender schedule");
        let mut moved = 0;
        for (peer, segs) in &self.pairs {
            let buf = extract_segments(local, dad.extents(), self.order, segs);
            moved += buf.len();
            ic.send(*peer, tag, buf)?;
        }
        Ok(moved)
    }

    /// Receiver side over an inter-communicator. Returns elements received.
    pub fn execute_recv<T>(
        &self,
        ic: &InterComm,
        dad: &Dad,
        local: &mut LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(self.role, Role::Receiver, "execute_recv needs a receiver schedule");
        let mut moved = 0;
        for (peer, segs) in &self.pairs {
            let data: Vec<T> = ic.recv(*peer, tag)?;
            moved += data.len();
            insert_segments(local, dad.extents(), self.order, segs, &data);
        }
        Ok(moved)
    }

    /// Intra-communicator redistribution; see
    /// [`crate::RegionSchedule::execute_local`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_local<T>(
        send: &LinearSchedule,
        recv: &LinearSchedule,
        comm: &Comm,
        src_dad: &Dad,
        dst_dad: &Dad,
        src_local: &LocalArray<T>,
        dst_local: &mut LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(send.role, Role::Sender);
        assert_eq!(recv.role, Role::Receiver);
        for (peer, segs) in &send.pairs {
            let buf = extract_segments(src_local, src_dad.extents(), send.order, segs);
            comm.send(*peer, tag, buf)?;
        }
        let mut moved = 0;
        for (peer, segs) in &recv.pairs {
            let data: Vec<T> = comm.recv(*peer, tag)?;
            moved += data.len();
            insert_segments(dst_local, dst_dad.extents(), recv.order, segs, &data);
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region_schedule::RegionSchedule;
    use mxn_dad::Extents;
    use mxn_runtime::{Universe, World};

    #[test]
    fn agrees_with_region_schedule_on_totals() {
        let e = Extents::new([12, 8]);
        let src = Dad::block(e.clone(), &[4, 1]).unwrap();
        let dst = Dad::block(e, &[2, 2]).unwrap();
        for rank in 0..4 {
            let lin = LinearSchedule::for_sender(&src, &dst, ArrayOrder::RowMajor, rank);
            let reg = RegionSchedule::for_sender(&src, &dst, rank);
            assert_eq!(lin.total_elements(), reg.total_elements());
            assert_eq!(
                lin.pairs().iter().map(|(p, _)| *p).collect::<Vec<_>>(),
                reg.pairs().iter().map(|p| p.peer).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn end_to_end_cross_program() {
        Universe::run(&[3, 2], |_, ctx| {
            let e = Extents::new([6, 4]);
            let src = Dad::block(e.clone(), &[3, 1]).unwrap();
            let dst = Dad::block(e, &[1, 2]).unwrap();
            let order = ArrayOrder::RowMajor;
            if ctx.program == 0 {
                let sched = LinearSchedule::for_sender(&src, &dst, order, ctx.comm.rank());
                let local =
                    LocalArray::from_fn(&src, ctx.comm.rank(), |idx| (idx[0] * 4 + idx[1]) as u64);
                sched.execute_send(ctx.intercomm(1), &src, &local, 0).unwrap();
            } else {
                let sched = LinearSchedule::for_receiver(&src, &dst, order, ctx.comm.rank());
                let mut local: LocalArray<u64> = LocalArray::allocate(&dst, ctx.comm.rank());
                let moved = sched.execute_recv(ctx.intercomm(0), &dst, &mut local, 0).unwrap();
                assert_eq!(moved, local.len());
                for (idx, &v) in local.iter() {
                    assert_eq!(v, (idx[0] * 4 + idx[1]) as u64);
                }
            }
        });
    }

    #[test]
    fn intra_comm_col_major() {
        World::run(2, |p| {
            let comm = p.world();
            let e = Extents::new([4, 4]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[1, 2]).unwrap();
            let order = ArrayOrder::ColMajor;
            let send = LinearSchedule::for_sender(&src, &dst, order, comm.rank());
            let recv = LinearSchedule::for_receiver(&src, &dst, order, comm.rank());
            let src_local =
                LocalArray::from_fn(&src, comm.rank(), |idx| (idx[0] * 4 + idx[1]) as i32);
            let mut dst_local: LocalArray<i32> = LocalArray::allocate(&dst, comm.rank());
            LinearSchedule::execute_local(
                &send,
                &recv,
                comm,
                &src,
                &dst,
                &src_local,
                &mut dst_local,
                0,
            )
            .unwrap();
            for (idx, &v) in dst_local.iter() {
                assert_eq!(v, (idx[0] * 4 + idx[1]) as i32);
            }
        });
    }

    #[test]
    fn linear_schedule_merges_fragmented_runs() {
        // Row-block → row-block with identical layouts: each rank keeps its
        // own data as one merged run (self-pair only).
        let e = Extents::new([8, 8]);
        let d = Dad::block(e, &[4, 1]).unwrap();
        for rank in 0..4 {
            let s = LinearSchedule::for_sender(&d, &d, ArrayOrder::RowMajor, rank);
            assert_eq!(s.num_messages(), 1);
            assert_eq!(s.pairs()[0].0, rank);
            assert_eq!(s.pairs()[0].1.runs().len(), 1, "contiguous rows merge");
        }
    }
}
