//! Region-based communication schedules (the descriptor fast path).
//!
//! This is the approach of CUMULVS, PAWS and InterComm (paper §3): "distill
//! a given data decomposition on a per dimension basis into subregions or
//! sub-sampled patches". A schedule is computed *per rank, per side* by
//! intersecting this rank's rectangular patches with peer patches — no
//! central coordinator, so schedule creation is not serialized (the
//! Section 3 scalability requirement, measured by E14).
//!
//! Construction is a two-layer pipeline:
//!
//! 1. **Pruned peer discovery.** Instead of probing every peer rank, the
//!    peer descriptor's [`mxn_dad::OverlapIndex`] resolves each local patch
//!    to the peers that can overlap it per axis (binary search / closed
//!    form on the axis distributions), so build cost scales with the
//!    *overlapping* peer count, not the communicator size. The historical
//!    all-pairs construction survives as [`RegionSchedule::for_sender_naive`]
//!    / [`RegionSchedule::for_receiver_naive`] — a test oracle and bench
//!    baseline that produces byte-identical schedules.
//! 2. **Plan compilation.** Every per-peer region list is compiled into a
//!    [`CopyPlan`] against this rank's patch layout, so steady-state
//!    execution is `copy_from_slice` runs into pooled buffers
//!    ([`TransferBuffers`]) with no per-region allocation.
//!
//! Because sender and receiver compute the same pairwise intersections and
//! canonicalize their order, a transfer message carries *only data*: one
//! packed buffer per peer, no per-element metadata. That is the payoff that
//! makes precomputed schedules cheaper than the receiver-request protocol
//! after a few reuses (experiment E7).

use std::collections::BTreeMap;

use crate::plan::{CopyPlan, TransferBuffers};
use mxn_dad::{Dad, LocalArray, Region};
use mxn_runtime::{record_schedule_build, Comm, InterComm, MsgSize, Result};

/// The regions this rank exchanges with one peer, canonically ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairRegions {
    /// Peer rank (in the *other* descriptor's rank space).
    pub peer: usize,
    /// Intersection regions, sorted by lower corner.
    pub regions: Vec<Region>,
}

impl PairRegions {
    /// Total elements exchanged with this peer.
    pub fn elements(&self) -> usize {
        self.regions.iter().map(Region::len).sum()
    }
}

/// Which side of a transfer a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// This rank exports data described by the source descriptor.
    Sender,
    /// This rank imports data described by the destination descriptor.
    Receiver,
}

/// A reusable per-rank communication schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSchedule {
    role: Role,
    my_rank: usize,
    pairs: Vec<PairRegions>,
    /// One precompiled copy plan per pair, against `my_patches`.
    plans: Vec<CopyPlan>,
    /// This rank's patch layout at build time; execution asserts the
    /// `LocalArray` it is handed matches, since plan offsets index into it.
    my_patches: Vec<Region>,
}

/// Sorts `(source patch, region)` parts into the canonical by-lower-corner
/// order and splits them into a [`PairRegions`] plus its compiled plan.
/// Pieces are pairwise disjoint (distinct local patches or distinct peer
/// patches), so lower corners are distinct and the order is deterministic
/// and identical between the pruned and naive constructions.
fn finish_pair(
    peer: usize,
    mine: &[Region],
    mut parts: Vec<(usize, Region)>,
) -> (PairRegions, CopyPlan) {
    parts.sort_by(|a, b| a.1.lo().cmp(b.1.lo()));
    let plan = CopyPlan::from_sources(mine, &parts);
    let regions = parts.into_iter().map(|(_, r)| r).collect();
    (PairRegions { peer, regions }, plan)
}

impl RegionSchedule {
    /// Pruned construction: per-axis overlap queries give the candidate
    /// peers for each local patch, so only peers that can actually overlap
    /// are probed.
    fn build(me_dad: &Dad, peer_dad: &Dad, my_rank: usize, role: Role) -> RegionSchedule {
        assert!(
            me_dad.conforms(peer_dad),
            "source and destination descriptors must share global extents"
        );
        let mut build_span = mxn_trace::span(
            mxn_trace::EventId::ScheduleBuild,
            [role as u64, me_dad.nranks() as u64, peer_dad.nranks() as u64, 0],
        );
        let mine = me_dad.patches(my_rank);
        let index = peer_dad.overlap_index();
        let mut probes = 0u64;
        let mut per_peer: BTreeMap<usize, Vec<(usize, Region)>> = BTreeMap::new();
        for (pi, patch) in mine.iter().enumerate() {
            let hits = index.query(patch);
            probes += hits.probes as u64;
            for (peer, regions) in hits.hits {
                per_peer.entry(peer).or_default().extend(regions.into_iter().map(|r| (pi, r)));
            }
        }
        let mut pairs = Vec::with_capacity(per_peer.len());
        let mut plans = Vec::with_capacity(pairs.capacity());
        for (peer, parts) in per_peer {
            let (pair, plan) = finish_pair(peer, &mine, parts);
            pairs.push(pair);
            plans.push(plan);
        }
        record_schedule_build(probes, pairs.len() as u64);
        build_span.set_end([role as u64, probes, pairs.len() as u64, 0]);
        RegionSchedule { role, my_rank, pairs, plans, my_patches: mine }
    }

    /// All-pairs construction (probes every peer rank). Kept as the test
    /// oracle and bench baseline for the pruned [`Self::build`].
    fn build_naive(me_dad: &Dad, peer_dad: &Dad, my_rank: usize, role: Role) -> RegionSchedule {
        assert!(
            me_dad.conforms(peer_dad),
            "source and destination descriptors must share global extents"
        );
        let mut build_span = mxn_trace::span(
            mxn_trace::EventId::ScheduleBuild,
            [role as u64, me_dad.nranks() as u64, peer_dad.nranks() as u64, 0],
        );
        let mine = me_dad.patches(my_rank);
        let mut pairs = Vec::new();
        let mut plans = Vec::new();
        for peer in 0..peer_dad.nranks() {
            let theirs = peer_dad.patches(peer);
            let mut parts = Vec::new();
            for (pi, p) in mine.iter().enumerate() {
                for q in &theirs {
                    if let Some(r) = p.intersect(q) {
                        parts.push((pi, r));
                    }
                }
            }
            if !parts.is_empty() {
                let (pair, plan) = finish_pair(peer, &mine, parts);
                pairs.push(pair);
                plans.push(plan);
            }
        }
        record_schedule_build(peer_dad.nranks() as u64, pairs.len() as u64);
        build_span.set_end([role as u64, peer_dad.nranks() as u64, pairs.len() as u64, 0]);
        RegionSchedule { role, my_rank, pairs, plans, my_patches: mine }
    }

    /// Builds the sending side's schedule for `my_rank` of `src`.
    pub fn for_sender(src: &Dad, dst: &Dad, my_rank: usize) -> RegionSchedule {
        Self::build(src, dst, my_rank, Role::Sender)
    }

    /// Builds the receiving side's schedule for `my_rank` of `dst`.
    pub fn for_receiver(src: &Dad, dst: &Dad, my_rank: usize) -> RegionSchedule {
        Self::build(dst, src, my_rank, Role::Receiver)
    }

    /// All-pairs variant of [`Self::for_sender`] (test oracle / baseline).
    pub fn for_sender_naive(src: &Dad, dst: &Dad, my_rank: usize) -> RegionSchedule {
        Self::build_naive(src, dst, my_rank, Role::Sender)
    }

    /// All-pairs variant of [`Self::for_receiver`] (test oracle / baseline).
    pub fn for_receiver_naive(src: &Dad, dst: &Dad, my_rank: usize) -> RegionSchedule {
        Self::build_naive(dst, src, my_rank, Role::Receiver)
    }

    /// The schedule's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The rank this schedule was built for.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Per-peer transfer plans (peers with nothing to exchange omitted).
    pub fn pairs(&self) -> &[PairRegions] {
        &self.pairs
    }

    /// The precompiled copy plan for pair `i` (parallel to [`Self::pairs`]).
    pub fn plan(&self, i: usize) -> &CopyPlan {
        &self.plans[i]
    }

    /// Number of messages this rank will send (or receive).
    pub fn num_messages(&self) -> usize {
        self.pairs.len()
    }

    /// Total elements this rank moves.
    pub fn total_elements(&self) -> usize {
        self.pairs.iter().map(PairRegions::elements).sum()
    }

    /// In-memory size of the schedule (E6/E8 metric).
    pub fn schedule_bytes(&self) -> usize {
        self.pairs
            .iter()
            .map(|p| {
                std::mem::size_of::<usize>()
                    + p.regions
                        .iter()
                        .map(|r| 2 * r.ndim() * std::mem::size_of::<usize>())
                        .sum::<usize>()
            })
            .sum()
    }

    fn check_layout<T>(&self, local: &LocalArray<T>) {
        assert!(
            local.num_patches() == self.my_patches.len()
                && local.regions().eq(self.my_patches.iter()),
            "LocalArray layout does not match the descriptor/rank this schedule was built for"
        );
    }

    /// Packs the regions exchanged with pair `i` into `out` (cleared
    /// first) via the precompiled plan — no per-region allocation.
    pub fn pack_pair_into<T: Copy>(&self, i: usize, local: &LocalArray<T>, out: &mut Vec<T>) {
        self.check_layout(local);
        self.plans[i].pack_into(local, out);
    }

    /// Unpacks a packed per-peer buffer for pair `i` via the precompiled
    /// plan.
    pub fn unpack_pair_from<T: Copy>(&self, i: usize, local: &mut LocalArray<T>, data: &[T]) {
        self.check_layout(local);
        self.plans[i].unpack_from(local, data);
    }

    /// Sender side, across an inter-communicator: one packed message per
    /// destination peer. Returns elements sent.
    ///
    /// # Panics
    /// If the schedule's role is not [`Role::Sender`].
    pub fn execute_send<T>(&self, ic: &InterComm, local: &LocalArray<T>, tag: i32) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        let mut pool = TransferBuffers::new();
        self.execute_send_pooled(ic, local, tag, &mut pool)
    }

    /// [`Self::execute_send`] drawing message buffers from a caller-owned
    /// pool (the transport consumes the buffer, so sends alone cannot
    /// recycle — pair with a receive path that feeds the same pool).
    pub fn execute_send_pooled<T>(
        &self,
        ic: &InterComm,
        local: &LocalArray<T>,
        tag: i32,
        pool: &mut TransferBuffers<T>,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(self.role, Role::Sender, "execute_send needs a sender schedule");
        self.check_layout(local);
        let mut moved = 0;
        for (pair, plan) in self.pairs.iter().zip(&self.plans) {
            let mut buf = pool.lease(plan.total());
            plan.pack_into(local, &mut buf);
            moved += buf.len();
            ic.send(pair.peer, tag, buf)?;
        }
        Ok(moved)
    }

    /// Receiver side, across an inter-communicator. Returns elements
    /// received.
    ///
    /// # Panics
    /// If the schedule's role is not [`Role::Receiver`].
    pub fn execute_recv<T>(
        &self,
        ic: &InterComm,
        local: &mut LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        let mut pool = TransferBuffers::new();
        self.execute_recv_pooled(ic, local, tag, &mut pool)
    }

    /// [`Self::execute_recv`] recycling every received buffer into a
    /// caller-owned pool for later sends to draw from.
    pub fn execute_recv_pooled<T>(
        &self,
        ic: &InterComm,
        local: &mut LocalArray<T>,
        tag: i32,
        pool: &mut TransferBuffers<T>,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(self.role, Role::Receiver, "execute_recv needs a receiver schedule");
        self.check_layout(local);
        let mut moved = 0;
        for (pair, plan) in self.pairs.iter().zip(&self.plans) {
            let data: Vec<T> = ic.recv(pair.peer, tag)?;
            moved += data.len();
            plan.unpack_from(local, &data);
            pool.recycle(data);
        }
        Ok(moved)
    }

    /// Intra-communicator redistribution (e.g. a transpose
    /// self-connection): every rank sends with its sender schedule and
    /// receives with its receiver schedule over the same communicator.
    /// All sends are posted before any receive, so the exchange cannot
    /// deadlock.
    pub fn execute_local<T>(
        send: &RegionSchedule,
        recv: &RegionSchedule,
        comm: &Comm,
        src_local: &LocalArray<T>,
        dst_local: &mut LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        let mut pool = TransferBuffers::new();
        Self::execute_local_pooled(send, recv, comm, src_local, dst_local, tag, &mut pool)
    }

    /// [`Self::execute_local`] with a caller-owned buffer pool. Because
    /// every rank both sends and receives, buffers circulate: received
    /// buffers are recycled and satisfy the next step's leases, so fresh
    /// allocation stops after the first step of a steady-state exchange.
    pub fn execute_local_pooled<T>(
        send: &RegionSchedule,
        recv: &RegionSchedule,
        comm: &Comm,
        src_local: &LocalArray<T>,
        dst_local: &mut LocalArray<T>,
        tag: i32,
        pool: &mut TransferBuffers<T>,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(send.role, Role::Sender);
        assert_eq!(recv.role, Role::Receiver);
        send.check_layout(src_local);
        recv.check_layout(dst_local);
        for (pair, plan) in send.pairs.iter().zip(&send.plans) {
            let mut buf = pool.lease(plan.total());
            plan.pack_into(src_local, &mut buf);
            comm.send(pair.peer, tag, buf)?;
        }
        let mut moved = 0;
        for (pair, plan) in recv.pairs.iter().zip(&recv.plans) {
            let data: Vec<T> = comm.recv(pair.peer, tag)?;
            moved += data.len();
            plan.unpack_from(dst_local, &data);
            pool.recycle(data);
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::{AxisDist, Extents, Template};
    use mxn_runtime::{reset_schedule_stats, schedule_stats, Universe, World};

    fn value(idx: &[usize], cols: usize) -> f64 {
        (idx[0] * cols + idx[1]) as f64
    }

    #[test]
    fn sender_and_receiver_schedules_are_mirror_images() {
        let src = Dad::block(Extents::new([8, 8]), &[4, 1]).unwrap();
        let dst = Dad::block(Extents::new([8, 8]), &[1, 2]).unwrap();
        // Sender 1 (rows 2..4) intersects both receivers.
        let s = RegionSchedule::for_sender(&src, &dst, 1);
        assert_eq!(s.num_messages(), 2);
        assert_eq!(s.total_elements(), 16);
        // Receiver 0 (cols 0..4) hears from all four senders.
        let r = RegionSchedule::for_receiver(&src, &dst, 0);
        assert_eq!(r.num_messages(), 4);
        assert_eq!(r.total_elements(), 32);
        // Mirror: sender 1's plan for peer 0 equals receiver 0's for peer 1.
        let s_to_0 = s.pairs().iter().find(|p| p.peer == 0).unwrap();
        let r_from_1 = r.pairs().iter().find(|p| p.peer == 1).unwrap();
        assert_eq!(s_to_0.regions, r_from_1.regions);
    }

    #[test]
    fn pruned_matches_naive_oracle() {
        let e = Extents::new([24, 24]);
        let dads = [
            Dad::block(e.clone(), &[4, 2]).unwrap(),
            Dad::block(e.clone(), &[1, 8]).unwrap(),
            Dad::regular(
                Template::new(
                    e.clone(),
                    vec![
                        AxisDist::BlockCyclic { block: 3, nprocs: 4 },
                        AxisDist::Cyclic { nprocs: 2 },
                    ],
                )
                .unwrap(),
            ),
        ];
        for src in &dads {
            for dst in &dads {
                for rank in 0..src.nranks() {
                    let pruned = RegionSchedule::for_sender(src, dst, rank);
                    let naive = RegionSchedule::for_sender_naive(src, dst, rank);
                    assert_eq!(pruned, naive, "sender rank {rank}");
                }
                for rank in 0..dst.nranks() {
                    let pruned = RegionSchedule::for_receiver(src, dst, rank);
                    let naive = RegionSchedule::for_receiver_naive(src, dst, rank);
                    assert_eq!(pruned, naive, "receiver rank {rank}");
                }
            }
        }
    }

    #[test]
    fn build_probes_scale_with_overlap_not_nranks() {
        // 256 → 256 block↔block: only 16 of the 256 column-block receivers
        // own a non-empty column, and the index probes exactly those.
        let e = Extents::new([4096, 16]);
        let src = Dad::block(e.clone(), &[256, 1]).unwrap();
        let dst = Dad::block(e, &[1, 256]).unwrap();
        reset_schedule_stats();
        let s = RegionSchedule::for_sender(&src, &dst, 17);
        let stats = schedule_stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(s.num_messages(), 16, "row block meets 16 non-empty col blocks");
        assert!(stats.peer_probes <= 18, "probed {} peers out of 256", stats.peer_probes);

        // Aligned 256 → 256 (same layout both sides): one overlapping peer.
        let e2 = Extents::new([4096, 16]);
        let a = Dad::block(e2.clone(), &[256, 1]).unwrap();
        let b = Dad::block(e2, &[256, 1]).unwrap();
        reset_schedule_stats();
        let s = RegionSchedule::for_sender(&a, &b, 100);
        let stats = schedule_stats();
        assert_eq!(s.num_messages(), 1);
        assert!(
            stats.peer_probes <= 3,
            "probed {} peers out of 256 for an aligned redistribution",
            stats.peer_probes
        );

        // Naive oracle probes all 256 by construction.
        reset_schedule_stats();
        let _ = RegionSchedule::for_sender_naive(&a, &b, 100);
        assert_eq!(schedule_stats().peer_probes, 256);
    }

    #[test]
    fn conformance_checked() {
        let a = Dad::block(Extents::new([4]), &[2]).unwrap();
        let b = Dad::block(Extents::new([5]), &[2]).unwrap();
        let r = std::panic::catch_unwind(|| RegionSchedule::for_sender(&a, &b, 0));
        assert!(r.is_err());
    }

    #[test]
    fn layout_mismatch_rejected() {
        let e = Extents::new([8, 8]);
        let src = Dad::block(e.clone(), &[4, 1]).unwrap();
        let dst = Dad::block(e, &[1, 2]).unwrap();
        let sched = RegionSchedule::for_sender(&src, &dst, 1);
        // A LocalArray for the wrong rank must be rejected, not misread.
        let local = LocalArray::from_fn(&src, 0, |idx| value(idx, 8));
        let mut out = Vec::new();
        let r = std::panic::catch_unwind(move || sched.pack_pair_into(0, &local, &mut out));
        assert!(r.is_err());
    }

    fn end_to_end(
        m: usize,
        n: usize,
        rows: usize,
        cols: usize,
        src_grid: &[usize],
        dst_grid: &[usize],
    ) {
        let src_grid = src_grid.to_vec();
        let dst_grid = dst_grid.to_vec();
        Universe::run(&[m, n], move |_, ctx| {
            let e = Extents::new([rows, cols]);
            let src = Dad::block(e.clone(), &src_grid).unwrap();
            let dst = Dad::block(e, &dst_grid).unwrap();
            if ctx.program == 0 {
                let sched = RegionSchedule::for_sender(&src, &dst, ctx.comm.rank());
                let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| value(idx, cols));
                sched.execute_send(ctx.intercomm(1), &local, 1).unwrap();
            } else {
                let sched = RegionSchedule::for_receiver(&src, &dst, ctx.comm.rank());
                let mut local: LocalArray<f64> = LocalArray::allocate(&dst, ctx.comm.rank());
                let moved = sched.execute_recv(ctx.intercomm(0), &mut local, 1).unwrap();
                assert_eq!(moved, local.len());
                for (idx, &v) in local.iter() {
                    assert_eq!(v, value(&idx, cols), "at {idx:?}");
                }
            }
        });
    }

    #[test]
    fn rows_to_cols_2x2() {
        end_to_end(2, 2, 6, 6, &[2, 1], &[1, 2]);
    }

    #[test]
    fn figure1_8_to_27_shape() {
        // The paper's Figure 1 layout in 2-D grids: 8 = 4×2 → 6 = 2×3.
        end_to_end(8, 6, 12, 12, &[4, 2], &[2, 3]);
    }

    #[test]
    fn one_to_many() {
        end_to_end(1, 6, 6, 6, &[1, 1], &[2, 3]);
    }

    #[test]
    fn many_to_one() {
        end_to_end(6, 1, 6, 6, &[2, 3], &[1, 1]);
    }

    #[test]
    fn block_cyclic_source() {
        Universe::run(&[2, 2], |_, ctx| {
            let e = Extents::new([8, 4]);
            let src = Dad::regular(
                Template::new(
                    e.clone(),
                    vec![AxisDist::BlockCyclic { block: 2, nprocs: 2 }, AxisDist::Collapsed],
                )
                .unwrap(),
            );
            let dst = Dad::block(e, &[2, 1]).unwrap();
            if ctx.program == 0 {
                let sched = RegionSchedule::for_sender(&src, &dst, ctx.comm.rank());
                let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| value(idx, 4));
                sched.execute_send(ctx.intercomm(1), &local, 0).unwrap();
            } else {
                let sched = RegionSchedule::for_receiver(&src, &dst, ctx.comm.rank());
                let mut local: LocalArray<f64> = LocalArray::allocate(&dst, ctx.comm.rank());
                sched.execute_recv(ctx.intercomm(0), &mut local, 0).unwrap();
                for (idx, &v) in local.iter() {
                    assert_eq!(v, value(&idx, 4));
                }
            }
        });
    }

    #[test]
    fn intra_comm_transpose() {
        // Same 4 ranks redistribute row-blocks to col-blocks in place.
        World::run(4, |p| {
            let comm = p.world();
            let e = Extents::new([8, 8]);
            let src = Dad::block(e.clone(), &[4, 1]).unwrap();
            let dst = Dad::block(e, &[1, 4]).unwrap();
            let send = RegionSchedule::for_sender(&src, &dst, comm.rank());
            let recv = RegionSchedule::for_receiver(&src, &dst, comm.rank());
            let src_local = LocalArray::from_fn(&src, comm.rank(), |idx| value(idx, 8));
            let mut dst_local: LocalArray<f64> = LocalArray::allocate(&dst, comm.rank());
            let moved =
                RegionSchedule::execute_local(&send, &recv, comm, &src_local, &mut dst_local, 3)
                    .unwrap();
            assert_eq!(moved, 16);
            for (idx, &v) in dst_local.iter() {
                assert_eq!(v, value(&idx, 8));
            }
        });
    }

    #[test]
    fn pooled_transpose_stops_allocating_after_first_step() {
        World::run(4, |p| {
            let comm = p.world();
            let e = Extents::new([8, 8]);
            let src = Dad::block(e.clone(), &[4, 1]).unwrap();
            let dst = Dad::block(e, &[1, 4]).unwrap();
            let send = RegionSchedule::for_sender(&src, &dst, comm.rank());
            let recv = RegionSchedule::for_receiver(&src, &dst, comm.rank());
            let src_local = LocalArray::from_fn(&src, comm.rank(), |idx| value(idx, 8));
            let mut dst_local: LocalArray<f64> = LocalArray::allocate(&dst, comm.rank());
            let mut pool = TransferBuffers::new();
            let mut after_first = 0;
            for step in 0..6 {
                RegionSchedule::execute_local_pooled(
                    &send,
                    &recv,
                    comm,
                    &src_local,
                    &mut dst_local,
                    step,
                    &mut pool,
                )
                .unwrap();
                // Everyone recycles what they received before the next
                // step's sends, so the steady state leases from the pool.
                comm.barrier().unwrap();
                if step == 0 {
                    after_first = pool.stats().1;
                }
            }
            let (leases, fresh) = pool.stats();
            assert_eq!(leases, 6 * send.num_messages() as u64);
            assert_eq!(fresh, after_first, "steady-state steps allocated fresh buffers");
            for (idx, &v) in dst_local.iter() {
                assert_eq!(v, value(&idx, 8));
            }
        });
    }

    #[test]
    fn schedule_reuse_same_object_multiple_transfers() {
        Universe::run(&[2, 3], |_, ctx| {
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[1, 3]).unwrap();
            if ctx.program == 0 {
                let sched = RegionSchedule::for_sender(&src, &dst, ctx.comm.rank());
                for step in 0..5i64 {
                    let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| {
                        (idx[0] * 6 + idx[1]) as i64 + step * 100
                    });
                    sched.execute_send(ctx.intercomm(1), &local, step as i32).unwrap();
                }
            } else {
                let sched = RegionSchedule::for_receiver(&src, &dst, ctx.comm.rank());
                for step in 0..5i64 {
                    let mut local: LocalArray<i64> = LocalArray::allocate(&dst, ctx.comm.rank());
                    sched.execute_recv(ctx.intercomm(0), &mut local, step as i32).unwrap();
                    for (idx, &v) in local.iter() {
                        assert_eq!(v, (idx[0] * 6 + idx[1]) as i64 + step * 100);
                    }
                }
            }
        });
    }

    #[test]
    fn schedule_bytes_reflect_fragmentation() {
        let e = Extents::new([64, 4]);
        let dst = Dad::block(e.clone(), &[2, 1]).unwrap();
        let coarse = Dad::block(e.clone(), &[4, 1]).unwrap();
        let fine = Dad::regular(
            Template::new(
                e,
                vec![AxisDist::BlockCyclic { block: 2, nprocs: 4 }, AxisDist::Collapsed],
            )
            .unwrap(),
        );
        let s_coarse = RegionSchedule::for_receiver(&coarse, &dst, 0);
        let s_fine = RegionSchedule::for_receiver(&fine, &dst, 0);
        assert!(s_fine.schedule_bytes() > s_coarse.schedule_bytes());
        assert_eq!(s_fine.total_elements(), s_coarse.total_elements());
    }
}
