//! Region-based communication schedules (the descriptor fast path).
//!
//! This is the approach of CUMULVS, PAWS and InterComm (paper §3): "distill
//! a given data decomposition on a per dimension basis into subregions or
//! sub-sampled patches". A schedule is computed *per rank, per side* by
//! intersecting this rank's rectangular patches with every peer rank's
//! patches — no central coordinator, so schedule creation is not serialized
//! (the Section 3 scalability requirement, measured by E14).
//!
//! Because sender and receiver compute the same pairwise intersections and
//! canonicalize their order, a transfer message carries *only data*: one
//! packed buffer per peer, no per-element metadata. That is the payoff that
//! makes precomputed schedules cheaper than the receiver-request protocol
//! after a few reuses (experiment E7).

use mxn_dad::{Dad, LocalArray, Region};
use mxn_runtime::{Comm, InterComm, MsgSize, Result};

/// The regions this rank exchanges with one peer, canonically ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairRegions {
    /// Peer rank (in the *other* descriptor's rank space).
    pub peer: usize,
    /// Intersection regions, sorted by lower corner.
    pub regions: Vec<Region>,
}

impl PairRegions {
    /// Total elements exchanged with this peer.
    pub fn elements(&self) -> usize {
        self.regions.iter().map(Region::len).sum()
    }
}

/// Which side of a transfer a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// This rank exports data described by the source descriptor.
    Sender,
    /// This rank imports data described by the destination descriptor.
    Receiver,
}

/// A reusable per-rank communication schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSchedule {
    role: Role,
    my_rank: usize,
    pairs: Vec<PairRegions>,
}

fn intersect_patches(mine: &[Region], theirs: &[Region]) -> Vec<Region> {
    let mut out = Vec::new();
    for p in mine {
        for q in theirs {
            if let Some(r) = p.intersect(q) {
                out.push(r);
            }
        }
    }
    out.sort_by(|a, b| a.lo().cmp(b.lo()));
    out
}

impl RegionSchedule {
    fn build(me_dad: &Dad, peer_dad: &Dad, my_rank: usize, role: Role) -> RegionSchedule {
        assert!(
            me_dad.conforms(peer_dad),
            "source and destination descriptors must share global extents"
        );
        let mine = me_dad.patches(my_rank);
        let mut pairs = Vec::new();
        for peer in 0..peer_dad.nranks() {
            let theirs = peer_dad.patches(peer);
            let regions = intersect_patches(&mine, &theirs);
            if !regions.is_empty() {
                pairs.push(PairRegions { peer, regions });
            }
        }
        RegionSchedule { role, my_rank, pairs }
    }

    /// Builds the sending side's schedule for `my_rank` of `src`.
    pub fn for_sender(src: &Dad, dst: &Dad, my_rank: usize) -> RegionSchedule {
        Self::build(src, dst, my_rank, Role::Sender)
    }

    /// Builds the receiving side's schedule for `my_rank` of `dst`.
    pub fn for_receiver(src: &Dad, dst: &Dad, my_rank: usize) -> RegionSchedule {
        Self::build(dst, src, my_rank, Role::Receiver)
    }

    /// The schedule's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The rank this schedule was built for.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Per-peer transfer plans (peers with nothing to exchange omitted).
    pub fn pairs(&self) -> &[PairRegions] {
        &self.pairs
    }

    /// Number of messages this rank will send (or receive).
    pub fn num_messages(&self) -> usize {
        self.pairs.len()
    }

    /// Total elements this rank moves.
    pub fn total_elements(&self) -> usize {
        self.pairs.iter().map(PairRegions::elements).sum()
    }

    /// In-memory size of the schedule (E6/E8 metric).
    pub fn schedule_bytes(&self) -> usize {
        self.pairs
            .iter()
            .map(|p| {
                std::mem::size_of::<usize>()
                    + p.regions
                        .iter()
                        .map(|r| 2 * r.ndim() * std::mem::size_of::<usize>())
                        .sum::<usize>()
            })
            .sum()
    }

    fn pack_for<T: Copy>(&self, pair: &PairRegions, local: &LocalArray<T>) -> Vec<T> {
        let mut buf = Vec::with_capacity(pair.elements());
        for region in &pair.regions {
            buf.extend(local.pack_region(region));
        }
        buf
    }

    fn unpack_from<T: Copy>(&self, pair: &PairRegions, local: &mut LocalArray<T>, data: &[T]) {
        let mut cursor = 0;
        for region in &pair.regions {
            let n = region.len();
            local.unpack_region(region, &data[cursor..cursor + n]);
            cursor += n;
        }
        debug_assert_eq!(cursor, data.len(), "packed buffer fully consumed");
    }

    /// Sender side, across an inter-communicator: one packed message per
    /// destination peer. Returns elements sent.
    ///
    /// # Panics
    /// If the schedule's role is not [`Role::Sender`].
    pub fn execute_send<T>(
        &self,
        ic: &InterComm,
        local: &LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(self.role, Role::Sender, "execute_send needs a sender schedule");
        let mut moved = 0;
        for pair in &self.pairs {
            let buf = self.pack_for(pair, local);
            moved += buf.len();
            ic.send(pair.peer, tag, buf)?;
        }
        Ok(moved)
    }

    /// Receiver side, across an inter-communicator. Returns elements
    /// received.
    ///
    /// # Panics
    /// If the schedule's role is not [`Role::Receiver`].
    pub fn execute_recv<T>(
        &self,
        ic: &InterComm,
        local: &mut LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(self.role, Role::Receiver, "execute_recv needs a receiver schedule");
        let mut moved = 0;
        for pair in &self.pairs {
            let data: Vec<T> = ic.recv(pair.peer, tag)?;
            moved += data.len();
            self.unpack_from(pair, local, &data);
        }
        Ok(moved)
    }

    /// Intra-communicator redistribution (e.g. a transpose
    /// self-connection): every rank sends with its sender schedule and
    /// receives with its receiver schedule over the same communicator.
    /// All sends are posted before any receive, so the exchange cannot
    /// deadlock.
    pub fn execute_local<T>(
        send: &RegionSchedule,
        recv: &RegionSchedule,
        comm: &Comm,
        src_local: &LocalArray<T>,
        dst_local: &mut LocalArray<T>,
        tag: i32,
    ) -> Result<usize>
    where
        T: Copy + Send + MsgSize + 'static,
    {
        assert_eq!(send.role, Role::Sender);
        assert_eq!(recv.role, Role::Receiver);
        for pair in &send.pairs {
            let buf = send.pack_for(pair, src_local);
            comm.send(pair.peer, tag, buf)?;
        }
        let mut moved = 0;
        for pair in &recv.pairs {
            let data: Vec<T> = comm.recv(pair.peer, tag)?;
            moved += data.len();
            recv.unpack_from(pair, dst_local, &data);
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::{AxisDist, Extents, Template};
    use mxn_runtime::{Universe, World};

    fn value(idx: &[usize], cols: usize) -> f64 {
        (idx[0] * cols + idx[1]) as f64
    }

    #[test]
    fn sender_and_receiver_schedules_are_mirror_images() {
        let src = Dad::block(Extents::new([8, 8]), &[4, 1]).unwrap();
        let dst = Dad::block(Extents::new([8, 8]), &[1, 2]).unwrap();
        // Sender 1 (rows 2..4) intersects both receivers.
        let s = RegionSchedule::for_sender(&src, &dst, 1);
        assert_eq!(s.num_messages(), 2);
        assert_eq!(s.total_elements(), 16);
        // Receiver 0 (cols 0..4) hears from all four senders.
        let r = RegionSchedule::for_receiver(&src, &dst, 0);
        assert_eq!(r.num_messages(), 4);
        assert_eq!(r.total_elements(), 32);
        // Mirror: sender 1's plan for peer 0 equals receiver 0's for peer 1.
        let s_to_0 = s.pairs().iter().find(|p| p.peer == 0).unwrap();
        let r_from_1 = r.pairs().iter().find(|p| p.peer == 1).unwrap();
        assert_eq!(s_to_0.regions, r_from_1.regions);
    }

    #[test]
    fn conformance_checked() {
        let a = Dad::block(Extents::new([4]), &[2]).unwrap();
        let b = Dad::block(Extents::new([5]), &[2]).unwrap();
        let r = std::panic::catch_unwind(|| RegionSchedule::for_sender(&a, &b, 0));
        assert!(r.is_err());
    }

    fn end_to_end(m: usize, n: usize, rows: usize, cols: usize, src_grid: &[usize], dst_grid: &[usize]) {
        let src_grid = src_grid.to_vec();
        let dst_grid = dst_grid.to_vec();
        Universe::run(&[m, n], move |_, ctx| {
            let e = Extents::new([rows, cols]);
            let src = Dad::block(e.clone(), &src_grid).unwrap();
            let dst = Dad::block(e, &dst_grid).unwrap();
            if ctx.program == 0 {
                let sched = RegionSchedule::for_sender(&src, &dst, ctx.comm.rank());
                let local =
                    LocalArray::from_fn(&src, ctx.comm.rank(), |idx| value(idx, cols));
                sched.execute_send(ctx.intercomm(1), &local, 1).unwrap();
            } else {
                let sched = RegionSchedule::for_receiver(&src, &dst, ctx.comm.rank());
                let mut local: LocalArray<f64> = LocalArray::allocate(&dst, ctx.comm.rank());
                let moved = sched.execute_recv(ctx.intercomm(0), &mut local, 1).unwrap();
                assert_eq!(moved, local.len());
                for (idx, &v) in local.iter() {
                    assert_eq!(v, value(&idx, cols), "at {idx:?}");
                }
            }
        });
    }

    #[test]
    fn rows_to_cols_2x2() {
        end_to_end(2, 2, 6, 6, &[2, 1], &[1, 2]);
    }

    #[test]
    fn figure1_8_to_27_shape() {
        // The paper's Figure 1 layout in 2-D grids: 8 = 4×2 → 6 = 2×3.
        end_to_end(8, 6, 12, 12, &[4, 2], &[2, 3]);
    }

    #[test]
    fn one_to_many() {
        end_to_end(1, 6, 6, 6, &[1, 1], &[2, 3]);
    }

    #[test]
    fn many_to_one() {
        end_to_end(6, 1, 6, 6, &[2, 3], &[1, 1]);
    }

    #[test]
    fn block_cyclic_source() {
        Universe::run(&[2, 2], |_, ctx| {
            let e = Extents::new([8, 4]);
            let src = Dad::regular(
                Template::new(
                    e.clone(),
                    vec![AxisDist::BlockCyclic { block: 2, nprocs: 2 }, AxisDist::Collapsed],
                )
                .unwrap(),
            );
            let dst = Dad::block(e, &[2, 1]).unwrap();
            if ctx.program == 0 {
                let sched = RegionSchedule::for_sender(&src, &dst, ctx.comm.rank());
                let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| value(idx, 4));
                sched.execute_send(ctx.intercomm(1), &local, 0).unwrap();
            } else {
                let sched = RegionSchedule::for_receiver(&src, &dst, ctx.comm.rank());
                let mut local: LocalArray<f64> = LocalArray::allocate(&dst, ctx.comm.rank());
                sched.execute_recv(ctx.intercomm(0), &mut local, 0).unwrap();
                for (idx, &v) in local.iter() {
                    assert_eq!(v, value(&idx, 4));
                }
            }
        });
    }

    #[test]
    fn intra_comm_transpose() {
        // Same 4 ranks redistribute row-blocks to col-blocks in place.
        World::run(4, |p| {
            let comm = p.world();
            let e = Extents::new([8, 8]);
            let src = Dad::block(e.clone(), &[4, 1]).unwrap();
            let dst = Dad::block(e, &[1, 4]).unwrap();
            let send = RegionSchedule::for_sender(&src, &dst, comm.rank());
            let recv = RegionSchedule::for_receiver(&src, &dst, comm.rank());
            let src_local = LocalArray::from_fn(&src, comm.rank(), |idx| value(idx, 8));
            let mut dst_local: LocalArray<f64> = LocalArray::allocate(&dst, comm.rank());
            let moved = RegionSchedule::execute_local(
                &send, &recv, comm, &src_local, &mut dst_local, 3,
            )
            .unwrap();
            assert_eq!(moved, 16);
            for (idx, &v) in dst_local.iter() {
                assert_eq!(v, value(&idx, 8));
            }
        });
    }

    #[test]
    fn schedule_reuse_same_object_multiple_transfers() {
        Universe::run(&[2, 3], |_, ctx| {
            let e = Extents::new([6, 6]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[1, 3]).unwrap();
            if ctx.program == 0 {
                let sched = RegionSchedule::for_sender(&src, &dst, ctx.comm.rank());
                for step in 0..5i64 {
                    let local = LocalArray::from_fn(&src, ctx.comm.rank(), |idx| {
                        (idx[0] * 6 + idx[1]) as i64 + step * 100
                    });
                    sched.execute_send(ctx.intercomm(1), &local, step as i32).unwrap();
                }
            } else {
                let sched = RegionSchedule::for_receiver(&src, &dst, ctx.comm.rank());
                for step in 0..5i64 {
                    let mut local: LocalArray<i64> =
                        LocalArray::allocate(&dst, ctx.comm.rank());
                    sched.execute_recv(ctx.intercomm(0), &mut local, step as i32).unwrap();
                    for (idx, &v) in local.iter() {
                        assert_eq!(v, (idx[0] * 6 + idx[1]) as i64 + step * 100);
                    }
                }
            }
        });
    }

    #[test]
    fn schedule_bytes_reflect_fragmentation() {
        let e = Extents::new([64, 4]);
        let dst = Dad::block(e.clone(), &[2, 1]).unwrap();
        let coarse = Dad::block(e.clone(), &[4, 1]).unwrap();
        let fine = Dad::regular(
            Template::new(
                e,
                vec![AxisDist::BlockCyclic { block: 2, nprocs: 4 }, AxisDist::Collapsed],
            )
            .unwrap(),
        );
        let s_coarse = RegionSchedule::for_receiver(&coarse, &dst, 0);
        let s_fine = RegionSchedule::for_receiver(&fine, &dst, 0);
        assert!(s_fine.schedule_bytes() > s_coarse.schedule_bytes());
        assert_eq!(s_fine.total_elements(), s_coarse.total_elements());
    }
}
