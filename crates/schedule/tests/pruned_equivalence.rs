//! Property test: the pruned (overlap-index) schedule construction is
//! observationally identical to the naive all-pairs oracle over random
//! descriptor pairs — same peers, same regions, same canonical order, same
//! compiled plans — for every rank and both roles.

use mxn_dad::{AxisDist, Dad, ExplicitDist, Extents, Region, Template};
use mxn_schedule::RegionSchedule;
use proptest::prelude::*;

/// splitmix64, so descriptor construction is deterministic per drawn seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, lo: usize, hi: usize) -> usize {
    lo + (next(state) % (hi - lo) as u64) as usize
}

/// One of five descriptor families over shared `rows x cols` extents,
/// covering every axis-distribution kind plus explicit multi-patch layouts.
fn make_dad(rows: usize, cols: usize, family: u8, seed: u64) -> Dad {
    let mut s = seed;
    let e = Extents::new([rows, cols]);
    match family % 5 {
        0 => {
            let gr = pick(&mut s, 1, rows.min(5));
            let gc = pick(&mut s, 1, cols.min(4));
            Dad::block(e, &[gr, gc]).unwrap()
        }
        1 => Dad::regular(
            Template::new(
                e,
                vec![
                    AxisDist::BlockCyclic { block: pick(&mut s, 1, 4), nprocs: pick(&mut s, 1, 4) },
                    AxisDist::Cyclic { nprocs: pick(&mut s, 1, 4) },
                ],
            )
            .unwrap(),
        ),
        2 => {
            // GenBlock rows (zero-size blocks allowed) x Collapsed cols.
            let nb = pick(&mut s, 1, 5);
            let mut sizes = vec![0usize; nb];
            for _ in 0..rows {
                sizes[pick(&mut s, 0, nb)] += 1;
            }
            Dad::regular(
                Template::new(e, vec![AxisDist::GenBlock { sizes }, AxisDist::Collapsed]).unwrap(),
            )
        }
        3 => {
            let nprocs = pick(&mut s, 1, 5);
            let owners = (0..rows).map(|_| pick(&mut s, 0, nprocs)).collect();
            Dad::regular(
                Template::new(
                    e,
                    vec![
                        AxisDist::Implicit { owners, nprocs },
                        AxisDist::Block { nprocs: pick(&mut s, 1, 3) },
                    ],
                )
                .unwrap(),
            )
        }
        _ => {
            // Explicit quadrants with random owners (possibly several
            // patches per rank).
            let r = pick(&mut s, 1, rows);
            let c = pick(&mut s, 1, cols);
            let quads = [
                Region::new([0, 0], [r, c]),
                Region::new([0, c], [r, cols]),
                Region::new([r, 0], [rows, c]),
                Region::new([r, c], [rows, cols]),
            ];
            let nranks = pick(&mut s, 1, 5);
            let patches = quads.into_iter().map(|q| (q, pick(&mut s, 0, nranks))).collect();
            Dad::explicit(ExplicitDist::new(e, patches, nranks).unwrap())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pruned_build_equals_naive_oracle(
        rows in 4..20usize,
        cols in 3..12usize,
        src_family in 0..5u8,
        dst_family in 0..5u8,
        seed in 0..u64::MAX,
    ) {
        let src = make_dad(rows, cols, src_family, seed);
        let dst = make_dad(rows, cols, dst_family, seed ^ 0x5851_f42d_4c95_7f2d);
        for rank in 0..src.nranks() {
            prop_assert_eq!(
                RegionSchedule::for_sender(&src, &dst, rank),
                RegionSchedule::for_sender_naive(&src, &dst, rank),
                "sender rank {} of {:?} -> {:?}", rank, src, dst
            );
        }
        for rank in 0..dst.nranks() {
            prop_assert_eq!(
                RegionSchedule::for_receiver(&src, &dst, rank),
                RegionSchedule::for_receiver_naive(&src, &dst, rank),
                "receiver rank {} of {:?} -> {:?}", rank, src, dst
            );
        }
    }
}
