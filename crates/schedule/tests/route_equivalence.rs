//! Property test: every collective route lowering moves exactly the same
//! elements as the direct [`CopyPlan`]-schedule path — across the same
//! five descriptor families as `pruned_equivalence.rs`, including
//! non-power-of-two rank counts and source/destination worlds of
//! different sizes.
//!
//! Route kinds are forced explicitly (not left to the planner) so the
//! chunked and allgather executors get coverage regardless of what a cost
//! model would pick, and the chunk size is drawn down to a single element
//! to maximize round/fence traffic.

use std::time::Duration;

use mxn_dad::{AxisDist, Dad, ExplicitDist, Extents, LocalArray, Region, Template};
use mxn_runtime::{Universe, World};
use mxn_schedule::{
    execute_recv_routed, execute_send_routed, execute_within_routed, recv_redistributed_budgeted,
    redistribute_within, redistribute_within_budgeted, send_redistributed_budgeted, RedistRoute,
    RegionSchedule, RouteKind, RouteStep, StepOp, TransferBuffers,
};
use proptest::prelude::*;

/// splitmix64, so descriptor construction is deterministic per drawn seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, lo: usize, hi: usize) -> usize {
    lo + (next(state) % (hi - lo) as u64) as usize
}

/// The five descriptor families of `pruned_equivalence.rs`: block grids,
/// block-cyclic x cyclic, gen-block, implicit owners, explicit quadrants.
fn make_dad(rows: usize, cols: usize, family: u8, seed: u64) -> Dad {
    let mut s = seed;
    let e = Extents::new([rows, cols]);
    match family % 5 {
        0 => {
            let gr = pick(&mut s, 1, rows.min(5));
            let gc = pick(&mut s, 1, cols.min(4));
            Dad::block(e, &[gr, gc]).unwrap()
        }
        1 => Dad::regular(
            Template::new(
                e,
                vec![
                    AxisDist::BlockCyclic { block: pick(&mut s, 1, 4), nprocs: pick(&mut s, 1, 4) },
                    AxisDist::Cyclic { nprocs: pick(&mut s, 1, 4) },
                ],
            )
            .unwrap(),
        ),
        2 => {
            let nb = pick(&mut s, 1, 5);
            let mut sizes = vec![0usize; nb];
            for _ in 0..rows {
                sizes[pick(&mut s, 0, nb)] += 1;
            }
            Dad::regular(
                Template::new(e, vec![AxisDist::GenBlock { sizes }, AxisDist::Collapsed]).unwrap(),
            )
        }
        3 => {
            let nprocs = pick(&mut s, 1, 5);
            let owners = (0..rows).map(|_| pick(&mut s, 0, nprocs)).collect();
            Dad::regular(
                Template::new(
                    e,
                    vec![
                        AxisDist::Implicit { owners, nprocs },
                        AxisDist::Block { nprocs: pick(&mut s, 1, 3) },
                    ],
                )
                .unwrap(),
            )
        }
        _ => {
            let r = pick(&mut s, 1, rows);
            let c = pick(&mut s, 1, cols);
            let quads = [
                Region::new([0, 0], [r, c]),
                Region::new([0, c], [r, cols]),
                Region::new([r, 0], [rows, c]),
                Region::new([r, c], [rows, cols]),
            ];
            let nranks = pick(&mut s, 1, 5);
            let patches = quads.into_iter().map(|q| (q, pick(&mut s, 0, nranks))).collect();
            Dad::explicit(ExplicitDist::new(e, patches, nranks).unwrap())
        }
    }
}

/// A hand-forced route of the given kind (the executors only consult the
/// kind and, for chunked, the chunk size — cost fields are irrelevant).
fn forced(kind: RouteKind, chunk_elems: usize) -> RedistRoute {
    let op = match kind {
        RouteKind::Chunked => StepOp::ChunkRounds { rounds: 0, chunk_elems },
        RouteKind::Direct => StepOp::DirectExchange,
        RouteKind::AllgatherSlice => StepOp::Allgather,
    };
    RedistRoute {
        kind,
        steps: vec![RouteStep { op, bytes: 0, peak_bytes: 0 }],
        peak_bytes: 0,
        est_time: Duration::ZERO,
        budget_bytes: u64::MAX,
        fits: true,
    }
}

fn value(idx: &[usize], cols: usize) -> i64 {
    (idx[0] * cols + idx[1]) as i64 + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cross-program (different world sizes): the chunked route and the
    /// planner-chosen budgeted route deliver byte-identical arrays to the
    /// direct oracle.
    #[test]
    fn routed_inter_transfer_matches_direct_oracle(
        rows in 4..16usize,
        cols in 3..10usize,
        src_family in 0..5u8,
        dst_family in 0..5u8,
        chunk_elems in 1..5usize,
        seed in 0..u64::MAX,
    ) {
        let src = make_dad(rows, cols, src_family, seed);
        let dst = make_dad(rows, cols, dst_family, seed ^ 0x5851_f42d_4c95_7f2d);
        let (m, n) = (src.nranks(), dst.nranks());
        Universe::run(&[m, n], move |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let rank = ctx.comm.rank();
                let local = LocalArray::from_fn(&src, rank, |idx| value(idx, cols));
                let sched = RegionSchedule::for_sender(&src, &dst, rank);
                let mut pool = TransferBuffers::new();
                // Oracle, forced chunked, then planner-driven (starved
                // budget → best-effort chunked; tag separates the three).
                sched.execute_send(ic, &local, 0).unwrap();
                execute_send_routed(
                    &forced(RouteKind::Chunked, chunk_elems), &sched, ic, &local, 1, &mut pool,
                ).unwrap();
                send_redistributed_budgeted(ic, &src, &dst, &local, 2, 1).unwrap();
            } else {
                let ic = ctx.intercomm(0);
                let rank = ctx.comm.rank();
                let sched = RegionSchedule::for_receiver(&src, &dst, rank);
                let mut want: LocalArray<i64> = LocalArray::allocate(&dst, rank);
                sched.execute_recv(ic, &mut want, 0).unwrap();

                let mut got: LocalArray<i64> = LocalArray::allocate(&dst, rank);
                let mut pool = TransferBuffers::new();
                let moved = execute_recv_routed(
                    &forced(RouteKind::Chunked, chunk_elems), &sched, ic, &mut got, 1, &mut pool,
                ).unwrap();
                assert_eq!(moved, want.len(), "chunked route moves every element");
                assert_eq!(got, want, "chunked != direct for {src:?} -> {dst:?}");

                let budgeted: LocalArray<i64> =
                    recv_redistributed_budgeted(ic, &src, &dst, 2, 1).unwrap();
                assert_eq!(budgeted, want, "budgeted != direct for {src:?} -> {dst:?}");
            }
        });
    }

    /// Intra-communicator: all three lowerings — direct, single-element
    /// chunked, allgather+slice — produce the same array.
    #[test]
    fn routed_within_matches_direct_oracle(
        rows in 4..16usize,
        cols in 3..10usize,
        family in 0..5u8,
        chunk_elems in 1..4usize,
        seed in 0..u64::MAX,
    ) {
        let src = make_dad(rows, cols, family, seed);
        // The intra setting needs one rank space: pin the destination to
        // exactly the source's rank count with a gen-block axis (zero-size
        // blocks allowed, so any count works and empty shards get covered).
        let p = src.nranks();
        let mut s2 = seed ^ 0xabcd_ef01;
        let mut sizes = vec![0usize; p];
        for _ in 0..rows {
            sizes[pick(&mut s2, 0, p)] += 1;
        }
        let dst = Dad::regular(
            Template::new(
                Extents::new([rows, cols]),
                vec![AxisDist::GenBlock { sizes }, AxisDist::Collapsed],
            )
            .unwrap(),
        );
        World::run(p, move |proc| {
            let comm = proc.world();
            let rank = comm.rank();
            let src_local = LocalArray::from_fn(&src, rank, |idx| value(idx, cols));
            let want = redistribute_within(comm, &src, &dst, &src_local, 0).unwrap();

            let send = RegionSchedule::for_sender(&src, &dst, rank);
            let recv = RegionSchedule::for_receiver(&src, &dst, rank);
            for (tag, kind) in
                [(1, RouteKind::Chunked), (2, RouteKind::AllgatherSlice), (3, RouteKind::Direct)]
            {
                let mut got: LocalArray<i64> = LocalArray::allocate(&dst, rank);
                let mut pool = TransferBuffers::new();
                execute_within_routed(
                    &forced(kind, chunk_elems), &send, &recv, comm, &src,
                    &src_local, &mut got, tag, &mut pool,
                ).unwrap();
                assert_eq!(got, want, "{kind:?} != direct for {src:?} -> {dst:?}");
            }

            // Planner-driven under a starved and an unlimited budget.
            for (tag, budget) in [(4, 1u64), (5, u64::MAX)] {
                let got =
                    redistribute_within_budgeted(comm, &src, &dst, &src_local, tag, budget).unwrap();
                assert_eq!(got, want, "budget {budget} != direct");
            }
        });
    }
}

/// Non-power-of-two and strongly asymmetric world sizes, exercised
/// deterministically (3→7, 7→3, 5→1, 1→5), with single-element chunks.
#[test]
fn asymmetric_world_sizes_chunk_correctly() {
    for (m, n) in [(3usize, 7usize), (7, 3), (5, 1), (1, 5)] {
        let rows = 21;
        let cols = 5;
        let src = Dad::block(Extents::new([rows, cols]), &[m, 1]).unwrap();
        let dst = Dad::block(Extents::new([rows, cols]), &[1, n.min(cols)]).unwrap();
        Universe::run(&[m, dst.nranks()], move |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let rank = ctx.comm.rank();
                let local = LocalArray::from_fn(&src, rank, |idx| value(idx, cols));
                let sched = RegionSchedule::for_sender(&src, &dst, rank);
                let mut pool = TransferBuffers::new();
                execute_send_routed(
                    &forced(RouteKind::Chunked, 1),
                    &sched,
                    ic,
                    &local,
                    0,
                    &mut pool,
                )
                .unwrap();
            } else {
                let ic = ctx.intercomm(0);
                let rank = ctx.comm.rank();
                let sched = RegionSchedule::for_receiver(&src, &dst, rank);
                let mut got: LocalArray<i64> = LocalArray::allocate(&dst, rank);
                let mut pool = TransferBuffers::new();
                execute_recv_routed(
                    &forced(RouteKind::Chunked, 1),
                    &sched,
                    ic,
                    &mut got,
                    0,
                    &mut pool,
                )
                .unwrap();
                for (idx, &v) in got.iter() {
                    assert_eq!(v, value(&idx, cols), "{m}x{n} at {idx:?}");
                }
            }
        });
    }
}

/// The allgather lowering keeps multi-patch (cyclic) source shards intact
/// through the flat round trip.
#[test]
fn allgather_slice_handles_multi_patch_sources() {
    let e = Extents::new([8, 6]);
    let src = Dad::regular(
        Template::new(e.clone(), vec![AxisDist::Cyclic { nprocs: 3 }, AxisDist::Collapsed])
            .unwrap(),
    );
    let dst = Dad::block(e, &[3, 1]).unwrap();
    World::run(3, move |proc| {
        let comm = proc.world();
        let rank = comm.rank();
        let src_local = LocalArray::from_fn(&src, rank, |idx| value(idx, 6));
        let want = redistribute_within(comm, &src, &dst, &src_local, 0).unwrap();
        let send = RegionSchedule::for_sender(&src, &dst, rank);
        let recv = RegionSchedule::for_receiver(&src, &dst, rank);
        let mut got: LocalArray<i64> = LocalArray::allocate(&dst, rank);
        let mut pool = TransferBuffers::new();
        execute_within_routed(
            &forced(RouteKind::AllgatherSlice, 1),
            &send,
            &recv,
            comm,
            &src,
            &src_local,
            &mut got,
            1,
            &mut pool,
        )
        .unwrap();
        assert_eq!(got, want);
    });
}
