//! DRI partitions: restricted descriptors with explicit local layouts.

use mxn_dad::{AxisDist, Dad, Extents, LocalArray, Region, Template};

/// How a rank stores its local patch in memory — DRI distinguishes this
/// from the (global) data distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalLayout {
    /// C order (last axis fastest) — the workspace's native order.
    RowMajor,
    /// Fortran order (first axis fastest).
    ColMajor,
}

/// A DRI dataset partition: ≤ 3-D, per-dimension block or block-cyclic,
/// plus the local memory layout.
#[derive(Debug, Clone, PartialEq)]
pub struct DriPartition {
    dad: Dad,
    layout: LocalLayout,
}

/// Per-dimension partitioning in the DRI subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriDist {
    /// Whole dimension on one process row.
    Whole,
    /// Contiguous blocks over `n` process rows.
    Block(usize),
    /// Cycled blocks of `size` over `n` process rows.
    BlockCyclic {
        /// Block length.
        size: usize,
        /// Process rows on this dimension.
        n: usize,
    },
}

impl DriPartition {
    /// Creates a partition of `dims` (1–3 axes) with one [`DriDist`] per
    /// axis and the given local layout.
    pub fn new(
        dims: &[usize],
        dists: &[DriDist],
        layout: LocalLayout,
    ) -> Result<DriPartition, String> {
        if dims.is_empty() || dims.len() > 3 {
            return Err(format!("DRI datasets are 1–3 dimensional, got {}", dims.len()));
        }
        if dims.len() != dists.len() {
            return Err("one distribution per dimension required".into());
        }
        let axes: Vec<AxisDist> = dists
            .iter()
            .map(|d| match *d {
                DriDist::Whole => AxisDist::Collapsed,
                DriDist::Block(n) => AxisDist::Block { nprocs: n },
                DriDist::BlockCyclic { size, n } => {
                    AxisDist::BlockCyclic { block: size, nprocs: n }
                }
            })
            .collect();
        let template = Template::new(Extents::new(dims.to_vec()), axes)?;
        Ok(DriPartition { dad: Dad::regular(template), layout })
    }

    /// The underlying descriptor (DRI as "a specialized and low-level
    /// DAD").
    pub fn dad(&self) -> &Dad {
        &self.dad
    }

    /// The declared local memory layout.
    pub fn layout(&self) -> LocalLayout {
        self.layout
    }

    /// Number of processes in the partition.
    pub fn nprocs(&self) -> usize {
        self.dad.nranks()
    }

    /// Elements rank `p` stores locally.
    pub fn local_size(&self, p: usize) -> usize {
        self.dad.local_size(p)
    }

    /// Packs a sub-`region` of `local` into a buffer ordered per this
    /// partition's local layout (the order bytes sit in the user's DRI
    /// buffer).
    pub fn pack<T: Copy>(&self, local: &LocalArray<T>, region: &Region) -> Vec<T> {
        match self.layout {
            LocalLayout::RowMajor => local.pack_region(region),
            LocalLayout::ColMajor => {
                // Iterate the region column-major, element at a time.
                col_major_indices(region)
                    .map(|idx| *local.get(&idx).expect("region is local"))
                    .collect()
            }
        }
    }

    /// Unpacks a buffer (ordered per this partition's layout) into `local`.
    pub fn unpack<T: Copy>(&self, local: &mut LocalArray<T>, region: &Region, data: &[T]) {
        match self.layout {
            LocalLayout::RowMajor => local.unpack_region(region, data),
            LocalLayout::ColMajor => {
                for (k, idx) in col_major_indices(region).enumerate() {
                    *local.get_mut(&idx).expect("region is local") = data[k];
                }
            }
        }
    }
}

fn col_major_indices(region: &Region) -> impl Iterator<Item = Vec<usize>> + '_ {
    let lo = region.lo().to_vec();
    let hi = region.hi().to_vec();
    let nd = lo.len();
    let total = region.len();
    let mut idx = lo.clone();
    let mut emitted = 0usize;
    std::iter::from_fn(move || {
        if emitted >= total {
            return None;
        }
        let current = idx.clone();
        emitted += 1;
        // Advance first axis fastest.
        for d in 0..nd {
            idx[d] += 1;
            if idx[d] < hi[d] {
                break;
            }
            idx[d] = lo[d];
        }
        Some(current)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_dri_subset() {
        let p = DriPartition::new(
            &[16, 8],
            &[DriDist::Block(4), DriDist::Whole],
            LocalLayout::RowMajor,
        )
        .unwrap();
        assert_eq!(p.nprocs(), 4);
        assert_eq!(p.local_size(0), 32);
        let bc = DriPartition::new(
            &[16],
            &[DriDist::BlockCyclic { size: 2, n: 2 }],
            LocalLayout::ColMajor,
        )
        .unwrap();
        assert_eq!(bc.local_size(0), 8);
    }

    #[test]
    fn dimensionality_limits_enforced() {
        assert!(DriPartition::new(&[], &[], LocalLayout::RowMajor).is_err());
        assert!(
            DriPartition::new(&[2, 2, 2, 2], &[DriDist::Whole; 4], LocalLayout::RowMajor).is_err()
        );
        assert!(DriPartition::new(&[4], &[], LocalLayout::RowMajor).is_err());
    }

    #[test]
    fn layouts_order_the_buffer_differently() {
        let p_row =
            DriPartition::new(&[2, 3], &[DriDist::Whole, DriDist::Whole], LocalLayout::RowMajor)
                .unwrap();
        let p_col =
            DriPartition::new(&[2, 3], &[DriDist::Whole, DriDist::Whole], LocalLayout::ColMajor)
                .unwrap();
        let local = LocalArray::from_fn(p_row.dad(), 0, |idx| (idx[0] * 3 + idx[1]) as i32);
        let region = p_row.dad().patches(0)[0].clone();
        assert_eq!(p_row.pack(&local, &region), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p_col.pack(&local, &region), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn pack_unpack_roundtrip_both_layouts() {
        for layout in [LocalLayout::RowMajor, LocalLayout::ColMajor] {
            let p =
                DriPartition::new(&[4, 4], &[DriDist::Block(2), DriDist::Whole], layout).unwrap();
            let local = LocalArray::from_fn(p.dad(), 1, |idx| (idx[0] * 4 + idx[1]) as i64);
            let region = p.dad().patches(1)[0].clone();
            let buf = p.pack(&local, &region);
            let mut copy: LocalArray<i64> = LocalArray::allocate(p.dad(), 1);
            p.unpack(&mut copy, &region, &buf);
            assert_eq!(copy, local);
        }
    }
}
