//! Incremental, user-driven reorganization — DRI's get/put model.
//!
//! "The user provides send and receive buffers and repeatedly call[s] DRI
//! get/put operations until the operation is complete." A [`DriReorg`] is
//! built collectively from the source and destination partitions; each
//! [`DriReorg::put`] ships one destination peer's chunk out of the user's
//! send buffer, each [`DriReorg::get`] lands one source peer's chunk into
//! the receive buffer, and [`DriReorg::is_complete`] reports when both
//! directions have drained. This low-level pacing is what lets signal-
//! processing pipelines interleave reorganization with computation.

use mxn_dad::LocalArray;
use mxn_runtime::{Comm, Result, RuntimeError};
use mxn_schedule::RegionSchedule;

use crate::partition::DriPartition;

/// Progress of one direction of a reorganization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorgPhase {
    /// Chunks remain.
    InProgress {
        /// Chunks already processed.
        done: usize,
        /// Total chunks.
        total: usize,
    },
    /// This direction has drained.
    Complete,
}

/// One rank's handle on a collective reorganization between two
/// partitions of the same dataset, within one communicator whose ranks
/// cover both partitions (the DRI model: process groups of one job).
pub struct DriReorg {
    /// Kept for introspection and user-buffer helpers.
    src: DriPartition,
    dst: DriPartition,
    send: RegionSchedule,
    recv: RegionSchedule,
    send_cursor: usize,
    recv_cursor: usize,
    tag: i32,
}

impl DriReorg {
    /// Builds the per-rank plan. `my_rank` indexes both partitions (they
    /// must have the same process count — reorganization happens within
    /// one group, between two data layouts).
    pub fn new(src: DriPartition, dst: DriPartition, my_rank: usize, tag: i32) -> Result<DriReorg> {
        if src.nprocs() != dst.nprocs() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!(
                    "DRI reorganization needs matching groups ({} vs {} procs)",
                    src.nprocs(),
                    dst.nprocs()
                ),
            });
        }
        if src.dad().extents() != dst.dad().extents() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "partitions describe different datasets".into(),
            });
        }
        let send = RegionSchedule::for_sender(src.dad(), dst.dad(), my_rank);
        let recv = RegionSchedule::for_receiver(src.dad(), dst.dad(), my_rank);
        Ok(DriReorg { src, dst, send, recv, send_cursor: 0, recv_cursor: 0, tag })
    }

    /// Progress of the outgoing direction.
    pub fn put_phase(&self) -> ReorgPhase {
        if self.send_cursor >= self.send.pairs().len() {
            ReorgPhase::Complete
        } else {
            ReorgPhase::InProgress { done: self.send_cursor, total: self.send.pairs().len() }
        }
    }

    /// Progress of the incoming direction.
    pub fn get_phase(&self) -> ReorgPhase {
        if self.recv_cursor >= self.recv.pairs().len() {
            ReorgPhase::Complete
        } else {
            ReorgPhase::InProgress { done: self.recv_cursor, total: self.recv.pairs().len() }
        }
    }

    /// The source partition.
    pub fn source(&self) -> &DriPartition {
        &self.src
    }

    /// The destination partition.
    pub fn destination(&self) -> &DriPartition {
        &self.dst
    }

    /// Both directions drained?
    pub fn is_complete(&self) -> bool {
        self.put_phase() == ReorgPhase::Complete && self.get_phase() == ReorgPhase::Complete
    }

    /// Ships the next destination peer's chunk out of `send_buf` (the
    /// rank's local data under the *source* partition). Returns the new
    /// phase; calling when already complete is a no-op.
    pub fn put(&mut self, comm: &Comm, send_buf: &LocalArray<f64>) -> Result<ReorgPhase> {
        if let Some(pair) = self.send.pairs().get(self.send_cursor) {
            // Wire format is canonical (row-major per region), independent
            // of either side's *local* layout — layouts apply only at the
            // user-buffer boundary (see DriPartition::import/export).
            let mut chunk = Vec::with_capacity(pair.elements());
            for region in &pair.regions {
                chunk.extend(send_buf.pack_region(region));
            }
            comm.send(pair.peer, self.tag, chunk)?;
            self.send_cursor += 1;
        }
        Ok(self.put_phase())
    }

    /// Lands the next source peer's chunk into `recv_buf` (the rank's
    /// local storage under the *destination* partition). Blocks for that
    /// peer's message. No-op when already complete.
    pub fn get(&mut self, comm: &Comm, recv_buf: &mut LocalArray<f64>) -> Result<ReorgPhase> {
        if let Some(pair) = self.recv.pairs().get(self.recv_cursor) {
            let chunk: Vec<f64> = comm.recv(pair.peer, self.tag)?;
            let mut cursor = 0;
            for region in &pair.regions {
                let n = region.len();
                recv_buf.unpack_region(region, &chunk[cursor..cursor + n]);
                cursor += n;
            }
            self.recv_cursor += 1;
        }
        Ok(self.get_phase())
    }

    /// Convenience: drive puts and gets to completion (the simple caller
    /// that doesn't interleave compute).
    pub fn run_to_completion(
        &mut self,
        comm: &Comm,
        send_buf: &LocalArray<f64>,
        recv_buf: &mut LocalArray<f64>,
    ) -> Result<()> {
        while self.put_phase() != ReorgPhase::Complete {
            self.put(comm, send_buf)?;
        }
        while self.get_phase() != ReorgPhase::Complete {
            self.get(comm, recv_buf)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{DriDist, LocalLayout};
    use mxn_runtime::World;

    fn partitions(layout_dst: LocalLayout) -> (DriPartition, DriPartition) {
        let src =
            DriPartition::new(&[8, 8], &[DriDist::Block(4), DriDist::Whole], LocalLayout::RowMajor)
                .unwrap();
        let dst =
            DriPartition::new(&[8, 8], &[DriDist::Whole, DriDist::Block(4)], layout_dst).unwrap();
        (src, dst)
    }

    #[test]
    fn incremental_put_get_until_complete() {
        World::run(4, |p| {
            let comm = p.world();
            let (src, dst) = partitions(LocalLayout::RowMajor);
            let mut reorg = DriReorg::new(src.clone(), dst.clone(), comm.rank(), 3).unwrap();
            let send_buf =
                LocalArray::from_fn(src.dad(), comm.rank(), |idx| (idx[0] * 8 + idx[1]) as f64);
            let mut recv_buf: LocalArray<f64> = LocalArray::allocate(dst.dad(), comm.rank());

            // Interleave: one put, one get, repeat — the DRI usage pattern.
            let mut guard = 0;
            while !reorg.is_complete() {
                reorg.put(comm, &send_buf).unwrap();
                reorg.get(comm, &mut recv_buf).unwrap();
                guard += 1;
                assert!(guard < 100, "reorganization must terminate");
            }
            for (idx, &v) in recv_buf.iter() {
                assert_eq!(v, (idx[0] * 8 + idx[1]) as f64);
            }
        });
    }

    #[test]
    fn phases_report_progress() {
        World::run(4, |p| {
            let comm = p.world();
            let (src, dst) = partitions(LocalLayout::RowMajor);
            let mut reorg = DriReorg::new(src.clone(), dst.clone(), comm.rank(), 5).unwrap();
            assert!(!reorg.is_complete());
            assert_eq!(reorg.put_phase(), ReorgPhase::InProgress { done: 0, total: 4 });
            let send_buf = LocalArray::from_fn(src.dad(), comm.rank(), |_| 1.0);
            let mut recv_buf: LocalArray<f64> = LocalArray::allocate(dst.dad(), comm.rank());
            reorg.put(comm, &send_buf).unwrap();
            assert_eq!(reorg.put_phase(), ReorgPhase::InProgress { done: 1, total: 4 });
            reorg.run_to_completion(comm, &send_buf, &mut recv_buf).unwrap();
            assert!(reorg.is_complete());
            // Further calls are no-ops.
            reorg.put(comm, &send_buf).unwrap();
            reorg.get(comm, &mut recv_buf).unwrap();
            assert!(reorg.is_complete());
        });
    }

    #[test]
    fn foreign_local_layout_at_the_user_boundary() {
        // The destination application keeps its data in a column-major
        // flat buffer ("local memory layouts are distinguished from the
        // data distribution"): the reorganization is layout-neutral on the
        // wire, and the layout is applied when exporting to the user's
        // buffer.
        World::run(4, |p| {
            let comm = p.world();
            let (src, dst) = partitions(LocalLayout::ColMajor);
            let mut reorg = DriReorg::new(src.clone(), dst.clone(), comm.rank(), 7).unwrap();
            let send_buf =
                LocalArray::from_fn(src.dad(), comm.rank(), |idx| (idx[0] * 8 + idx[1]) as f64);
            let mut recv_buf: LocalArray<f64> = LocalArray::allocate(dst.dad(), comm.rank());
            reorg.run_to_completion(comm, &send_buf, &mut recv_buf).unwrap();

            // Export into the user's column-major buffer and check order.
            let region = dst.dad().patches(comm.rank())[0].clone();
            let user_buf = dst.pack(&recv_buf, &region);
            assert_eq!(user_buf.len(), region.len());
            // First elements follow axis-0 fastest within the patch.
            let lo = region.lo().to_vec();
            assert_eq!(user_buf[0], (lo[0] * 8 + lo[1]) as f64);
            assert_eq!(user_buf[1], ((lo[0] + 1) * 8 + lo[1]) as f64);
            // Round-trip through the user buffer restores the values.
            let mut copy: LocalArray<f64> = LocalArray::allocate(dst.dad(), comm.rank());
            dst.unpack(&mut copy, &region, &user_buf);
            assert_eq!(copy, recv_buf);
        });
    }

    #[test]
    fn mismatched_groups_rejected() {
        let a = DriPartition::new(&[8], &[DriDist::Block(2)], LocalLayout::RowMajor).unwrap();
        let b = DriPartition::new(&[8], &[DriDist::Block(4)], LocalLayout::RowMajor).unwrap();
        assert!(DriReorg::new(a.clone(), b, 0, 0).is_err());
        let c = DriPartition::new(&[9], &[DriDist::Block(2)], LocalLayout::RowMajor).unwrap();
        assert!(DriReorg::new(a, c, 0, 0).is_err());
    }
}
