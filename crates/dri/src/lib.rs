//! # mxn-dri — the Data Reorganization Interface (DRI-1.0)
//!
//! The related-work standard of the paper's §5: "The Data Reorganization
//! Interface Standard (DRI-1.0) is the result of a DARPA-sponsored effort
//! targeted at the military signal and image processing community. DRI
//! datasets are arrays of up to three dimensions … Block and block-cyclic
//! partitions are supported, and local memory layouts are distinguished
//! from the data distribution … Reorganization operations in DRI are
//! collective, and are handled at a low level. The user provides send and
//! receive buffers and repeatedly call[s] DRI get/put operations until
//! the operation is complete. … the DRI can be thought of as a
//! specialized and low-level Distributed Array Descriptor and M×N
//! component."
//!
//! Mapping to this workspace: a [`DriPartition`] is a restricted DAD
//! (≤ 3-D, block / block-cyclic per dimension, plus a *local layout*
//! distinct from the distribution); a [`DriReorg`] is a low-level,
//! incrementally-driven M×N transfer built on the same region schedules —
//! one `put`/`get` call processes one peer's chunk, and the caller loops
//! until completion.

pub mod partition;
pub mod reorg;

pub use partition::{DriDist, DriPartition, LocalLayout};
pub use reorg::{DriReorg, ReorgPhase};
