//! # mxn-pipeline — data transformation pipelines (the paper's §6)
//!
//! Implements the future-work direction the paper closes with: assembling
//! "a pipeline of components" of data transformations and redistributions,
//! operating in place where possible, and "combining several successive
//! redistribution and translation components into a single optimized
//! component" (the super-component rewrite).
//!
//! * [`filter`] — in-place pointwise transformations (unit conversions,
//!   scaling, clamping, temporal blending), with affine filters exposing
//!   coefficients for fusion.
//! * [`pipeline`] — staged pipelines over distributed fields, an optimizer
//!   that fuses affine runs and collapses all redistributions into one,
//!   and collective execution over a communicator.

pub mod filter;
pub mod pipeline;

pub use filter::{fuse_affine, Clamp, Filter, Scale, TemporalBlend, UnitConversion};
pub use pipeline::{Pipeline, Stage};
