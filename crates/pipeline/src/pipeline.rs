//! Coupling pipelines and the super-component optimization.
//!
//! "To utilize the resulting sequence of data transformations and data
//! redistributions, a pipeline of components can be assembled. An
//! important pragmatic issue that arises with such pipelining is how
//! efficiently redistribution functions compose with one another …
//! Super-component solutions could also be explored … by combining
//! several successive redistribution and translation components into a
//! single optimized component." (paper §6)
//!
//! A [`Pipeline`] is a sequence of [`Stage`]s applied to a distributed
//! field. [`Pipeline::optimized`] performs the two super-component
//! rewrites the paper suggests:
//!
//! 1. **redistribution collapsing** — consecutive `Redistribute` stages
//!    become a single redistribution to the final layout (intermediate
//!    layouts are never materialized, because per-element filters are
//!    layout-independent);
//! 2. **affine fusion** — consecutive affine filters become one pass.

use std::sync::Arc;

use mxn_dad::{Dad, LocalArray};
use mxn_runtime::{Comm, Result};
use mxn_schedule::redistribute_within;

use crate::filter::{fuse_affine, Filter};

/// One pipeline stage.
#[derive(Clone)]
pub enum Stage {
    /// Redistribute the field into a new decomposition.
    Redistribute(Dad),
    /// Transform local values in place.
    Filter(Arc<dyn Filter>),
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Redistribute(d) => write!(f, "redistribute(→{} ranks)", d.nranks()),
            Stage::Filter(flt) => write!(f, "filter({})", flt.describe()),
        }
    }
}

/// An assembled coupling pipeline over one field.
pub struct Pipeline {
    input: Dad,
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Starts a pipeline on a field distributed as `input`.
    pub fn new(input: Dad) -> Self {
        Pipeline { input, stages: Vec::new() }
    }

    /// Appends a redistribution to `layout` (must conform to the field).
    pub fn redistribute(mut self, layout: Dad) -> Self {
        assert!(self.input.conforms(&layout), "pipeline layouts must share global extents");
        self.stages.push(Stage::Redistribute(layout));
        self
    }

    /// Appends a filter stage.
    pub fn filter(mut self, f: impl Filter + 'static) -> Self {
        self.stages.push(Stage::Filter(Arc::new(f)));
        self
    }

    /// The stages, for introspection.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The input decomposition.
    pub fn input(&self) -> &Dad {
        &self.input
    }

    /// The output decomposition (last redistribution, or the input).
    pub fn output(&self) -> &Dad {
        self.stages
            .iter()
            .rev()
            .find_map(|s| match s {
                Stage::Redistribute(d) => Some(d),
                _ => None,
            })
            .unwrap_or(&self.input)
    }

    /// Number of redistributions the pipeline performs.
    pub fn num_redistributions(&self) -> usize {
        self.stages.iter().filter(|s| matches!(s, Stage::Redistribute(_))).count()
    }

    /// Number of element passes (filter applications).
    pub fn num_passes(&self) -> usize {
        self.stages.iter().filter(|s| matches!(s, Stage::Filter(_))).count()
    }

    /// The super-component rewrite. Every filter here is pointwise and
    /// therefore layout-independent, so filters commute with
    /// redistributions; the optimal plan is:
    ///
    /// 1. the filter sequence alone, with each maximal run of affine
    ///    filters fused into one pass (identity runs vanish), then
    /// 2. a **single** redistribution straight to the final layout —
    ///    intermediate layouts are never materialized, and a pipeline
    ///    ending where it started performs no redistribution at all.
    pub fn optimized(self) -> Pipeline {
        let final_layout = {
            let out = self.output();
            if *out == self.input {
                None
            } else {
                Some(out.clone())
            }
        };

        let mut out: Vec<Stage> = Vec::with_capacity(self.stages.len());
        let mut affine_run: Vec<(f64, f64)> = Vec::new();

        fn flush_affine(out: &mut Vec<Stage>, run: &mut Vec<(f64, f64)>) {
            if !run.is_empty() {
                let fused = fuse_affine(run);
                // Identity filters vanish entirely.
                if fused.scale != 1.0 || fused.offset != 0.0 {
                    out.push(Stage::Filter(Arc::new(fused)));
                }
                run.clear();
            }
        }

        for stage in self.stages {
            match stage {
                Stage::Filter(f) => match f.as_affine() {
                    Some(coeff) => affine_run.push(coeff),
                    None => {
                        flush_affine(&mut out, &mut affine_run);
                        out.push(Stage::Filter(f));
                    }
                },
                // Dropped: only the final layout matters.
                Stage::Redistribute(_) => {}
            }
        }
        flush_affine(&mut out, &mut affine_run);
        if let Some(d) = final_layout {
            out.push(Stage::Redistribute(d));
        }
        Pipeline { input: self.input, stages: out }
    }

    /// Executes the pipeline collectively within one program: every rank
    /// of `comm` passes its local portion; returns the output portion.
    pub fn execute(
        &self,
        comm: &Comm,
        local: LocalArray<f64>,
        tag_base: i32,
    ) -> Result<LocalArray<f64>> {
        let mut current_dad = self.input.clone();
        let mut current = local;
        let mut tag = tag_base;
        for stage in &self.stages {
            match stage {
                Stage::Filter(f) => {
                    for i in 0..current.num_patches() {
                        let (_, buf) = current.patch_mut(i);
                        f.apply(buf);
                    }
                }
                Stage::Redistribute(d) => {
                    current = redistribute_within(comm, &current_dad, d, &current, tag)?;
                    current_dad = d.clone();
                    tag += 1;
                }
            }
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Clamp, Scale, UnitConversion};
    use mxn_dad::Extents;
    use mxn_runtime::World;

    fn layouts() -> (Dad, Dad, Dad) {
        let e = Extents::new([8, 8]);
        (
            Dad::block(e.clone(), &[4, 1]).unwrap(),
            Dad::block(e.clone(), &[2, 2]).unwrap(),
            Dad::block(e, &[1, 4]).unwrap(),
        )
    }

    fn sample_pipeline() -> Pipeline {
        let (a, b, c) = layouts();
        Pipeline::new(a)
            .filter(UnitConversion { scale: 2.0, offset: 1.0 })
            .filter(Scale(3.0))
            .redistribute(b)
            .redistribute(c)
            .filter(UnitConversion { scale: 1.0, offset: -5.0 })
    }

    #[test]
    fn optimizer_collapses_and_fuses() {
        let p = sample_pipeline();
        assert_eq!(p.num_redistributions(), 2);
        assert_eq!(p.num_passes(), 3);
        let opt = p.optimized();
        // Two redistributions collapse into one; three affine filters
        // slide together and fuse into one pass.
        assert_eq!(opt.num_redistributions(), 1);
        assert_eq!(opt.num_passes(), 1);
        let (_, _, c) = layouts();
        assert_eq!(opt.output(), &c);
    }

    #[test]
    fn optimized_pipeline_computes_the_same_field() {
        World::run(4, |p| {
            let comm = p.world();
            let (a, _, _) = layouts();
            let seed = LocalArray::from_fn(&a, comm.rank(), |idx| (idx[0] * 8 + idx[1]) as f64);

            let naive = sample_pipeline().execute(comm, seed.clone(), 100).unwrap();
            let optimized = sample_pipeline().optimized().execute(comm, seed, 200).unwrap();

            assert_eq!(naive.len(), optimized.len());
            for (idx, &v) in optimized.iter() {
                assert_eq!(v, *naive.get(&idx).unwrap(), "at {idx:?}");
                // And both equal the analytic composition 6x + 3 - 5.
                let x = (idx[0] * 8 + idx[1]) as f64;
                assert_eq!(v, 6.0 * x + 3.0 - 5.0);
            }
        });
    }

    #[test]
    fn non_affine_filter_is_a_fusion_barrier() {
        let (a, b, _) = layouts();
        let p = Pipeline::new(a)
            .filter(Scale(2.0))
            .filter(Clamp { lo: 0.0, hi: 10.0 })
            .filter(Scale(3.0))
            .redistribute(b)
            .optimized();
        // Scale·Clamp·Scale cannot fuse across the clamp: 3 passes remain
        // but each affine side stays a single filter.
        assert_eq!(p.num_passes(), 3);
        assert_eq!(p.num_redistributions(), 1);
    }

    #[test]
    fn clamp_ordering_is_preserved() {
        World::run(2, |p| {
            let comm = p.world();
            let e = Extents::new([4]);
            let d = Dad::block(e, &[2]).unwrap();
            let seed = LocalArray::from_fn(&d, comm.rank(), |idx| idx[0] as f64);
            let pipe = Pipeline::new(d.clone())
                .filter(Scale(10.0))
                .filter(Clamp { lo: 0.0, hi: 15.0 })
                .filter(Scale(0.1));
            let out = pipe.optimized().execute(comm, seed, 0).unwrap();
            // x → 10x → clamp 15 → ×0.1: values 0, 1, 1.5, 1.5.
            for (idx, &v) in out.iter() {
                let expect = (idx[0] as f64 * 10.0).min(15.0) * 0.1;
                assert_eq!(v, expect);
            }
        });
    }

    #[test]
    fn identity_affine_run_vanishes() {
        let (a, _, _) = layouts();
        let p = Pipeline::new(a).filter(Scale(4.0)).filter(Scale(0.25)).optimized();
        assert_eq!(p.num_passes(), 0, "4 × 0.25 = identity: no pass at all");
    }

    #[test]
    #[should_panic(expected = "global extents")]
    fn nonconforming_layout_rejected() {
        let (a, _, _) = layouts();
        let other = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
        let _ = Pipeline::new(a).redistribute(other);
    }

    #[test]
    fn pure_filter_pipeline_without_comm() {
        World::run(1, |p| {
            let comm = p.world();
            let e = Extents::new([6]);
            let d = Dad::block(e, &[1]).unwrap();
            let seed = LocalArray::from_fn(&d, 0, |idx| idx[0] as f64);
            let out = Pipeline::new(d)
                .filter(UnitConversion::celsius_to_kelvin())
                .execute(comm, seed, 0)
                .unwrap();
            assert_eq!(*out.get(&[0]).unwrap(), 273.15);
        });
    }
}
