//! Data transformation filters.
//!
//! The paper's Summary (§6) calls for "concatenating component 'filters',
//! e.g. for spatial and temporal interpolation or unit conversions" and
//! asks "how efficiently redistribution functions compose with one
//! another. Techniques must be explored to operate on data in place and
//! avoid unnecessary data copies."
//!
//! A [`Filter`] transforms a rank's local field values in place. Filters
//! that are *affine* (`y = a·x + b`) expose their coefficients so the
//! pipeline optimizer can fuse whole chains of them into a single pass —
//! the paper's "super-component" idea (see [`crate::pipeline`]).

use std::fmt;

/// An in-place per-element transformation of local field data.
pub trait Filter: Send + Sync {
    /// A short description for pipeline introspection.
    fn describe(&self) -> String;

    /// Transforms the local buffer in place.
    fn apply(&self, data: &mut [f64]);

    /// If the filter is affine (`y = a·x + b`), its `(a, b)`; fusable.
    fn as_affine(&self) -> Option<(f64, f64)> {
        None
    }
}

impl fmt::Debug for dyn Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// Unit conversion: `y = scale·x + offset` (°C→K, Pa→hPa, …). Affine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitConversion {
    /// Multiplicative factor.
    pub scale: f64,
    /// Additive offset (applied after scaling).
    pub offset: f64,
}

impl UnitConversion {
    /// Celsius → Kelvin.
    pub fn celsius_to_kelvin() -> Self {
        UnitConversion { scale: 1.0, offset: 273.15 }
    }

    /// Pascal → hectopascal.
    pub fn pa_to_hpa() -> Self {
        UnitConversion { scale: 0.01, offset: 0.0 }
    }
}

impl Filter for UnitConversion {
    fn describe(&self) -> String {
        format!("unit({} x + {})", self.scale, self.offset)
    }

    fn apply(&self, data: &mut [f64]) {
        for v in data {
            *v = self.scale * *v + self.offset;
        }
    }

    fn as_affine(&self) -> Option<(f64, f64)> {
        Some((self.scale, self.offset))
    }
}

/// Pure scaling. Affine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Filter for Scale {
    fn describe(&self) -> String {
        format!("scale({})", self.0)
    }

    fn apply(&self, data: &mut [f64]) {
        for v in data {
            *v *= self.0;
        }
    }

    fn as_affine(&self) -> Option<(f64, f64)> {
        Some((self.0, 0.0))
    }
}

/// Clamps values into `[lo, hi]` (e.g. positivity of concentrations).
/// Not affine — acts as a fusion barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clamp {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Filter for Clamp {
    fn describe(&self) -> String {
        format!("clamp[{}, {}]", self.lo, self.hi)
    }

    fn apply(&self, data: &mut [f64]) {
        for v in data {
            *v = v.clamp(self.lo, self.hi);
        }
    }
}

/// Temporal interpolation between the previous coupling snapshot and the
/// current one: `y = (1−w)·prev + w·x`. Stateful; not affine across calls.
pub struct TemporalBlend {
    weight: f64,
    prev: parking_lot_like::Mutex<Option<Vec<f64>>>,
}

// A minimal internal mutex shim so this crate doesn't need parking_lot
// just for one optional state cell.
mod parking_lot_like {
    pub use std::sync::Mutex;
}

impl TemporalBlend {
    /// Creates a blender with interpolation weight `w ∈ [0, 1]` toward the
    /// newest data. The first application passes data through unchanged.
    pub fn new(weight: f64) -> Self {
        assert!((0.0..=1.0).contains(&weight), "weight must be in [0, 1]");
        TemporalBlend { weight, prev: parking_lot_like::Mutex::new(None) }
    }
}

impl Filter for TemporalBlend {
    fn describe(&self) -> String {
        format!("temporal_blend(w={})", self.weight)
    }

    fn apply(&self, data: &mut [f64]) {
        let mut prev = self.prev.lock().expect("blend state lock");
        match prev.as_ref() {
            Some(p) if p.len() == data.len() => {
                for (v, &old) in data.iter_mut().zip(p) {
                    *v = (1.0 - self.weight) * old + self.weight * *v;
                }
            }
            _ => {}
        }
        *prev = Some(data.to_vec());
    }
}

/// Fuses a run of affine filters into a single affine filter:
/// `(a₂, b₂) ∘ (a₁, b₁) = (a₂·a₁, a₂·b₁ + b₂)`.
pub fn fuse_affine(coeffs: &[(f64, f64)]) -> UnitConversion {
    let (mut a, mut b) = (1.0, 0.0);
    for &(a2, b2) in coeffs {
        a *= a2;
        b = a2 * b + b2;
    }
    UnitConversion { scale: a, offset: b }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion_applies_affine() {
        let f = UnitConversion::celsius_to_kelvin();
        let mut v = vec![0.0, 100.0];
        f.apply(&mut v);
        assert_eq!(v, vec![273.15, 373.15]);
        assert_eq!(f.as_affine(), Some((1.0, 273.15)));
    }

    #[test]
    fn scale_and_clamp() {
        let mut v = vec![-2.0, 0.5, 3.0];
        Scale(2.0).apply(&mut v);
        assert_eq!(v, vec![-4.0, 1.0, 6.0]);
        Clamp { lo: 0.0, hi: 5.0 }.apply(&mut v);
        assert_eq!(v, vec![0.0, 1.0, 5.0]);
        assert!(Clamp { lo: 0.0, hi: 1.0 }.as_affine().is_none());
    }

    #[test]
    fn fusion_composes_in_application_order() {
        // x → 2x+1 → 3(2x+1)+4 = 6x+7.
        let fused = fuse_affine(&[(2.0, 1.0), (3.0, 4.0)]);
        assert_eq!(fused.scale, 6.0);
        assert_eq!(fused.offset, 7.0);
        let mut a = vec![1.0, 2.0];
        let mut b = a.clone();
        UnitConversion { scale: 2.0, offset: 1.0 }.apply(&mut a);
        UnitConversion { scale: 3.0, offset: 4.0 }.apply(&mut a);
        fused.apply(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn temporal_blend_state() {
        let f = TemporalBlend::new(0.25);
        let mut v = vec![4.0];
        f.apply(&mut v);
        assert_eq!(v, vec![4.0], "first call passes through");
        let mut v2 = vec![8.0];
        f.apply(&mut v2);
        assert_eq!(v2, vec![0.75 * 4.0 + 0.25 * 8.0]);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn blend_weight_validated() {
        TemporalBlend::new(1.5);
    }
}
