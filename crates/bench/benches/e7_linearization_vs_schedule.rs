//! Experiment E7 — receiver-request linearization vs precomputed schedule.
//!
//! The Indiana MPI-IO M×N device trades schedule computation for a small
//! per-transfer request round: "at the expense of this small communication
//! overhead, no communication schedule is required" (§2.2.1). This bench
//! finds the crossover: total time for k transfers under
//!
//! * the receiver-request protocol (no setup; 2 extra message rounds and
//!   per-element index translation every transfer), vs
//! * the precomputed region schedule (one-time build; data-only messages
//!   with row-run packing thereafter).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, field_value, time_universe};
use mxn_dad::{Dad, Extents, LocalArray};
use mxn_linearize::{request_and_fill, serve_requests, ArrayOrder};
use mxn_schedule::RegionSchedule;

const M: usize = 3;
const N: usize = 4;

fn dads() -> (Dad, Dad) {
    let e = Extents::new([192, 64]);
    (Dad::block(e.clone(), &[M, 1]).unwrap(), Dad::block(e, &[1, N]).unwrap())
}

/// Time for `transfers` repeated couplings, including any setup, per the
/// chosen mechanism. One measured unit = the whole k-transfer session.
fn session(use_schedule: bool, transfers: usize, iters: u64) -> Duration {
    let (src, dst) = dads();
    time_universe(&[M, N], |ctx| {
        let rank = ctx.comm.rank();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let local = LocalArray::from_fn(&src, rank, field_value);
            let start = Instant::now();
            for i in 0..iters {
                if use_schedule {
                    // Setup is part of the measured session.
                    let sched = RegionSchedule::for_sender(&src, &dst, rank);
                    for k in 0..transfers {
                        sched.execute_send(ic, &local, ((i as usize + k) & 0xfff) as i32).unwrap();
                    }
                } else {
                    for _ in 0..transfers {
                        serve_requests(ic, &src, ArrayOrder::RowMajor, &local).unwrap();
                    }
                }
            }
            start.elapsed()
        } else {
            let ic = ctx.intercomm(0);
            let mut local: LocalArray<f64> = LocalArray::allocate(&dst, rank);
            let start = Instant::now();
            for i in 0..iters {
                if use_schedule {
                    let sched = RegionSchedule::for_receiver(&src, &dst, rank);
                    for k in 0..transfers {
                        sched
                            .execute_recv(ic, &mut local, ((i as usize + k) & 0xfff) as i32)
                            .unwrap();
                    }
                } else {
                    for _ in 0..transfers {
                        request_and_fill(ic, &dst, ArrayOrder::RowMajor, &mut local).unwrap();
                    }
                }
            }
            start.elapsed()
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_linearization_vs_schedule");
    for transfers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("receiver_request", transfers),
            &transfers,
            |b, &t| b.iter_custom(|iters| session(false, t, iters)),
        );
        group.bench_with_input(
            BenchmarkId::new("precomputed_schedule", transfers),
            &transfers,
            |b, &t| b.iter_custom(|iters| session(true, t, iters)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
