//! Experiment E12 — InterComm's separate coordination layer (§4.4).
//!
//! Measures the import path under different timestamp rules, and the
//! overlap benefit the paper claims ("hide the cost of data transfers
//! behind other program activities"): importing a version that is already
//! buffered costs only the transfer, while a version ahead of the
//! producer's frontier costs transfer *plus* the wait for the producer —
//! unless the producer is stepping anyway.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, time_universe};
use mxn_dad::{Dad, Extents, LocalArray};
use mxn_intercomm::{Exporter, Importer, MatchRule};

const N: usize = 8192;

fn dad() -> Dad {
    Dad::block(Extents::new([N]), &[1]).unwrap()
}

/// Importer repeatedly fetches already-buffered versions under `rule`.
fn run_buffered(rule: MatchRule, iters: u64) -> Duration {
    let d = dad();
    time_universe(&[1, 1], |ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ex = Exporter::new(d.clone(), d.clone(), 0, rule, 16);
            for t in 0..10 {
                let data = LocalArray::from_fn(&d, 0, |idx| idx[0] as f64 + t as f64);
                ex.export(ic, t as f64, &data).unwrap();
            }
            ex.close(ic).unwrap();
            ex.serve_until_answered(ic, iters).unwrap();
            Duration::ZERO
        } else {
            let ic = ctx.intercomm(0);
            let mut im = Importer::new(&d, &d, 0, rule);
            let mut dst: LocalArray<f64> = LocalArray::allocate(&d, 0);
            let start = Instant::now();
            for i in 0..iters {
                let treq = 0.5 + (i % 9) as f64;
                im.import(ic, treq, &mut dst).unwrap();
            }
            start.elapsed()
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_intercomm_timestamps");
    for (name, rule) in [
        ("lower_bound", MatchRule::LowerBound),
        ("nearest", MatchRule::Nearest { tol: 0.6 }),
        ("regular_interval", MatchRule::RegularInterval { start: 0.0, every: 2.0 }),
    ] {
        group.bench_with_input(BenchmarkId::new("buffered_import", name), &rule, |b, &rule| {
            b.iter_custom(|iters| run_buffered(rule, iters))
        });
    }
    group.finish();

    // The overlap shape (reported, not criterion-sampled): an import ahead
    // of the frontier waits for the producer; one behind it does not.
    let d = dad();
    let waits = time_universe(&[1, 1], |ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ex = Exporter::new(d.clone(), d.clone(), 0, MatchRule::UpperBound, 16);
            for t in 0..6 {
                std::thread::sleep(Duration::from_millis(10)); // simulation step
                let data = LocalArray::from_fn(&d, 0, |idx| idx[0] as f64);
                ex.export(ic, t as f64, &data).unwrap();
            }
            ex.close(ic).unwrap();
            Duration::ZERO
        } else {
            let ic = ctx.intercomm(0);
            let mut im = Importer::new(&d, &d, 0, MatchRule::UpperBound);
            let mut dst: LocalArray<f64> = LocalArray::allocate(&d, 0);
            // Ask for t=5 immediately: must wait ~5 producer steps.
            let start = Instant::now();
            im.import(ic, 5.0, &mut dst).unwrap();
            let ahead = start.elapsed();
            // Ask for t=1 afterwards: already buffered, no wait.
            let start = Instant::now();
            im.import(ic, 1.0, &mut dst).unwrap();
            let behind = start.elapsed();
            println!(
                "\n--- E12 overlap: import ahead of frontier waited {ahead:?}; \
                 buffered import took {behind:?} ---"
            );
            ahead
        }
    });
    assert!(waits >= Duration::from_millis(30), "ahead-of-frontier import must wait");
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
