//! Experiment E8 — descriptor compactness vs query cost (§2.2.2).
//!
//! "Using the most compact descriptor appropriate for a given distribution
//! usually allows a DA package to provide better performance than is
//! possible for a completely general, structureless linearization."
//!
//! All five descriptor kinds describe the *same* layout (a row-block
//! distribution over 4 ranks); the bench measures owner-query latency and
//! reports descriptor memory — compact analytic forms vs per-element
//! tables vs patch lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, fmt_bytes};
use mxn_dad::{AxisDist, Dad, ExplicitDist, Extents, Region, Template};

const ROWS: usize = 4096;
const COLS: usize = 4;
const P: usize = 4;

/// The same row-block layout expressed through each descriptor kind.
fn variants() -> Vec<(&'static str, Dad)> {
    let e = Extents::new([ROWS, COLS]);
    let chunk = ROWS / P;

    let block = Dad::regular(
        Template::new(e.clone(), vec![AxisDist::Block { nprocs: P }, AxisDist::Collapsed]).unwrap(),
    );
    let block_cyclic = Dad::regular(
        Template::new(
            e.clone(),
            vec![AxisDist::BlockCyclic { block: chunk, nprocs: P }, AxisDist::Collapsed],
        )
        .unwrap(),
    );
    let gen_block = Dad::regular(
        Template::new(
            e.clone(),
            vec![AxisDist::GenBlock { sizes: vec![chunk; P] }, AxisDist::Collapsed],
        )
        .unwrap(),
    );
    let implicit = Dad::regular(
        Template::new(
            e.clone(),
            vec![
                AxisDist::Implicit { owners: (0..ROWS).map(|r| r / chunk).collect(), nprocs: P },
                AxisDist::Collapsed,
            ],
        )
        .unwrap(),
    );
    let explicit = Dad::explicit(
        ExplicitDist::new(
            e,
            (0..P).map(|p| (Region::new([p * chunk, 0], [(p + 1) * chunk, COLS]), p)).collect(),
            P,
        )
        .unwrap(),
    );

    vec![
        ("block", block),
        ("block_cyclic", block_cyclic),
        ("gen_block", gen_block),
        ("implicit", implicit),
        ("explicit", explicit),
    ]
}

fn bench(c: &mut Criterion) {
    let variants = variants();

    // Sanity: all five agree on ownership.
    let probe = [[17usize, 2], [2047, 0], [4095, 3]];
    for idx in probe {
        let owners: Vec<usize> = variants.iter().map(|(_, d)| d.owner(&idx)).collect();
        assert!(owners.windows(2).all(|w| w[0] == w[1]), "variants disagree at {idx:?}");
    }

    let mut group = c.benchmark_group("e8_descriptor_compactness");
    // Owner queries over a strided index set.
    let queries: Vec<Vec<usize>> = (0..ROWS).step_by(37).map(|r| vec![r, r % COLS]).collect();
    for (name, dad) in &variants {
        group.bench_with_input(BenchmarkId::new("owner_query", name), dad, |b, dad| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in &queries {
                    acc += dad.owner(std::hint::black_box(q));
                }
                acc
            })
        });
    }
    // Patch enumeration (what schedule construction consumes).
    for (name, dad) in &variants {
        group.bench_with_input(BenchmarkId::new("patches", name), dad, |b, dad| {
            b.iter(|| {
                let mut n = 0;
                for r in 0..P {
                    n += dad.patches(std::hint::black_box(r)).len();
                }
                n
            })
        });
    }
    group.finish();

    println!("\n--- E8 descriptor sizes (same layout, five descriptions) ---");
    for (name, dad) in &variants {
        println!("{name:>12}: {}", fmt_bytes(dad.descriptor_bytes()));
    }
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
