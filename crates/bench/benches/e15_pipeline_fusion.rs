//! Experiment E15 (extension) — super-component pipeline fusion (§6).
//!
//! "An important pragmatic issue … is how efficiently redistribution
//! functions compose with one another … Super-component solutions could
//! also be explored … combining several successive redistribution and
//! translation components into a single optimized component."
//!
//! The pipeline: unit-convert → scale → redistribute(2×2) →
//! redistribute(1×4) → offset. Naive execution materializes 2
//! redistributions and 3 filter passes; the optimizer emits 1 fused filter
//! pass and 1 redistribution.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use mxn_bench::{criterion_config, field_value, time_universe};
use mxn_dad::{Dad, Extents, LocalArray};
use mxn_pipeline::{Pipeline, Scale, UnitConversion};

const P: usize = 4;

fn build_pipeline() -> Pipeline {
    let e = Extents::new([256, 256]);
    let a = Dad::block(e.clone(), &[P, 1]).unwrap();
    let b = Dad::block(e.clone(), &[2, 2]).unwrap();
    let c = Dad::block(e, &[1, P]).unwrap();
    Pipeline::new(a)
        .filter(UnitConversion::celsius_to_kelvin())
        .filter(Scale(0.01))
        .redistribute(b)
        .redistribute(c)
        .filter(UnitConversion { scale: 1.0, offset: -2.7315 })
}

fn run(optimize: bool, iters: u64) -> std::time::Duration {
    time_universe(&[P, 1], |ctx| {
        if ctx.program != 0 {
            return std::time::Duration::ZERO;
        }
        let comm = &ctx.comm;
        let pipe = if optimize { build_pipeline().optimized() } else { build_pipeline() };
        let input = pipe.input().clone();
        let seed = LocalArray::from_fn(&input, comm.rank(), field_value);
        let start = Instant::now();
        for i in 0..iters {
            let out = pipe.execute(comm, seed.clone(), ((i as usize * 8) & 0xfff) as i32).unwrap();
            std::hint::black_box(out);
        }
        start.elapsed()
    })
}

fn bench(c: &mut Criterion) {
    // Correctness cross-check before timing.
    let naive = build_pipeline();
    let optimized = build_pipeline().optimized();
    println!(
        "naive: {} redistributions, {} passes; optimized: {} redistribution(s), {} pass(es)",
        naive.num_redistributions(),
        naive.num_passes(),
        optimized.num_redistributions(),
        optimized.num_passes()
    );
    assert!(optimized.num_redistributions() < naive.num_redistributions());
    assert!(optimized.num_passes() < naive.num_passes());

    let mut group = c.benchmark_group("e15_pipeline_fusion");
    group.bench_function("naive_pipeline", |b| b.iter_custom(|iters| run(false, iters)));
    group.bench_function("super_component", |b| b.iter_custom(|iters| run(true, iters)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
