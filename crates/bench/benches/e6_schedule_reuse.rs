//! Experiment E6 — "Communication schedules can be expensive to calculate
//! … and can be reused in consecutive transfers" (§2.3).
//!
//! Two measurements:
//!
//! 1. schedule **construction** cost as the layouts fragment (block-cyclic
//!    block size 64 → 16 → 4 → 1: quadratically more patch intersections);
//! 2. transfer cost **with** and **without** schedule reuse (rebuild every
//!    transfer vs build once) — the amortization argument.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, field_value, time_universe};
use mxn_dad::{AxisDist, Dad, Extents, LocalArray, Template};
use mxn_schedule::RegionSchedule;

fn fragmented(extents: &Extents, block: usize, nprocs: usize) -> Dad {
    Dad::regular(
        Template::new(
            extents.clone(),
            vec![AxisDist::BlockCyclic { block, nprocs }, AxisDist::Collapsed],
        )
        .unwrap(),
    )
}

fn bench(c: &mut Criterion) {
    let extents = Extents::new([1024, 16]);
    let dst = Dad::block(extents.clone(), &[4, 1]).unwrap();

    let mut group = c.benchmark_group("e6_schedule_reuse");

    // 1. Build cost vs fragmentation.
    for block in [64usize, 16, 4, 1] {
        let src = fragmented(&extents, block, 4);
        let patches = src.patches(0).len();
        group.bench_with_input(
            BenchmarkId::new("build_blockcyclic", format!("b{block}_{patches}patches")),
            &src,
            |b, src| {
                b.iter(|| {
                    std::hint::black_box(RegionSchedule::for_sender(
                        std::hint::black_box(src),
                        &dst,
                        0,
                    ))
                })
            },
        );
    }

    // 2. Reuse vs rebuild on a live 4→4 coupling with fragmented source.
    let src = fragmented(&extents, 4, 4);
    for reuse in [true, false] {
        let label = if reuse { "transfer_with_reuse" } else { "transfer_rebuild_each" };
        let src = src.clone();
        let dst = dst.clone();
        group.bench_function(label, |b| {
            let src = src.clone();
            let dst = dst.clone();
            b.iter_custom(move |iters| {
                let src = src.clone();
                let dst = dst.clone();
                time_universe(&[4, 4], move |ctx| {
                    let rank = ctx.comm.rank();
                    if ctx.program == 0 {
                        let ic = ctx.intercomm(1);
                        let local = LocalArray::from_fn(&src, rank, field_value);
                        let cached = RegionSchedule::for_sender(&src, &dst, rank);
                        let start = Instant::now();
                        for i in 0..iters {
                            if reuse {
                                cached.execute_send(ic, &local, i as i32 & 0xfff).unwrap();
                            } else {
                                let s = RegionSchedule::for_sender(&src, &dst, rank);
                                s.execute_send(ic, &local, i as i32 & 0xfff).unwrap();
                            }
                        }
                        start.elapsed()
                    } else {
                        let ic = ctx.intercomm(0);
                        let mut local: LocalArray<f64> = LocalArray::allocate(&dst, rank);
                        let cached = RegionSchedule::for_receiver(&src, &dst, rank);
                        let start = Instant::now();
                        for i in 0..iters {
                            if reuse {
                                cached.execute_recv(ic, &mut local, i as i32 & 0xfff).unwrap();
                            } else {
                                let s = RegionSchedule::for_receiver(&src, &dst, rank);
                                s.execute_recv(ic, &mut local, i as i32 & 0xfff).unwrap();
                            }
                        }
                        start.elapsed()
                    }
                })
            })
        });
    }
    group.finish();

    // Context for the report: schedule sizes at each fragmentation.
    println!("\n--- E6 schedule sizes (sender rank 0) ---");
    for block in [64usize, 16, 4, 1] {
        let src = fragmented(&extents, block, 4);
        let s = RegionSchedule::for_sender(&src, &dst, 0);
        println!(
            "block {block:>3}: {} patches, schedule {} regions / {}",
            src.patches(0).len(),
            s.pairs().iter().map(|p| p.regions.len()).sum::<usize>(),
            mxn_bench::fmt_bytes(s.schedule_bytes())
        );
    }
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
