//! Zero-clone collective transport: shared-envelope broadcast vs the
//! clone-per-child baseline, algorithmic collectives, and mailbox
//! contention throughput.
//!
//! Cells: bcast (shared vs cloning), allgather, allreduce at
//! p ∈ {16, 64, 256} × payload ∈ {1 KiB, 1 MiB}, timed *inside* one
//! running world so thread-spawn cost does not pollute per-op numbers, plus
//! an 8×8 point-to-point flood exercising bucketed-mailbox post/take
//! contention.
//!
//! The headline claims are asserted, not just printed:
//!
//! * shared bcast performs exactly **one payload allocation per op**,
//!   independent of p (16 and 256 checked), and zero payload clones;
//! * at p = 256 / 1 MiB the shared path beats the clone-per-child baseline
//!   by ≥ 5×.
//!
//! Results are written to `BENCH_runtime.json` at the repo root.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, fmt_bytes};
use mxn_runtime::{CollOp, Comm, StatsSnapshot, World};

const KIB: usize = 1 << 10;
const MIB: usize = 1 << 20;

/// Runs `op` `iters` times (after one untimed warm-up round) on a world of
/// `p` ranks; returns (max per-rank ns/op, end-of-run stats). Stats cover
/// warm-up too, so per-op assertions divide by `iters + 1`.
fn time_collective<F>(p: usize, iters: usize, op: F) -> (f64, StatsSnapshot)
where
    F: Fn(&Comm) + Send + Sync,
{
    let (ns, stats) = World::run_with_stats(p, move |proc| {
        let comm = proc.world();
        op(comm);
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            op(comm);
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    });
    (ns.into_iter().fold(0.0f64, f64::max), stats)
}

struct Cell {
    op: &'static str,
    variant: &'static str,
    p: usize,
    payload_bytes: usize,
    ns_per_op: f64,
    /// Payload allocations per op attributed to this collective.
    allocs_per_op: f64,
    /// Payload deep-clones per op attributed to this collective.
    clones_per_op: f64,
}

impl Cell {
    fn json(&self) -> String {
        format!(
            "    {{\"op\": \"{}\", \"variant\": \"{}\", \"p\": {}, \"payload_bytes\": {}, \"ns_per_op\": {:.0}, \"allocs_per_op\": {:.2}, \"clones_per_op\": {:.2}}}",
            self.op, self.variant, self.p, self.payload_bytes, self.ns_per_op,
            self.allocs_per_op, self.clones_per_op,
        )
    }
}

fn iters_for(payload: usize) -> usize {
    if payload >= MIB {
        3
    } else {
        40
    }
}

fn bcast_cell(p: usize, payload: usize, shared: bool) -> Cell {
    let iters = iters_for(payload);
    let n = payload / 8;
    let (ns, stats) = time_collective(p, iters, move |comm| {
        let v = if comm.rank() == 0 { Some(vec![1.0f64; n]) } else { None };
        if shared {
            std::hint::black_box(comm.bcast_shared(0, v).unwrap());
        } else {
            std::hint::black_box(comm.bcast_cloning(0, v).unwrap());
        }
    });
    let ops = (iters + 1) as f64;
    let coll = stats.coll(CollOp::Bcast);
    Cell {
        op: "bcast",
        variant: if shared { "shared" } else { "cloning" },
        p,
        payload_bytes: payload,
        ns_per_op: ns,
        allocs_per_op: coll.payload_allocs as f64 / ops,
        clones_per_op: coll.payload_clones as f64 / ops,
    }
}

fn allgather_cell(p: usize, total_payload: usize) -> Cell {
    let iters = iters_for(total_payload);
    // `total_payload` is the size of the *gathered* result; each rank
    // contributes one p-th.
    let n = (total_payload / 8 / p).max(1);
    let (ns, stats) = time_collective(p, iters, move |comm| {
        std::hint::black_box(comm.allgather_shared(vec![comm.rank() as f64; n]).unwrap());
    });
    let ops = (iters + 1) as f64;
    let coll = stats.coll(CollOp::Allgather);
    Cell {
        op: "allgather",
        variant: "shared_ring",
        p,
        payload_bytes: total_payload,
        ns_per_op: ns,
        allocs_per_op: coll.payload_allocs as f64 / ops,
        clones_per_op: coll.payload_clones as f64 / ops,
    }
}

fn allreduce_cell(p: usize, payload: usize) -> Cell {
    let iters = iters_for(payload);
    let n = payload / 8;
    let (ns, stats) = time_collective(p, iters, move |comm| {
        std::hint::black_box(
            comm.allreduce(vec![1.0f64; n], |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            })
            .unwrap(),
        );
    });
    let ops = (iters + 1) as f64;
    let coll = stats.coll(CollOp::Allreduce);
    Cell {
        op: "allreduce",
        // Single path at every size: binomial reduce folding moved blocks
        // in place + one-alloc shared bcast (recursive doubling and its
        // clone-per-round cost were removed).
        variant: "reduce_bcast_shared",
        p,
        payload_bytes: payload,
        ns_per_op: ns,
        allocs_per_op: coll.payload_allocs as f64 / ops,
        clones_per_op: coll.payload_clones as f64 / ops,
    }
}

/// 8 senders flood 8 receivers (1 KiB messages, 4 tags round-robin):
/// returns sustained messages/second through the bucketed mailboxes.
/// With `traced` the same flood runs under an armed trace collector, so
/// the traced/untraced ratio is the tracer's hot-path cost.
///
/// Scheduler noise on a shared box swings a single flood by ±40%, so the
/// cell is best-of-5: noise only ever *lowers* throughput, making the max
/// the stable estimator (the 5% regression gate needs one).
fn mailbox_contention(msgs_per_sender: usize, traced: bool) -> f64 {
    let pairs = 8usize;
    let body = move |proc: &mxn_runtime::Process| {
        let comm = proc.world();
        let me = comm.rank();
        comm.barrier().unwrap();
        let start = Instant::now();
        if me < pairs {
            for i in 0..msgs_per_sender {
                comm.send(pairs + me, (i % 4) as i32, vec![i as f64; 128]).unwrap();
            }
        } else {
            for i in 0..msgs_per_sender {
                std::hint::black_box(comm.recv::<Vec<f64>>(me - pairs, (i % 4) as i32).unwrap());
            }
        }
        start.elapsed().as_secs_f64()
    };
    let mut best = 0.0f64;
    for _ in 0..5 {
        let secs =
            if traced { World::run_traced(2 * pairs, body).0 } else { World::run(2 * pairs, body) };
        let slowest = secs.into_iter().fold(0.0f64, f64::max);
        best = best.max((pairs * msgs_per_sender) as f64 / slowest);
    }
    best
}

/// One traced shared bcast cell (p ranks, `payload` bytes): max per-rank
/// ns/op with the trace collector armed, for the E20 on/off comparison.
fn traced_bcast_ns(p: usize, payload: usize) -> f64 {
    let iters = iters_for(payload);
    let n = payload / 8;
    let (ns, _) = World::run_traced(p, move |proc| {
        let comm = proc.world();
        let op = |comm: &Comm| {
            let v = if comm.rank() == 0 { Some(vec![1.0f64; n]) } else { None };
            std::hint::black_box(comm.bcast_shared(0, v).unwrap());
        };
        op(comm);
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            op(comm);
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    });
    ns.into_iter().fold(0.0f64, f64::max)
}

/// The committed mailbox-flood throughput, read from `BENCH_runtime.json`
/// *before* this run overwrites it — the baseline the disabled-tracer
/// overhead gate compares against.
fn committed_mailbox_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"msgs_per_sec\": ";
    let at = text.rfind(key)? + key.len();
    text[at..].split(|c: char| !(c.is_ascii_digit() || c == '.')).next()?.parse().ok()
}

fn bench(c: &mut Criterion) {
    // Criterion smoke cells (small p, whole world per measurement).
    let mut group = c.benchmark_group("runtime_collectives");
    let (p, payload) = (16usize, KIB);
    group.bench_with_input(BenchmarkId::new("bcast_shared", p), &p, |b, _| {
        b.iter(|| bcast_cell(p, payload, true).ns_per_op)
    });
    group.bench_with_input(BenchmarkId::new("bcast_cloning", p), &p, |b, _| {
        b.iter(|| bcast_cell(p, payload, false).ns_per_op)
    });
    group.finish();

    let mut cells = Vec::new();
    for &p in &[16usize, 64, 256] {
        for &payload in &[KIB, MIB] {
            cells.push(bcast_cell(p, payload, true));
            cells.push(bcast_cell(p, payload, false));
            cells.push(allgather_cell(p, payload));
            cells.push(allreduce_cell(p, payload));
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let baseline_msgs_per_sec = committed_mailbox_baseline(path);
    let mailbox_msgs_per_sec = mailbox_contention(4000, false);
    let mailbox_traced_msgs_per_sec = mailbox_contention(4000, true);
    let bcast_p256_traced_ns = traced_bcast_ns(256, MIB);

    println!("\n--- runtime_collectives ---");
    for cell in &cells {
        println!(
            "{:<10} {:<20} p={:>3} payload={:>9} {:>14.0} ns/op  allocs/op={:<6.2} clones/op={:.2}",
            cell.op,
            cell.variant,
            cell.p,
            fmt_bytes(cell.payload_bytes),
            cell.ns_per_op,
            cell.allocs_per_op,
            cell.clones_per_op,
        );
    }
    println!("mailbox 8x8 flood: {mailbox_msgs_per_sec:.0} msgs/s");

    let find = |variant: &str, p: usize, payload: usize| {
        cells
            .iter()
            .find(|c| c.variant == variant && c.p == p && c.payload_bytes == payload)
            .expect("cell present")
    };

    // Zero-clone claim: one allocation per broadcast, independent of p.
    for &p in &[16usize, 256] {
        let shared = find("shared", p, MIB);
        assert!(
            (shared.allocs_per_op - 1.0).abs() < 1e-9,
            "shared bcast at p={p} must allocate exactly once per op (got {})",
            shared.allocs_per_op
        );
        assert!(
            shared.clones_per_op == 0.0,
            "shared bcast at p={p} must never deep-clone (got {} clones/op)",
            shared.clones_per_op
        );
    }
    // Clone-per-child baseline really does p-1 copies.
    let cloning = find("cloning", 256, MIB);
    assert!(
        (cloning.clones_per_op - 255.0).abs() < 1e-9,
        "cloning bcast at p=256 should clone p-1 times per op (got {})",
        cloning.clones_per_op
    );
    // Headline speedup: >=5x at p=256 / 1 MiB.
    let shared = find("shared", 256, MIB);
    let speedup = cloning.ns_per_op / shared.ns_per_op;
    assert!(
        speedup >= 5.0,
        "shared bcast should be >=5x faster than clone-per-child at p=256/1MiB (got {speedup:.1}x)"
    );
    println!("bcast shared vs cloning at p=256/1MiB: {speedup:.1}x");

    // E20: tracer cost, on and off. The *disabled* tracer (the default in
    // every cell above) must stay within 5% of the committed flood
    // throughput; the enabled tracer's cost is reported, not gated.
    let bcast_p256_ns = find("shared", 256, MIB).ns_per_op;
    let flood_overhead = 1.0 - mailbox_traced_msgs_per_sec / mailbox_msgs_per_sec;
    println!(
        "mailbox flood traced: {mailbox_traced_msgs_per_sec:.0} msgs/s ({:.1}% tracer cost)",
        flood_overhead * 100.0
    );
    println!(
        "bcast p=256/1MiB traced: {bcast_p256_traced_ns:.0} ns/op (untraced {bcast_p256_ns:.0})"
    );
    if let Some(baseline) = baseline_msgs_per_sec {
        let ratio = mailbox_msgs_per_sec / baseline;
        println!("mailbox flood vs committed baseline: {:.1}%", ratio * 100.0);
        if std::env::var_os("MXN_ENFORCE_TRACE_OVERHEAD").is_some() {
            assert!(
                ratio >= 0.95,
                "disabled tracer costs more than 5% on the mailbox flood: \
                 {mailbox_msgs_per_sec:.0} msgs/s vs committed {baseline:.0}"
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"runtime_collectives\",\n  \"cells\": [\n{}\n  ],\n  \"bcast_speedup_p256_1mib\": {:.2},\n  \"mailbox_flood\": {{\"senders\": 8, \"receivers\": 8, \"msgs_per_sender\": 4000, \"payload_bytes\": 1024, \"msgs_per_sec\": {:.0}}},\n  \"trace_overhead\": {{\"mailbox_flood_traced_msgs_per_sec\": {:.0}, \"flood_tracer_cost_frac\": {:.4}, \"bcast_p256_1mib_untraced_ns\": {:.0}, \"bcast_p256_1mib_traced_ns\": {:.0}}}\n}}\n",
        cells.iter().map(Cell::json).collect::<Vec<_>>().join(",\n"),
        speedup,
        mailbox_msgs_per_sec,
        mailbox_traced_msgs_per_sec,
        flood_overhead,
        bcast_p256_ns,
        bcast_p256_traced_ns,
    );
    std::fs::write(path, json).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
