//! Sublinear schedule construction and precompiled transfer plans.
//!
//! Measures the two layers added to [`RegionSchedule`]:
//!
//! * **Build**: pruned (overlap-index) vs naive (all-pairs) construction at
//!   p ∈ {16, 64, 256}, for an aligned 256↔256 block coupling (each rank
//!   overlaps O(1) peers) and a fragmented block-cyclic → block layout.
//!   Probe counts come from the runtime's schedule counters, timings from
//!   wall-clock loops over every rank's build.
//! * **Transfer**: a 4-rank transpose executed with precompiled plans and a
//!   [`TransferBuffers`] pool — fresh-allocation counts confirm the pool
//!   circulates after step 1.
//!
//! Results are written to `BENCH_schedule.json` at the repo root so the
//! pruned/naive ratio is recorded alongside the code.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::criterion_config;
use mxn_dad::{AxisDist, Dad, Extents, LocalArray, Template};
use mxn_runtime::{reset_schedule_stats, schedule_stats, World};
use mxn_schedule::{RegionSchedule, TransferBuffers};

/// Aligned coupling: the same row-block layout on both sides (two programs
/// sharing a decomposition), where every rank overlaps exactly one peer.
fn aligned(p: usize) -> (Dad, Dad) {
    let e = Extents::new([16 * p, 16]);
    (Dad::block(e.clone(), &[p, 1]).unwrap(), Dad::block(e, &[p, 1]).unwrap())
}

/// Fragmented coupling: block-cyclic rows against contiguous row blocks.
fn fragmented(p: usize) -> (Dad, Dad) {
    let e = Extents::new([64 * p, 16]);
    let src = Dad::regular(
        Template::new(
            e.clone(),
            vec![AxisDist::BlockCyclic { block: 4, nprocs: p }, AxisDist::Collapsed],
        )
        .unwrap(),
    );
    (src, Dad::block(e, &[p, 1]).unwrap())
}

/// Nanoseconds per call of `f` (which builds all `p` ranks' schedules),
/// plus the per-all-ranks probe count from the schedule counters.
fn measure(p: usize, f: impl Fn(usize)) -> (f64, u64) {
    let build_all = || {
        for r in 0..p {
            f(r);
        }
    };
    build_all(); // warm-up
    reset_schedule_stats();
    build_all();
    let probes = schedule_stats().peer_probes;
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            build_all();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 1 << 14 {
            return (elapsed.as_nanos() as f64 / iters as f64, probes);
        }
        iters *= 2;
    }
}

struct Case {
    p: usize,
    layout: &'static str,
    naive_ns: f64,
    pruned_ns: f64,
    naive_probes: u64,
    pruned_probes: u64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.pruned_ns
    }

    fn json(&self) -> String {
        format!(
            "    {{\"p\": {}, \"layout\": \"{}\", \"naive_build_ns\": {:.0}, \"pruned_build_ns\": {:.0}, \"speedup\": {:.2}, \"naive_probes\": {}, \"pruned_probes\": {}}}",
            self.p,
            self.layout,
            self.naive_ns,
            self.pruned_ns,
            self.speedup(),
            self.naive_probes,
            self.pruned_probes,
        )
    }
}

fn run_case(p: usize, layout: &'static str, src: &Dad, dst: &Dad) -> Case {
    let (naive_ns, naive_probes) = measure(p, |r| {
        std::hint::black_box(RegionSchedule::for_sender_naive(src, dst, r));
    });
    let (pruned_ns, pruned_probes) = measure(p, |r| {
        std::hint::black_box(RegionSchedule::for_sender(src, dst, r));
    });
    Case { p, layout, naive_ns, pruned_ns, naive_probes, pruned_probes }
}

/// 4-rank pooled transpose: returns (ns per step, fresh allocs after the
/// first step, fresh allocs at the end) — the last two must match.
fn transfer_reuse(steps: usize) -> (f64, u64, u64) {
    let results = World::run(4, move |proc| {
        let comm = proc.world();
        let e = Extents::new([64, 64]);
        let src = Dad::block(e.clone(), &[4, 1]).unwrap();
        let dst = Dad::block(e, &[1, 4]).unwrap();
        let send = RegionSchedule::for_sender(&src, &dst, comm.rank());
        let recv = RegionSchedule::for_receiver(&src, &dst, comm.rank());
        let src_local = LocalArray::from_fn(&src, comm.rank(), |idx| (idx[0] * 64 + idx[1]) as f64);
        let mut dst_local: LocalArray<f64> = LocalArray::allocate(&dst, comm.rank());
        let mut pool = TransferBuffers::new();
        let mut after_first = 0;
        let start = Instant::now();
        for step in 0..steps {
            RegionSchedule::execute_local_pooled(
                &send,
                &recv,
                comm,
                &src_local,
                &mut dst_local,
                step as i32,
                &mut pool,
            )
            .unwrap();
            comm.barrier().unwrap();
            if step == 0 {
                after_first = pool.stats().1;
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / steps as f64;
        (ns, after_first, pool.stats().1)
    });
    let ns = results.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let after_first = results.iter().map(|r| r.1).max().unwrap();
    let at_end = results.iter().map(|r| r.2).max().unwrap();
    (ns, after_first, at_end)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_scaling");
    for p in [16usize, 64, 256] {
        let (src, dst) = aligned(p);
        group.bench_with_input(BenchmarkId::new("aligned_pruned", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(RegionSchedule::for_sender(&src, &dst, 0)))
        });
        group.bench_with_input(BenchmarkId::new("aligned_naive", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(RegionSchedule::for_sender_naive(&src, &dst, 0)))
        });
    }
    group.finish();

    // Wall-clock + probe-count measurements for the JSON report.
    let mut cases = Vec::new();
    for p in [16usize, 64, 256] {
        let (src, dst) = aligned(p);
        cases.push(run_case(p, "aligned_block", &src, &dst));
        let (src, dst) = fragmented(p);
        cases.push(run_case(p, "block_cyclic_to_block", &src, &dst));
    }

    let (transfer_ns, fresh_after_first, fresh_at_end) = transfer_reuse(50);
    assert_eq!(
        fresh_after_first, fresh_at_end,
        "steady-state pooled transfer must not allocate fresh buffers"
    );

    println!("\n--- schedule_scaling: pruned vs naive build (all ranks) ---");
    for case in &cases {
        println!(
            "p={:>3} {:<22} naive {:>12.0} ns ({} probes)  pruned {:>10.0} ns ({} probes)  speedup {:>6.1}x",
            case.p,
            case.layout,
            case.naive_ns,
            case.naive_probes,
            case.pruned_ns,
            case.pruned_probes,
            case.speedup(),
        );
    }
    println!(
        "pooled transpose: {transfer_ns:.0} ns/step, fresh allocs after step 1: {fresh_after_first}, after 50 steps: {fresh_at_end}"
    );

    let at_256 = cases
        .iter()
        .find(|c| c.p == 256 && c.layout == "aligned_block")
        .expect("aligned 256 case present");
    assert!(
        at_256.speedup() >= 10.0,
        "pruned build should be >=10x faster than naive at p=256 (got {:.1}x)",
        at_256.speedup()
    );
    assert!(
        at_256.pruned_probes * 10 <= at_256.naive_probes,
        "pruned probes ({}) should be far below naive ({})",
        at_256.pruned_probes,
        at_256.naive_probes
    );

    let json = format!(
        "{{\n  \"bench\": \"schedule_scaling\",\n  \"builds\": [\n{}\n  ],\n  \"pooled_transfer\": {{\"steps\": 50, \"ns_per_step\": {:.0}, \"fresh_allocs_after_step1\": {}, \"fresh_allocs_after_50_steps\": {}}}\n}}\n",
        cases.iter().map(Case::json).collect::<Vec<_>>().join(",\n"),
        transfer_ns,
        fresh_after_first,
        fresh_at_end,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schedule.json");
    std::fs::write(path, json).expect("write BENCH_schedule.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
