//! E22 — the sharded serving plane under thousand-client load.
//!
//! Cells:
//!
//! * **sustained** — 1024 simulated client connections (8 driver threads,
//!   pipelined 48-deep) against a 2-shard plane: sustained RMI calls/s
//!   and the per-call latency distribution. Headline target: ≥ 1M calls/s
//!   with bounded p99.
//! * **batched vs per-call** — a 64-byte-payload workload through a
//!   `PrmiBackend` plane at `max_batch = 128` vs `max_batch = 1`: the
//!   ratio is what batching buys when every dispatch run is one `CollReq`
//!   round through the provider's collective serve loop.
//! * **overload** — offered load far beyond a deliberately tiny admission
//!   budget, against an uncontended baseline on the *same* plane shape:
//!   admission control must shed (typed `Overloaded` NACKs) while holding
//!   the p99 of *served* requests within 10× of uncontended.
//! * **traced** — a short run with recorders on the shard executors,
//!   exported as a Chrome trace (`target/serving_trace.json`, "serve"
//!   category) for the CI artifact.
//!
//! Results land in `BENCH_serving.json` at the repo root. With
//! `MXN_ENFORCE_SERVING_BASELINE` set (the CI smoke job does), sustained
//! throughput must stay within 10% of the committed baseline and the
//! sustained p99 must stay bounded.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use mxn_bench::criterion_config;
use mxn_framework::{AnyPayload, BatchService, Dispatch, RemoteService};
use mxn_prmi::collective_serve_batched;
use mxn_runtime::{InterComm, World};
use mxn_serve::{
    PlaneClient, PrmiBackend, ServeOutcome, ServePolicy, ServiceBackend, ServingPlane,
};
use mxn_trace::TraceCollector;

/// Method 0: answers the payload's length. 64-byte `Vec<u8>` arguments
/// make this the issue's "64B payload" workload.
struct Echo;

impl RemoteService for Echo {
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
        match method {
            0 => AnyPayload::new(arg.downcast::<Vec<u8>>().unwrap().len() as u64).into(),
            _ => Dispatch::MethodNotFound,
        }
    }
}
impl BatchService for Echo {}

/// Echo with a per-item spin, modelling a method with real work — the
/// overload cell needs service time to exceed arrival time.
struct SpinEcho {
    per_item: Duration,
}

impl RemoteService for SpinEcho {
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
        let start = Instant::now();
        while start.elapsed() < self.per_item {
            std::hint::spin_loop();
        }
        match method {
            0 => AnyPayload::new(arg.downcast::<Vec<u8>>().unwrap().len() as u64).into(),
            _ => Dispatch::MethodNotFound,
        }
    }
}
impl BatchService for SpinEcho {}

fn echo_plane(policy: ServePolicy) -> ServingPlane {
    let svc: Arc<dyn BatchService> = Arc::new(Echo);
    ServingPlane::new(policy, move |_| Box::new(ServiceBackend::new(Arc::clone(&svc))))
}

struct LoadResult {
    calls: u64,
    sheds: u64,
    elapsed: Duration,
    /// Per-served-call latencies, microseconds.
    latencies_us: Vec<f64>,
}

impl LoadResult {
    fn calls_per_sec(&self) -> f64 {
        self.calls as f64 / self.elapsed.as_secs_f64()
    }
    fn p99_us(&self) -> f64 {
        percentile(&self.latencies_us, 0.99)
    }
}

fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct ClientState {
    client: PlaneClient,
    sent: usize,
    recvd: usize,
    stamps: std::collections::VecDeque<Instant>,
}

impl ClientState {
    fn absorb(&mut self, reply: mxn_serve::PlaneReply, latencies: &mut Vec<f64>, sheds: &mut u64) {
        let issued = self.stamps.pop_front().expect("stamp per request");
        match reply.outcome {
            ServeOutcome::Reply(_) => latencies.push(issued.elapsed().as_secs_f64() * 1e6),
            ServeOutcome::Overloaded { .. } => *sheds += 1,
            ServeOutcome::MethodNotFound { method } => {
                panic!("unexpected MethodNotFound({method})")
            }
        }
        self.recvd += 1;
    }
}

/// Drives `clients` pipelined connections (spread over `drivers` threads,
/// round-robin within each driver, `window`-deep per connection) for
/// `per_client` requests each. Returns totals and the latency sample.
///
/// Latency is send-to-receive per request; replies are FIFO per
/// connection, so pairing send stamps with receives positionally is exact.
/// Each pass drains everything already delivered (non-blocking), then tops
/// pipelines up; the driver only parks when no connection has anything
/// ready, so measured latency is delivery time, not round-robin lag.
///
/// `replicable` wraps arguments with [`AnyPayload::replicable`] — required
/// when the plane's backend fans batches out through a PRMI collective.
///
/// `pace` sleeps between driver passes, turning the closed loop into an
/// open(ish) arrival process: the overload cell uses it so oversubscribed
/// driver threads don't starve the shard of the CPU whose scheduling they
/// are measuring.
#[allow(clippy::too_many_arguments)]
fn run_load(
    plane: &ServingPlane,
    clients: usize,
    drivers: usize,
    window: usize,
    per_client: usize,
    payload: usize,
    replicable: bool,
    pace: Option<Duration>,
) -> LoadResult {
    assert_eq!(clients % drivers, 0, "clients must divide evenly over drivers");
    let per_driver = clients / drivers;
    let barrier = Arc::new(Barrier::new(drivers + 1));
    let handle = plane.handle();
    let threads: Vec<_> = (0..drivers)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let handle = handle.clone();
            std::thread::spawn(move || {
                let make_arg = move || {
                    if replicable {
                        AnyPayload::replicable(vec![7u8; payload])
                    } else {
                        AnyPayload::new(vec![7u8; payload])
                    }
                };
                let mut states: Vec<ClientState> = (0..per_driver)
                    .map(|_| ClientState {
                        client: handle.client(),
                        sent: 0,
                        recvd: 0,
                        stamps: std::collections::VecDeque::new(),
                    })
                    .collect();
                barrier.wait();
                let mut latencies = Vec::with_capacity(per_driver * per_client);
                let mut sheds = 0u64;
                loop {
                    let mut progressed = false;
                    let mut all_done = true;
                    for st in &mut states {
                        // Drain everything already delivered.
                        while st.recvd < st.sent {
                            match st.client.try_recv().unwrap() {
                                Some(reply) => {
                                    st.absorb(reply, &mut latencies, &mut sheds);
                                    progressed = true;
                                }
                                None => break,
                            }
                        }
                        // Top the pipeline up.
                        while st.sent < per_client && st.sent - st.recvd < window {
                            st.stamps.push_back(Instant::now());
                            st.client.send(0, make_arg()).unwrap();
                            st.sent += 1;
                            progressed = true;
                        }
                        if st.recvd < per_client {
                            all_done = false;
                        }
                    }
                    if all_done {
                        break;
                    }
                    if !progressed {
                        // Nothing ready anywhere: park on the first
                        // connection with an outstanding request.
                        let st = states
                            .iter_mut()
                            .find(|s| s.recvd < s.sent)
                            .expect("not done yet, so someone is outstanding");
                        let reply = st.client.recv().unwrap();
                        st.absorb(reply, &mut latencies, &mut sheds);
                    } else if let Some(pause) = pace {
                        std::thread::sleep(pause);
                    }
                }
                (latencies, sheds)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut latencies_us = Vec::new();
    let mut sheds = 0;
    for t in threads {
        let (lat, shed) = t.join().expect("driver thread");
        latencies_us.extend(lat);
        sheds += shed;
    }
    let elapsed = start.elapsed();
    LoadResult { calls: (clients * per_client) as u64, sheds, elapsed, latencies_us }
}

/// The committed sustained throughput, read before this run overwrites it.
fn committed_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"sustained_calls_per_sec\": ";
    let at = text.find(key)? + key.len();
    text[at..].split(|c: char| !(c.is_ascii_digit() || c == '.')).next()?.parse().ok()
}

fn bench(c: &mut Criterion) {
    // Criterion smoke cell: one small plane round-trip.
    let mut group = c.benchmark_group("serving_plane");
    group.bench_function("call_roundtrip", |b| {
        let plane = echo_plane(ServePolicy::default().with_shards(1));
        let mut client = plane.client();
        b.iter(|| {
            std::hint::black_box(client.call(0, AnyPayload::new(vec![7u8; 64])).unwrap());
        });
    });
    group.finish();

    let enforce = std::env::var_os("MXN_ENFORCE_SERVING_BASELINE").is_some();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let baseline = committed_baseline(path);

    // --- sustained: 1024 clients, 8 drivers, 2 shards -----------------
    let policy = ServePolicy::default()
        .with_shards(2)
        .with_max_batch(128)
        .with_shard_queue(1 << 17)
        .with_inflight_budget(1 << 17)
        .with_client_queue(128);
    let plane = echo_plane(policy);
    // Warm-up: populate connections and fault in the paths.
    run_load(&plane, 64, 16, 16, 64, 64, false, None);
    let sustained = run_load(&plane, 1024, 8, 48, 1024, 64, false, None);
    let stats = plane.shutdown();
    let totals = stats.totals();
    assert_eq!(sustained.sheds, 0, "sustained cell must not shed");
    assert!(totals.batch_peak > 1, "sustained load must actually batch");
    println!(
        "sustained: {:.0} calls/s over {} conns (p50 {:.0}us p99 {:.0}us, batch peak {})",
        sustained.calls_per_sec(),
        stats.conns_opened,
        percentile(&sustained.latencies_us, 0.50),
        sustained.p99_us(),
        totals.batch_peak,
    );

    // --- batched vs per-call at 64B through the PRMI bridge -----------
    // What batching actually amortizes is the dispatch round: with a
    // `PrmiBackend`, every run is one `CollReq` through the collective
    // serve loop on the provider rank. `max_batch = 1` pays that round
    // per call; `max_batch = 128` pays it per run of up to 128.
    let prmi_cell = |max_batch: usize| -> LoadResult {
        let mut results = World::run(2, move |p| {
            let world = p.world();
            let me = world.rank();
            let (_local, ic) = InterComm::create(world, if me == 0 { 0 } else { 1 }).unwrap();
            if me == 0 {
                let mut ic = Some(ic);
                let plane = ServingPlane::new(
                    ServePolicy::default()
                        .with_shards(1)
                        .with_max_batch(max_batch)
                        .with_shard_queue(1 << 14)
                        .with_inflight_budget(1 << 15)
                        .with_client_queue(64),
                    move |_| Box::new(PrmiBackend::new(ic.take().expect("single shard"))),
                );
                let res = run_load(&plane, 128, 4, 64, 128, 64, true, None);
                plane.shutdown(); // releases the provider's serve loop
                Some(res)
            } else {
                collective_serve_batched(&ic, &Echo).unwrap();
                None
            }
        });
        results.remove(0).expect("rank 0 carries the measurement")
    };
    let batched = prmi_cell(128);
    let percall = prmi_cell(1);
    let batch_speedup = batched.calls_per_sec() / percall.calls_per_sec();
    println!(
        "batched {:.0} calls/s vs per-call {:.0} calls/s through PRMI: {batch_speedup:.1}x",
        batched.calls_per_sec(),
        percall.calls_per_sec()
    );

    // --- overload: tiny admission budget, hot method ------------------
    let overload_shape = ServePolicy::default()
        .with_shards(1)
        .with_max_batch(16)
        .with_shard_queue(8)
        .with_inflight_budget(16)
        .with_client_queue(64);
    let spin_plane = |policy: ServePolicy| {
        let svc: Arc<dyn BatchService> = Arc::new(SpinEcho { per_item: Duration::from_micros(20) });
        ServingPlane::new(policy, move |_| Box::new(ServiceBackend::new(Arc::clone(&svc))))
    };
    let plane = spin_plane(overload_shape);
    // Uncontended: a handful of callers, one in flight each.
    let uncontended = run_load(&plane, 8, 8, 1, 256, 64, false, None);
    // Overload: 128 pipelined clients, paced, against a 24-deep budget.
    let overloaded = run_load(&plane, 128, 4, 4, 128, 64, false, Some(Duration::from_micros(200)));
    let overload_stats = plane.shutdown();
    assert!(overloaded.sheds > 0, "overload cell must shed via Overloaded NACKs");
    let p99_ratio = overloaded.p99_us() / uncontended.p99_us();
    println!(
        "overload: p99 {:.0}us vs uncontended {:.0}us ({p99_ratio:.1}x), {} sheds of {} offered",
        overloaded.p99_us(),
        uncontended.p99_us(),
        overloaded.sheds,
        overloaded.calls,
    );

    // --- traced run for the CI artifact -------------------------------
    let collector = TraceCollector::new(2);
    let handles = vec![collector.handle(0), collector.handle(1)];
    let svc: Arc<dyn BatchService> = Arc::new(Echo);
    let plane = ServingPlane::new_traced(
        ServePolicy::default().with_shards(2).with_max_batch(16),
        handles,
        move |_| Box::new(ServiceBackend::new(Arc::clone(&svc))),
    );
    run_load(&plane, 16, 4, 8, 64, 64, false, None);
    plane.shutdown();
    let trace = collector.finish();
    let batches = trace.aggregate().count(mxn_trace::EventId::ServeBatch);
    assert!(batches > 0, "traced run must record ServeBatch spans");
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/serving_trace.json");
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")).ok();
    std::fs::write(trace_path, trace.chrome_json()).expect("write serving trace");
    println!("traced run: {batches} ServeBatch spans -> {trace_path}");

    // --- gates --------------------------------------------------------
    if enforce {
        assert!(
            sustained.calls_per_sec() >= 1_000_000.0,
            "sustained throughput below 1M calls/s: {:.0}",
            sustained.calls_per_sec()
        );
        assert!(
            sustained.p99_us() <= 100_000.0,
            "sustained p99 unbounded: {:.0}us",
            sustained.p99_us()
        );
        assert!(
            batch_speedup >= 5.0,
            "batched dispatch under 5x over per-call: {batch_speedup:.1}x"
        );
        assert!(
            p99_ratio <= 10.0,
            "admission control failed to bound overload p99: {p99_ratio:.1}x uncontended"
        );
        if let Some(base) = baseline {
            let ratio = sustained.calls_per_sec() / base;
            assert!(
                ratio >= 0.9,
                "sustained throughput regressed below 90% of committed baseline: \
                 {:.0} vs {base:.0}",
                sustained.calls_per_sec()
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"serving_plane\",\n  \"sustained\": {{\"clients\": 1024, \"drivers\": 8, \"window\": 48, \"shards\": 2, \"payload_bytes\": 64, \"calls\": {}, \"sustained_calls_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"batch_peak\": {}}},\n  \"batching\": {{\"payload_bytes\": 64, \"batched_calls_per_sec\": {:.0}, \"percall_calls_per_sec\": {:.0}, \"batched_speedup\": {:.2}}},\n  \"overload\": {{\"offered\": {}, \"sheds\": {}, \"shed_admission\": {}, \"served_p99_us\": {:.1}, \"uncontended_p99_us\": {:.1}, \"p99_ratio\": {:.2}}}\n}}\n",
        sustained.calls,
        sustained.calls_per_sec(),
        percentile(&sustained.latencies_us, 0.50),
        sustained.p99_us(),
        totals.batch_peak,
        batched.calls_per_sec(),
        percall.calls_per_sec(),
        batch_speedup,
        overloaded.calls,
        overloaded.sheds,
        overload_stats.totals().shed_admission,
        overloaded.p99_us(),
        uncontended.p99_us(),
        p99_ratio,
    );
    std::fs::write(path, json).expect("write BENCH_serving.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
