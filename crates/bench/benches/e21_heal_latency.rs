//! E21 — heal latency vs survivor count (§4e, extension).
//!
//! Measures the critical path of `MxnConnection::heal` — revoke, the
//! shrink agreement, survivor re-decomposition (`Dad::shrink`), field
//! rebind and the region-schedule rebuild — as the coupling grows. A
//! fixed 64×64 field is exported by M ranks to 2 importers; after one
//! committed epoch the last exporter dies, the next epoch aborts, and
//! every survivor times its `heal` call. The per-run figure is the *max*
//! across survivors (the protocol's critical path), the reported figure
//! the median of `RUNS` runs.
//!
//! Results are written to `BENCH_recovery.json` at the repo root.

use std::time::{Duration, Instant};

use mxn_core::{ConnectionKind, Direction, FieldRegistry, MxnConnection};
use mxn_dad::{AccessMode, Dad, Extents};
use mxn_runtime::Universe;

const RUNS: usize = 5;
const IMPORTERS: usize = 2;

/// One coupled run with `m` exporters; returns the slowest survivor's
/// heal wall-clock.
fn heal_once(m: usize) -> Duration {
    let dead = m - 1; // exporter with the highest local (and world) rank
    let durations = Universe::run(&[m, IMPORTERS], |p, ctx| {
        let rank = ctx.comm.rank();
        let exporting = ctx.program == 0;
        let src = Dad::block(Extents::new([64, 64]), &[m, 1]).unwrap();
        let dst = Dad::block(Extents::new([64, 64]), &[1, IMPORTERS]).unwrap();
        let mut reg = FieldRegistry::new(rank);
        let _data = if exporting {
            reg.register_allocated("f", src, AccessMode::Read).unwrap()
        } else {
            reg.register_allocated("f", dst, AccessMode::Write).unwrap()
        };
        let mut conn = if exporting {
            MxnConnection::initiate(
                ctx.intercomm(1),
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap()
        } else {
            MxnConnection::accept(ctx.intercomm(0), &reg, 0).unwrap()
        };
        conn.set_transactional(true);
        let ic = if exporting { ctx.intercomm(1) } else { ctx.intercomm(0) };
        conn.data_ready(ic, &reg).unwrap();
        p.world().barrier().unwrap();
        if p.rank() == dead {
            p.kill_rank(dead);
            return None;
        }
        while !p.is_dead(dead) {
            std::thread::yield_now();
        }
        conn.data_ready(ic, &reg).unwrap_err();
        let start = Instant::now();
        conn.heal(ic, &mut reg).unwrap();
        Some(start.elapsed())
    });
    durations.into_iter().flatten().max().expect("at least one survivor timed the heal")
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn main() {
    let mut rows = Vec::new();
    println!("{:>10} {:>10} {:>14}", "exporters", "survivors", "heal (median)");
    for m in [2usize, 4, 8, 16, 32] {
        let med = median((0..RUNS).map(|_| heal_once(m)).collect());
        println!("{:>10} {:>10} {:>12.1}us", m, m + IMPORTERS - 1, med.as_secs_f64() * 1e6);
        rows.push(format!(
            "    {{\"exporters\": {m}, \"survivors\": {}, \"heal_ns_median_of_max\": {}}}",
            m + IMPORTERS - 1,
            med.as_nanos()
        ));
    }
    let json = format!(
        "{{\n  \"field\": \"64x64 f64, M exporters -> {IMPORTERS} importers, last exporter dies\",\
         \n  \"runs_per_point\": {RUNS},\n  \"heal_latency\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, json).expect("write BENCH_recovery.json");
    println!("wrote {path}");
}
