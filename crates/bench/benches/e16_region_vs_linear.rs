//! Experiment E16 (ablation) — region fast path vs generic linearization
//! sweep, for both schedule *construction* and *execution*.
//!
//! DESIGN.md marks this design decision for ablation: the region schedule
//! intersects rectangular patches and packs whole rows; the linear
//! schedule refers everything to the 1-D linearization (Meta-Chaos style)
//! and pays per-run index translation. Same transfers, same messages —
//! different constant factors, growing with fragmentation.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, field_value, time_universe};
use mxn_dad::{AxisDist, Dad, Extents, LocalArray, Template};
use mxn_linearize::ArrayOrder;
use mxn_schedule::{LinearSchedule, RegionSchedule};

fn layouts(block: usize) -> (Dad, Dad) {
    let e = Extents::new([512, 32]);
    let src = Dad::regular(
        Template::new(
            e.clone(),
            vec![AxisDist::BlockCyclic { block, nprocs: 2 }, AxisDist::Collapsed],
        )
        .unwrap(),
    );
    let dst = Dad::block(e, &[2, 1]).unwrap();
    (src, dst)
}

fn run_exec(region: bool, block: usize, iters: u64) -> std::time::Duration {
    let (src, dst) = layouts(block);
    time_universe(&[2, 2], |ctx| {
        let rank = ctx.comm.rank();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let local = LocalArray::from_fn(&src, rank, field_value);
            let reg = RegionSchedule::for_sender(&src, &dst, rank);
            let lin = LinearSchedule::for_sender(&src, &dst, ArrayOrder::RowMajor, rank);
            let start = Instant::now();
            for i in 0..iters {
                let tag = (i & 0xfff) as i32;
                if region {
                    reg.execute_send(ic, &local, tag).unwrap();
                } else {
                    lin.execute_send(ic, &src, &local, tag).unwrap();
                }
            }
            start.elapsed()
        } else {
            let ic = ctx.intercomm(0);
            let mut local: LocalArray<f64> = LocalArray::allocate(&dst, rank);
            let reg = RegionSchedule::for_receiver(&src, &dst, rank);
            let lin = LinearSchedule::for_receiver(&src, &dst, ArrayOrder::RowMajor, rank);
            let start = Instant::now();
            for i in 0..iters {
                let tag = (i & 0xfff) as i32;
                if region {
                    reg.execute_recv(ic, &mut local, tag).unwrap();
                } else {
                    lin.execute_recv(ic, &dst, &mut local, tag).unwrap();
                }
            }
            start.elapsed()
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_region_vs_linear");

    for block in [64usize, 8, 1] {
        let (src, dst) = layouts(block);
        // Construction.
        group.bench_with_input(
            BenchmarkId::new("build_region", format!("block{block}")),
            &block,
            |b, _| b.iter(|| std::hint::black_box(RegionSchedule::for_sender(&src, &dst, 0))),
        );
        group.bench_with_input(
            BenchmarkId::new("build_linear", format!("block{block}")),
            &block,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(LinearSchedule::for_sender(
                        &src,
                        &dst,
                        ArrayOrder::RowMajor,
                        0,
                    ))
                })
            },
        );
        // Execution.
        group.bench_with_input(
            BenchmarkId::new("exec_region", format!("block{block}")),
            &block,
            |b, &blk| b.iter_custom(|iters| run_exec(true, blk, iters)),
        );
        group.bench_with_input(
            BenchmarkId::new("exec_linear", format!("block{block}")),
            &block,
            |b, &blk| b.iter_custom(|iters| run_exec(false, blk, iters)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
