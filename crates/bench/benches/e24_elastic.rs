//! E24 — elastic reconfiguration latency vs Δp (§4i).
//!
//! Measures the critical path of the grow and shrink halves of an elastic
//! reconfiguration as the membership delta widens. A fixed 64×64 field is
//! exported by 2 ranks to 2 importers; Δp spare ranks park in
//! `MxnConnection::join`, the incumbents time `expand` (join handshake,
//! epoch bump, re-decomposition, RMA-window rebind, schedule rebuild), one
//! epoch runs at the grown size, then every member times `contract` back
//! to the original 2×2. The per-run figure is the *max* across
//! participants (the protocol's critical path), the reported figure the
//! median of `RUNS` runs.
//!
//! Results are written to `BENCH_elastic.json` at the repo root.

use std::time::{Duration, Instant};

use mxn_core::{ConnectionKind, Direction, FieldRegistry, MxnConnection};
use mxn_dad::{AccessMode, Dad, Extents};
use mxn_runtime::{InterComm, World};

const RUNS: usize = 5;
const INCUMBENTS: usize = 4; // 2 exporters + 2 importers

type Timings = Option<(Option<Duration>, Option<Duration>)>;

/// One grow→shrink cycle with `dp` spares joining the import side;
/// returns the slowest participant's (grow, shrink) wall-clock.
fn elastic_once(dp: usize) -> (Duration, Duration) {
    let n = INCUMBENTS + dp;
    let results: Vec<Timings> = World::run(n, |p| {
        let world = p.world();
        let color = if p.rank() < INCUMBENTS { 0 } else { -1 };
        let pair = world.split(color, 0).unwrap();
        if p.rank() >= INCUMBENTS {
            // Spare capacity: park, join the grown epoch, transfer once,
            // then retire — the handoff is part of the shrink path.
            let (mut conn, ic, reg) = MxnConnection::join(world, Duration::from_secs(30)).unwrap();
            conn.data_ready(&ic, &reg).unwrap();
            let mut reg = reg;
            let start = Instant::now();
            conn.contract(&ic, world, &mut reg, &[0, 1], &[0, 1]).unwrap();
            return Some((None, Some(start.elapsed())));
        }
        let side = usize::from(p.rank() >= 2);
        let (_prog, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
        let rank = ic.local_rank();
        let mut reg = FieldRegistry::new(rank);
        let src = Dad::block(Extents::new([64, 64]), &[2, 1]).unwrap();
        let dst = Dad::block(Extents::new([64, 64]), &[1, 2]).unwrap();
        let (_data, mut conn) = if side == 0 {
            let data = reg.register_allocated("f", src, AccessMode::Read).unwrap();
            let conn = MxnConnection::initiate(
                &ic,
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap();
            (data, conn)
        } else {
            let data = reg.register_allocated("f", dst, AccessMode::Write).unwrap();
            (data, MxnConnection::accept(&ic, &reg, 0).unwrap())
        };
        // One epoch at the original size, then the timed grow.
        conn.data_ready(&ic, &reg).unwrap();
        let spares: Vec<usize> = (INCUMBENTS..n).collect();
        let (al, ar): (&[usize], &[usize]) =
            if side == 0 { (&[], &spares) } else { (&spares, &[]) };
        let start = Instant::now();
        let (grown, _) = conn.expand(&ic, world, &mut reg, al, ar).unwrap();
        let grow = start.elapsed();
        // One epoch at the grown size, then the timed shrink back.
        conn.data_ready(&grown, &reg).unwrap();
        let start = Instant::now();
        let (shrunk, _) = conn.contract(&grown, world, &mut reg, &[0, 1], &[0, 1]).unwrap();
        let shrink = start.elapsed();
        // The cycle closes: the original coupling still transfers.
        conn.data_ready(&shrunk.unwrap(), &reg).unwrap();
        Some((Some(grow), Some(shrink)))
    });
    let grow = results.iter().flatten().filter_map(|(g, _)| *g).max().unwrap();
    let shrink = results.iter().flatten().filter_map(|(_, s)| *s).max().unwrap();
    (grow, shrink)
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn main() {
    let mut rows = Vec::new();
    println!("{:>6} {:>8} {:>14} {:>14}", "dp", "members", "grow (median)", "shrink (median)");
    for dp in [1usize, 2, 4, 8] {
        let samples: Vec<(Duration, Duration)> = (0..RUNS).map(|_| elastic_once(dp)).collect();
        let grow = median(samples.iter().map(|&(g, _)| g).collect());
        let shrink = median(samples.iter().map(|&(_, s)| s).collect());
        println!(
            "{:>6} {:>8} {:>12.1}us {:>12.1}us",
            dp,
            INCUMBENTS + dp,
            grow.as_secs_f64() * 1e6,
            shrink.as_secs_f64() * 1e6
        );
        rows.push(format!(
            "    {{\"dp\": {dp}, \"members\": {}, \"grow_ns_median_of_max\": {}, \
             \"shrink_ns_median_of_max\": {}}}",
            INCUMBENTS + dp,
            grow.as_nanos(),
            shrink.as_nanos()
        ));
    }
    let json = format!(
        "{{\n  \"field\": \"64x64 f64, 2 exporters -> 2 importers, dp spares join the import \
         side\",\n  \"runs_per_point\": {RUNS},\n  \"elastic_latency\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_elastic.json");
    std::fs::write(path, json).expect("write BENCH_elastic.json");
    println!("wrote {path}");
}
