//! Experiment E14 — "the creation of communication schedules is not
//! serialized" (§3, scalability requirement).
//!
//! Schedules are built per rank from replicated compact descriptors, with
//! no coordinator and no communication — so on a real machine each of the
//! P processes pays only its own build. This bench measures:
//!
//! * `per_rank_build/P` — what one process actually computes (shrinks as
//!   1/P: fewer own patches, same peer scan);
//! * `centralized_build/P` — the anti-pattern the requirement rules out: a
//!   single data-management process building all P ranks' schedules
//!   (grows with the aggregate work).
//!
//! The ratio between the two curves is the scalability win; the absence of
//! any messaging during construction is checked explicitly at the end.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::criterion_config;
use mxn_dad::{AxisDist, Dad, Extents, Template};
use mxn_schedule::RegionSchedule;

fn layouts(p: usize) -> (Dad, Dad) {
    // Fragmented source (block-cyclic rows) against a block destination.
    let e = Extents::new([32768, 4]);
    let src = Dad::regular(
        Template::new(
            e.clone(),
            vec![AxisDist::BlockCyclic { block: 4, nprocs: p }, AxisDist::Collapsed],
        )
        .unwrap(),
    );
    let dst = Dad::block(e, &[p, 1]).unwrap();
    (src, dst)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_schedule_scaling");
    for p in [1usize, 2, 4, 8, 16, 32] {
        let (src, dst) = layouts(p);
        group.bench_with_input(BenchmarkId::new("per_rank_build", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(RegionSchedule::for_sender(&src, &dst, 0)))
        });
        group.bench_with_input(BenchmarkId::new("centralized_build", p), &p, |b, &p| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    for r in 0..p {
                        std::hint::black_box(RegionSchedule::for_sender(&src, &dst, r));
                    }
                }
                start.elapsed()
            })
        });
    }
    group.finish();

    // Construction must be communication-free: build inside a world and
    // verify zero messages were sent.
    let (_, stats) = mxn_runtime::World::run_with_stats(4, |proc| {
        let (src, dst) = layouts(4);
        std::hint::black_box(RegionSchedule::for_sender(&src, &dst, proc.rank()));
        std::hint::black_box(RegionSchedule::for_receiver(&src, &dst, proc.rank()));
    });
    assert_eq!(stats.total_messages(), 0, "schedule construction is communication-free");
    println!(
        "\n--- E14: schedule construction sent {} messages (expected 0) ---",
        stats.total_messages()
    );
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
