//! Experiment E9 — 2N hub converters vs N² pairwise converters (§2.2.2).
//!
//! The DAD-as-intermediate-representation argument: with N distributed-
//! array packages, conversion through the DAD needs 2N converters instead
//! of N², "but the use of adapters might have serious consequences for
//! performance" — the hub pays two passes where a fused pairwise converter
//! pays one. This bench measures both sides of the trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::criterion_config;
use mxn_dad::{ConvertStrategy, ConverterRegistry, SyntheticPackage};

const LEN: usize = 64 * 1024;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_converter_hub");
    let canonical: Vec<f64> = (0..LEN).map(|i| i as f64).collect();

    for n in [3usize, 6] {
        let native0 = SyntheticPackage { id: 0 }.from_canonical(&canonical);
        group.bench_with_input(BenchmarkId::new("hub_2n", n), &n, |b, &n| {
            let mut reg = ConverterRegistry::new(n, ConvertStrategy::Hub);
            let mut dst = 1;
            b.iter(|| {
                let out = reg.convert(0, dst, &native0);
                dst = dst % (n - 1) + 1;
                std::hint::black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("direct_nsq", n), &n, |b, &n| {
            let mut reg = ConverterRegistry::new(n, ConvertStrategy::Direct);
            // Warm the composed-permutation cache (the converter itself).
            for d in 1..n {
                reg.convert(0, d, &native0);
            }
            let mut dst = 1;
            b.iter(|| {
                let out = reg.convert(0, dst, &native0);
                dst = dst % (n - 1) + 1;
                std::hint::black_box(out)
            })
        });
        // Direct including its converter-construction cost (first use).
        group.bench_with_input(BenchmarkId::new("direct_cold", n), &n, |b, &n| {
            b.iter(|| {
                let mut reg = ConverterRegistry::new(n, ConvertStrategy::Direct);
                std::hint::black_box(reg.convert(0, 1, &native0))
            })
        });
    }
    group.finish();

    println!("\n--- E9 converter counts (the paper's scaling argument) ---");
    println!("{:>4} {:>8} {:>8}", "N", "hub=2N", "direct=N(N-1)");
    for n in [2usize, 4, 8, 16] {
        let hub = ConverterRegistry::new(n, ConvertStrategy::Hub).converter_count();
        let direct = ConverterRegistry::new(n, ConvertStrategy::Direct).converter_count();
        println!("{n:>4} {hub:>8} {direct:>8}");
    }
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
