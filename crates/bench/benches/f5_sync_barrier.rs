//! Experiment F5 — Figure 5: the cost of barrier-delayed delivery.
//!
//! The barrier before PRMI delivery removes the Figure 5 deadlock (see the
//! `prmi_deadlock` example and the `prmi_semantics` integration tests);
//! this bench measures what that safety costs per collective call, for
//! full-set and subset participation, across caller counts.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, time_universe};
use mxn_framework::{AnyPayload, Dispatch, RemoteService};
use mxn_prmi::{subset_call, subset_serve, subset_shutdown, DeliveryPolicy};

struct Echo;
impl RemoteService for Echo {
    fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
        let v: f64 = arg.downcast().unwrap();
        AnyPayload::replicable(v).into()
    }
}

fn run(callers: usize, policy: DeliveryPolicy, iters: u64) -> Duration {
    time_universe(&[callers, 1], |ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let ranks: Vec<usize> = (0..callers).collect();
            let start = Instant::now();
            for _ in 0..iters {
                let _: f64 = subset_call(&ctx.comm, ic, &ranks, 0, 1, 1.0f64, policy).unwrap();
            }
            let d = start.elapsed();
            if ctx.comm.rank() == 0 {
                subset_shutdown(ic, 0).unwrap();
            }
            d
        } else {
            subset_serve(ctx.intercomm(0), &Echo, Duration::from_secs(30)).unwrap();
            Duration::ZERO
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_sync_barrier");
    for callers in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("eager_delivery", callers), &callers, |b, &m| {
            b.iter_custom(|iters| run(m, DeliveryPolicy::eager(), iters))
        });
        group.bench_with_input(BenchmarkId::new("barrier_delayed", callers), &callers, |b, &m| {
            b.iter_custom(|iters| run(m, DeliveryPolicy::safe(), iters))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
