//! Experiment E11 — MCT interpolation as parallel sparse matrix–vector
//! multiplication "in a multi-field, cache-friendly fashion" (§4.5).
//!
//! A bilinear-style 2:1 conservative remap (4608 → 2304 points) applied to
//! attribute vectors with 1–8 fields, on 2 ranks. The cache-friendliness
//! claim is tested directly: one multi-field apply (gathers x once, streams
//! field-major) vs applying the matrix to each field separately.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, time_universe};
use mxn_mct::{AttrVect, GlobalSegMap, SparseElem, SparseMatrix, SparseMatrixPlus};

const SRC_N: usize = 4608;
const DST_N: usize = 2304;
const RANKS: usize = 2;

fn setup(me: usize) -> (GlobalSegMap, GlobalSegMap, SparseMatrix) {
    let src_map = GlobalSegMap::block(SRC_N, RANKS);
    let dst_map = GlobalSegMap::block(DST_N, RANKS);
    let mut elems = Vec::new();
    for s in dst_map.rank_segments(me) {
        for r in s.start..s.start + s.length {
            elems.push(SparseElem { row: r, col: 2 * r, weight: 0.5 });
            elems.push(SparseElem { row: r, col: 2 * r + 1, weight: 0.5 });
        }
    }
    let a = SparseMatrix::new(DST_N, SRC_N, elems).unwrap();
    (src_map, dst_map, a)
}

fn fields(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("f{i}")).collect()
}

/// Multi-field apply: one schedule execution moves all fields.
fn run_multifield(nfields: usize, iters: u64) -> std::time::Duration {
    time_universe(&[RANKS, 1], |ctx| {
        if ctx.program != 0 {
            return std::time::Duration::ZERO;
        }
        let comm = &ctx.comm;
        let me = comm.rank();
        let (src_map, dst_map, a) = setup(me);
        let plus = SparseMatrixPlus::build(comm, &a, &src_map, &dst_map).unwrap();
        let names = fields(nfields);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut x = AttrVect::new(&name_refs, &[], src_map.lsize(me));
        for f in 0..nfields {
            for (l, v) in x.real_at_mut(f).iter_mut().enumerate() {
                *v = (l * (f + 1)) as f64;
            }
        }
        let mut y = AttrVect::new(&name_refs, &[], dst_map.lsize(me));
        let start = Instant::now();
        for i in 0..iters {
            plus.apply(comm, &x, &mut y, (i & 0x3ff) as i32).unwrap();
        }
        start.elapsed()
    })
}

/// Field-at-a-time: n separate single-field applies (n gathers, n sweeps).
fn run_field_at_a_time(nfields: usize, iters: u64) -> std::time::Duration {
    time_universe(&[RANKS, 1], |ctx| {
        if ctx.program != 0 {
            return std::time::Duration::ZERO;
        }
        let comm = &ctx.comm;
        let me = comm.rank();
        let (src_map, dst_map, a) = setup(me);
        let plus = SparseMatrixPlus::build(comm, &a, &src_map, &dst_map).unwrap();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for f in 0..nfields {
            let mut x = AttrVect::new(&["f"], &[], src_map.lsize(me));
            for (l, v) in x.real_at_mut(0).iter_mut().enumerate() {
                *v = (l * (f + 1)) as f64;
            }
            xs.push(x);
            ys.push(AttrVect::new(&["f"], &[], dst_map.lsize(me)));
        }
        let start = Instant::now();
        for i in 0..iters {
            for f in 0..nfields {
                plus.apply(comm, &xs[f], &mut ys[f], ((i as usize * nfields + f) & 0x3ff) as i32)
                    .unwrap();
            }
        }
        start.elapsed()
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_mct_interp");
    for nfields in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("multifield_apply", nfields), &nfields, |b, &n| {
            b.iter_custom(|iters| run_multifield(n, iters))
        });
        if nfields > 1 {
            group.bench_with_input(
                BenchmarkId::new("field_at_a_time", nfields),
                &nfields,
                |b, &n| b.iter_custom(|iters| run_field_at_a_time(n, iters)),
            );
        }
    }
    group.finish();

    println!(
        "\n--- E11: {SRC_N}→{DST_N} conservative remap; multi-field shares one gather \
         and streams field-major (the MCT cache-friendliness claim) ---"
    );
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
