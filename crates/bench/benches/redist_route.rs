//! E23 — peak-memory-bounded redistribution routes (`BENCH_redist.json`).
//!
//! The scenario the planner exists for: a 256-rank M×N coupling moving a
//! field whose shards are too big to double-buffer. The direct eager path
//! needs every incoming byte resident alongside the destination shard
//! (≈ 2× shard per rank); the chunked collective route fences transfers
//! into acknowledged rounds and must stay under a declared per-rank byte
//! budget of 1.25× shard.
//!
//! Cells:
//!   * `direct` / `budgeted` — the 128×128-program transfer with a stalled
//!     receiver (the worst case for eager sends). Per-rank measured peak =
//!     resident shard bytes + mailbox high-water mark + pooled transfer
//!     buffer high-water mark, maximised over all 256 ranks.
//!   * planner sanity — small halo-sized exchanges and memory-rich ranks
//!     must still plan `Direct`; the big field under budget must plan
//!     `Chunked` with a declared peak within the budget.
//!   * traced run — exports `RoutePlan`/`RouteStep` spans as a Chrome
//!     trace (`target/redist_route_trace.json`, "schedule" category).
//!
//! With `MXN_ENFORCE_REDIST_BASELINE` set, the measured peaks are enforced
//! (budgeted ≤ budget, direct ≥ 1.9× shard) and compared against the
//! committed `BENCH_redist.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use mxn_bench::{criterion_config, field_value, fmt_bytes};
use mxn_dad::{Dad, Extents, LocalArray};
use mxn_runtime::{reset_schedule_stats, schedule_stats, Universe, World};
use mxn_schedule::{
    recv_redistributed, recv_redistributed_budgeted, redistribute_within_budgeted,
    send_redistributed, send_redistributed_budgeted, RouteKind, RoutePlanner,
};
use mxn_trace::EventId;

/// 128 producer programs + 128 consumer programs = 256 ranks.
const SRC_PROGS: usize = 128;
const DST_PROGS: usize = 128;
/// 1024×1024 f64 field: 8 MiB total, 64 KiB per shard on both sides.
const ROWS: usize = 1024;
const COLS: usize = 1024;
const SHARD_BYTES: u64 = (ROWS * COLS / SRC_PROGS * 8) as u64;
/// The acceptance budget: 1.25× the local shard.
const BUDGET_BYTES: u64 = SHARD_BYTES + SHARD_BYTES / 4;
/// How long consumers sit on their hands before draining — the window in
/// which eager sends pile up in the mailbox.
const STALL: Duration = Duration::from_millis(30);

fn field_dads() -> (Dad, Dad) {
    let e = Extents::new([ROWS, COLS]);
    // Row bands on the producer side, coarser row × column blocks on the
    // consumer side: every producer band feeds two consumer blocks.
    let src = Dad::block(e.clone(), &[SRC_PROGS, 1]).unwrap();
    let dst = Dad::block(e, &[DST_PROGS / 2, 2]).unwrap();
    (src, dst)
}

fn shard_bytes(dad: &Dad, rank: usize) -> u64 {
    dad.patches(rank).iter().map(|r| r.len() as u64 * 8).sum()
}

/// Runs the 256-rank transfer once and returns the worst per-rank measured
/// peak (resident shard + mailbox high-water + pooled-buffer high-water)
/// plus the slowest receiver's transfer wall time.
fn measure_transfer(budget: Option<u64>) -> (u64, Duration) {
    let results = Universe::run(&[SRC_PROGS, DST_PROGS], |_, ctx| {
        let (src, dst) = field_dads();
        if ctx.program == 0 {
            let rank = ctx.comm.rank();
            let local = LocalArray::from_fn(&src, rank, field_value);
            let ic = ctx.intercomm(1);
            ic.reset_mailbox_peak();
            reset_schedule_stats();
            match budget {
                Some(b) => send_redistributed_budgeted(ic, &src, &dst, &local, 0, b).unwrap(),
                None => send_redistributed(ic, &src, &dst, &local, 0).unwrap(),
            };
            let (_, mailbox_peak) = ic.mailbox_bytes();
            let pool_peak = schedule_stats().transfer_peak_bytes;
            (shard_bytes(&src, rank) + mailbox_peak + pool_peak, Duration::ZERO)
        } else {
            let rank = ctx.comm.rank();
            let ic = ctx.intercomm(0);
            ic.reset_mailbox_peak();
            reset_schedule_stats();
            // A consumer that is busy elsewhere: eager traffic lands in
            // the mailbox while nobody drains it.
            std::thread::sleep(STALL);
            let start = Instant::now();
            let got: LocalArray<f64> = match budget {
                Some(b) => recv_redistributed_budgeted(ic, &src, &dst, 0, b).unwrap(),
                None => recv_redistributed(ic, &src, &dst, 0).unwrap(),
            };
            let elapsed = start.elapsed();
            let (_, mailbox_peak) = ic.mailbox_bytes();
            let pool_peak = schedule_stats().transfer_peak_bytes;
            for (idx, &v) in got.iter().take(3) {
                assert_eq!(v, field_value(&idx), "transfer corrupted at {idx:?}");
            }
            (shard_bytes(&dst, rank) + mailbox_peak + pool_peak, elapsed)
        }
    });
    let peak = results.iter().map(|&(p, _)| p).max().unwrap();
    let elapsed = results.iter().map(|&(_, t)| t).max().unwrap();
    (peak, elapsed)
}

fn committed_baseline(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"budgeted_peak_bytes\": ";
    let at = text.find(key)? + key.len();
    text[at..].split(|c: char| !c.is_ascii_digit()).next()?.parse().ok()
}

fn bench(c: &mut Criterion) {
    // Criterion smoke cell: a small budget-routed within-world exchange.
    let mut group = c.benchmark_group("redist_route");
    group.bench_function("budgeted_within_p4", |b| {
        b.iter(|| {
            World::run(4, |proc| {
                let comm = proc.world();
                let e = Extents::new([32, 32]);
                let src = Dad::block(e.clone(), &[4, 1]).unwrap();
                let dst = Dad::block(e, &[1, 4]).unwrap();
                let local = LocalArray::from_fn(&src, comm.rank(), field_value);
                let out = redistribute_within_budgeted(comm, &src, &dst, &local, 0, 2048).unwrap();
                std::hint::black_box(out);
            });
        });
    });
    group.finish();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_redist.json");
    let enforce = std::env::var_os("MXN_ENFORCE_REDIST_BASELINE").is_some();
    let baseline = committed_baseline(path);

    // --- planner sanity: small transfers stay on the direct path -------
    let planner = RoutePlanner::default();
    let (src, dst) = field_dads();
    let halo = {
        let e = Extents::new([64, 64]);
        let hsrc = Dad::block(e.clone(), &[2, 1]).unwrap();
        let hdst = Dad::block(e, &[1, 2]).unwrap();
        planner.plan_for(&hsrc, &hdst, 8, u64::MAX, false)
    };
    assert_eq!(halo.kind, RouteKind::Direct, "halo-sized transfers must not be chunked");
    let rich = planner.plan_for(&src, &dst, 8, u64::MAX, false);
    assert_eq!(rich.kind, RouteKind::Direct, "memory-rich ranks must keep the fast path");
    let routed = planner.plan_for(&src, &dst, 8, BUDGET_BYTES, false);
    assert_eq!(routed.kind, RouteKind::Chunked, "big field under budget must chunk");
    assert!(routed.fits, "declared peak {} must fit budget {}", routed.peak_bytes, BUDGET_BYTES);

    // --- measured peaks at 256 ranks -----------------------------------
    let (direct_peak, direct_time) = measure_transfer(None);
    let (budgeted_peak, budgeted_time) = measure_transfer(Some(BUDGET_BYTES));
    let direct_over = direct_peak as f64 / SHARD_BYTES as f64;
    let budgeted_over = budgeted_peak as f64 / SHARD_BYTES as f64;

    println!(
        "redist_route: {} ranks, shard {}, budget {}",
        SRC_PROGS + DST_PROGS,
        fmt_bytes(SHARD_BYTES as usize),
        fmt_bytes(BUDGET_BYTES as usize),
    );
    println!(
        "  direct   peak {} ({direct_over:.2}x shard) in {direct_time:?}",
        fmt_bytes(direct_peak as usize),
    );
    println!(
        "  budgeted peak {} ({budgeted_over:.2}x shard) in {budgeted_time:?} \
         [{:?}, chunk {} elems, {} rounds, declared {}]",
        fmt_bytes(budgeted_peak as usize),
        routed.kind,
        routed.chunk_elems(),
        routed.rounds(),
        fmt_bytes(routed.peak_bytes as usize),
    );

    if enforce {
        assert!(
            budgeted_peak <= BUDGET_BYTES,
            "budgeted route peak {budgeted_peak} exceeds the declared budget {BUDGET_BYTES}"
        );
        assert!(
            direct_peak >= SHARD_BYTES * 19 / 10,
            "direct path no longer needs ~2x shard ({direct_peak} vs shard {SHARD_BYTES}) — \
             the bench scenario has stopped stressing memory"
        );
        if let Some(committed) = baseline {
            assert!(
                budgeted_peak <= committed + committed / 10,
                "budgeted peak regressed: {budgeted_peak} > committed {committed} + 10%"
            );
        }
    }

    // --- traced run: route decisions land in the Chrome trace ----------
    let (_, trace) = Universe::run_traced(&[2, 3], |_, ctx| {
        let e = Extents::new([48, 48]);
        let src = Dad::block(e.clone(), &[2, 1]).unwrap();
        let dst = Dad::block(e, &[3, 1]).unwrap();
        if ctx.program == 0 {
            let local = LocalArray::from_fn(&src, ctx.comm.rank(), field_value);
            send_redistributed_budgeted(ctx.intercomm(1), &src, &dst, &local, 0, 4096).unwrap();
        } else {
            let _: LocalArray<f64> =
                recv_redistributed_budgeted(ctx.intercomm(0), &src, &dst, 0, 4096).unwrap();
        }
    });
    let agg = trace.aggregate();
    assert!(agg.count(EventId::RoutePlan) > 0, "route planning must be traced");
    assert!(agg.count(EventId::RouteStep) > 0, "route rounds must be traced");
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/redist_route_trace.json");
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")).ok();
    std::fs::write(trace_path, trace.chrome_json()).expect("write route trace");
    println!("wrote {trace_path}");

    let json = format!(
        "{{\n  \"bench\": \"redist_route\",\n  \"ranks\": {},\n  \"field_bytes\": {},\n  \
         \"shard_bytes\": {},\n  \"budget_bytes\": {},\n  \"route_kind\": \"{:?}\",\n  \
         \"chunk_elems\": {},\n  \"rounds\": {},\n  \"declared_peak_bytes\": {},\n  \
         \"direct_peak_bytes\": {},\n  \"budgeted_peak_bytes\": {},\n  \
         \"direct_over_shard\": \"{:.2}\",\n  \"budgeted_over_shard\": \"{:.2}\",\n  \
         \"direct_ms\": \"{:.1}\",\n  \"budgeted_ms\": \"{:.1}\",\n  \
         \"small_plan_kind\": \"{:?}\"\n}}\n",
        SRC_PROGS + DST_PROGS,
        ROWS * COLS * 8,
        SHARD_BYTES,
        BUDGET_BYTES,
        routed.kind,
        routed.chunk_elems(),
        routed.rounds(),
        routed.peak_bytes,
        direct_peak,
        budgeted_peak,
        direct_over,
        budgeted_over,
        direct_time.as_secs_f64() * 1e3,
        budgeted_time.as_secs_f64() * 1e3,
        halo.kind,
    );
    std::fs::write(path, json).expect("write BENCH_redist.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
