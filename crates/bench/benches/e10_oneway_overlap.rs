//! Experiment E10 — one-way methods overlap communication with the
//! caller's own computation.
//!
//! "In one-way methods the calling component continues execution
//! immediately, without waiting for the remote invocation to complete"
//! (§2.4). The workload: k pipeline stages, each = one remote call (2 ms
//! service) plus 2 ms of caller-side compute. Blocking calls serialize the
//! two (≈ k·4 ms); one-way calls overlap them (≈ k·2 ms + a final flush).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::time_universe;
use mxn_framework::{AnyPayload, Dispatch, RemoteService};
use mxn_prmi::{collective_serve, CollectiveEndpoint};

const SERVICE: Duration = Duration::from_millis(2);
const COMPUTE: Duration = Duration::from_millis(2);
const STAGES: usize = 6;

struct SlowService;
impl RemoteService for SlowService {
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
        if method != 9 {
            std::thread::sleep(SERVICE);
        }
        let v: f64 = arg.downcast().unwrap();
        AnyPayload::replicable(v).into()
    }
}

/// One measured session: k stages of (remote call + local compute), ending
/// with a cheap two-way "flush" call so the session includes the provider
/// finishing (FIFO guarantees it ran everything first).
fn run(oneway: bool, iters: u64) -> Duration {
    time_universe(&[1, 1], |ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ep = CollectiveEndpoint::new();
            let start = Instant::now();
            for _ in 0..iters {
                for _ in 0..STAGES {
                    if oneway {
                        ep.call_oneway(ic, 1, 1.0f64).unwrap();
                    } else {
                        let _: f64 = ep.call(ic, 1, 1.0f64).unwrap();
                    }
                    // The caller's own computation for this stage.
                    std::thread::sleep(COMPUTE);
                }
                // Flush: method 9 has no service time; its response proves
                // all earlier one-way work completed.
                let _: f64 = ep.call(ic, 9, 0.0f64).unwrap();
            }
            let d = start.elapsed();
            ep.shutdown(ic).unwrap();
            d
        } else {
            collective_serve(ctx.intercomm(0), &SlowService).unwrap();
            Duration::ZERO
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_oneway_overlap");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_with_input(BenchmarkId::new("blocking_pipeline", STAGES), &(), |b, _| {
        b.iter_custom(|iters| run(false, iters))
    });
    group.bench_with_input(BenchmarkId::new("oneway_pipeline", STAGES), &(), |b, _| {
        b.iter_custom(|iters| run(true, iters))
    });
    group.finish();

    println!(
        "\n--- E10: {STAGES} stages × ({:?} service + {:?} compute); blocking ≈ {:?}, \
         one-way ≈ {:?} (overlapped) ---",
        SERVICE,
        COMPUTE,
        (SERVICE + COMPUTE) * STAGES as u32,
        COMPUTE * STAGES as u32
    );
}

criterion_group! {
    name = benches;
    config = mxn_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
