//! Experiment F1 — Figure 1: the M×N redistribution itself.
//!
//! Reproduces the paper's headline scenario (8 senders → 27 receivers in
//! 3-D) and sweeps (M, N) shapes, measuring per-transfer time with cached
//! schedules and reporting the message counts a cluster would see.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, field_value, time_universe};
use mxn_dad::{Dad, Extents, LocalArray};
use mxn_schedule::RegionSchedule;

/// Times `iters` cached-schedule transfers between an m-grid and n-grid.
fn run_transfer(m_grid: &[usize], n_grid: &[usize], extents: &Extents, iters: u64) -> Duration {
    let m: usize = m_grid.iter().product();
    let n: usize = n_grid.iter().product();
    let src = Dad::block(extents.clone(), m_grid).unwrap();
    let dst = Dad::block(extents.clone(), n_grid).unwrap();
    time_universe(&[m, n], |ctx| {
        if ctx.program == 0 {
            let rank = ctx.comm.rank();
            let ic = ctx.intercomm(1);
            let sched = RegionSchedule::for_sender(&src, &dst, rank);
            let local = LocalArray::from_fn(&src, rank, field_value);
            let start = Instant::now();
            for i in 0..iters {
                sched.execute_send(ic, &local, i as i32 & 0xfff).unwrap();
            }
            start.elapsed()
        } else {
            let rank = ctx.comm.rank();
            let ic = ctx.intercomm(0);
            let sched = RegionSchedule::for_receiver(&src, &dst, rank);
            let mut local: LocalArray<f64> = LocalArray::allocate(&dst, rank);
            let start = Instant::now();
            for i in 0..iters {
                sched.execute_recv(ic, &mut local, i as i32 & 0xfff).unwrap();
            }
            start.elapsed()
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_mxn_redistribution");

    // The exact Figure 1 shape: M = 8 (2×2×2) → N = 27 (3×3×3), 3-D field.
    let fig1 = Extents::new([24, 24, 24]);
    group.bench_function("figure1_8_to_27_3d_24cubed", |b| {
        b.iter_custom(|iters| run_transfer(&[2, 2, 2], &[3, 3, 3], &fig1, iters))
    });

    // 2-D sweep over M×N shapes at a fixed 256×256 field.
    let e2 = Extents::new([256, 256]);
    for (m_grid, n_grid) in [
        (vec![1, 1], vec![1, 3]),
        (vec![2, 1], vec![1, 3]),
        (vec![4, 1], vec![3, 3]),
        (vec![4, 2], vec![3, 3]),
    ] {
        let m: usize = m_grid.iter().product();
        let n: usize = n_grid.iter().product();
        group.bench_with_input(
            BenchmarkId::new("sweep_256x256", format!("{m}x{n}")),
            &(m_grid, n_grid),
            |b, (mg, ng)| b.iter_custom(|iters| run_transfer(mg, ng, &e2, iters)),
        );
    }
    group.finish();

    // Report the communication structure (the "who talks to whom" table).
    println!("\n--- F1 message structure (per transfer) ---");
    for (m_grid, n_grid, label) in
        [(vec![2, 2, 2], vec![3, 3, 3], "figure1 8→27"), (vec![4, 2], vec![3, 3], "8→9 2-D")]
    {
        let extents =
            if m_grid.len() == 3 { Extents::new([24, 24, 24]) } else { Extents::new([256, 256]) };
        let src = Dad::block(extents.clone(), &m_grid).unwrap();
        let dst = Dad::block(extents, &n_grid).unwrap();
        let msgs: usize = (0..src.nranks())
            .map(|r| RegionSchedule::for_sender(&src, &dst, r).num_messages())
            .sum();
        let elems: usize = (0..src.nranks())
            .map(|r| RegionSchedule::for_sender(&src, &dst, r).total_elements())
            .sum();
        println!("{label}: {msgs} pairwise messages, {elems} elements moved");
    }
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
