//! Transport comparison: the in-proc shared-memory path vs the UDS wire
//! path vs the synthetic [`NetworkModel`]'s prediction.
//!
//! The paper's premise is that component coupling must survive the move
//! from one address space to many. This bench quantifies what that move
//! costs here: one-way message time and effective bandwidth for the same
//! payload sizes over (a) the in-proc mailbox transport — pointer moves,
//! no serialization — and (b) the `mxn-wire` UDS transport — codec +
//! framing + CRC + a real kernel socket.
//!
//! E17 validation: from the UDS measurements we fit a
//! `NetworkModel { latency, bytes_per_sec }` on the smallest and largest
//! payloads, then check how well `latency + bytes/bandwidth` predicts the
//! *unfitted* mid-size points — the model the in-proc runtime uses to
//! emulate cluster timing is tested against an actual wire.
//!
//! Zombie detection: the wire's progress-fence plane is timed against a
//! simulated frozen peer (a raw listener whose backlog accepts but whose
//! "application" never reads or speaks — the situation heartbeats alone
//! can never convict). Measured: outstanding-data send → quarantine, and
//! send → eviction, for the default and a fast fence tuning.
//!
//! Results are written to `BENCH_transport.json` at the repo root.

use std::os::unix::net::UnixListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use mxn_bench::criterion_config;
use mxn_runtime::envelope::{Envelope, Payload, Src, Tag};
use mxn_runtime::mailbox::{Mailbox, PeerRef};
use mxn_runtime::{Liveness, NetworkModel, Revocations};
use mxn_wire::{CodecRegistry, WireConfig, WireNode};

const SIZES: [usize; 4] = [64, 4096, 65536, 1 << 20];

fn iters_for(bytes: usize) -> u64 {
    match bytes {
        0..=4096 => 2000,
        4097..=65536 => 400,
        _ => 48,
    }
}

/// One measured cell.
struct Cell {
    transport: &'static str,
    bytes: usize,
    oneway_ns: f64,
    mb_per_s: f64,
}

impl Cell {
    fn json(&self) -> String {
        format!(
            "    {{\"transport\": \"{}\", \"bytes\": {}, \"oneway_ns\": {:.0}, \"mb_per_s\": {:.1}}}",
            self.transport, self.bytes, self.oneway_ns, self.mb_per_s
        )
    }
}

fn cell(transport: &'static str, bytes: usize, oneway: Duration, iters: u64) -> Cell {
    let oneway_ns = oneway.as_nanos() as f64 / iters as f64;
    Cell { transport, bytes, oneway_ns, mb_per_s: bytes as f64 / (oneway_ns / 1e9) / 1e6 }
}

/// In-proc: ping-pong through two runtime mailboxes from two threads,
/// owned `Vec<u8>` payloads — the exact representation `Comm::send` moves.
fn measure_inproc(bytes: usize, iters: u64) -> Duration {
    let abort = Arc::new(AtomicBool::new(false));
    let liveness = Arc::new(Liveness::new(2));
    let revocations = Arc::new(Revocations::default());
    let a = Arc::new(Mailbox::new(abort.clone(), liveness.clone(), revocations.clone()));
    let b = Arc::new(Mailbox::new(abort, liveness, revocations));
    let peers0 = [PeerRef { global: 0, local: 0 }];
    let peers1 = [PeerRef { global: 1, local: 1 }];
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let echo = std::thread::spawn(move || {
        for _ in 0..iters {
            let env = b2.take(1, Src::Rank(0), Tag::Value(1), &peers0).unwrap();
            let (v, _) = env.payload.into_owned::<Vec<u8>>().ok().unwrap();
            a2.push(Envelope::new(1, 1, 1, 2, v.len(), None, Payload::owned(v)));
        }
    });
    let start = Instant::now();
    let mut ball = vec![7u8; bytes];
    for _ in 0..iters {
        let n = ball.len();
        b.push(Envelope::new(0, 0, 1, 1, n, None, Payload::owned(ball)));
        let env = a.take(1, Src::Rank(1), Tag::Value(2), &peers1).unwrap();
        ball = env.payload.into_owned::<Vec<u8>>().ok().unwrap().0;
    }
    let elapsed = start.elapsed();
    echo.join().unwrap();
    elapsed / 2
}

/// UDS: the same ping-pong between two wire nodes — codec, framing, CRC,
/// kernel socket, reader thread, mailbox.
fn measure_uds(nodes: &[WireNode], bytes: usize, iters: u64) -> Duration {
    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..iters {
                let v: Vec<u8> = nodes[1].recv(0, 1, 1).unwrap();
                nodes[1].send(0, 1, 2, v).unwrap();
            }
        });
        let start = Instant::now();
        let ball = vec![7u8; bytes];
        for _ in 0..iters {
            nodes[0].send(1, 1, 1, ball.clone()).unwrap();
            let _: Vec<u8> = nodes[0].recv(1, 1, 2).unwrap();
        }
        start.elapsed() / 2
    })
}

/// Times the conviction of a simulated zombie under one fence tuning:
/// rank 0 is a bound listener that never accepts or speaks (its kernel
/// backlog still takes every dial — exactly a SIGSTOP'd process), rank 1
/// sends one message and waits for the watermark stall to quarantine and
/// the grace expiry to evict. Returns (quarantine, evict) from the send.
fn measure_zombie(fence_ms: u64, stall: u32, grace_ms: u64) -> (Duration, Duration) {
    let dir = std::env::temp_dir()
        .join(format!("mxn-bench-zombie-{}-{fence_ms}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let _zombie = UnixListener::bind(dir.join("rank_0.sock")).unwrap();
    let mut cfg = WireConfig::new(&dir, 1, 2);
    cfg.fence_interval = Duration::from_millis(fence_ms);
    cfg.fence_stall_fences = stall;
    cfg.quarantine_grace = Duration::from_millis(grace_ms);
    let node = WireNode::start(cfg, CodecRegistry::with_defaults()).unwrap();
    node.connect().unwrap();
    let start = Instant::now();
    node.send(0, 1, 1, 7u64).unwrap();
    assert!(node.await_quarantine(0, Duration::from_secs(10)), "zombie never quarantined");
    let quarantine = start.elapsed();
    while !node.is_evicted(0) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let evict = start.elapsed();
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (quarantine, evict)
}

fn bench(_c: &mut Criterion) {
    let mut cells: Vec<Cell> = Vec::new();

    for &bytes in &SIZES {
        let iters = iters_for(bytes);
        // Warm-up + measure.
        measure_inproc(bytes, iters / 4 + 1);
        let t = measure_inproc(bytes, iters);
        let c = cell("inproc", bytes, t, iters);
        println!(
            "inproc  {:>8} B: {:>10.0} ns one-way, {:>9.1} MB/s",
            bytes, c.oneway_ns, c.mb_per_s
        );
        cells.push(c);
    }

    let dir = std::env::temp_dir().join(format!("mxn-bench-transport-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nodes: Vec<WireNode> = (0..2)
        .map(|r| {
            WireNode::start(WireConfig::new(&dir, r, 2), CodecRegistry::with_defaults()).unwrap()
        })
        .collect();
    std::thread::scope(|s| {
        for node in &nodes {
            s.spawn(move || node.connect().unwrap());
        }
    });
    for &bytes in &SIZES {
        let iters = iters_for(bytes);
        measure_uds(&nodes, bytes, iters / 4 + 1);
        let t = measure_uds(&nodes, bytes, iters);
        let c = cell("uds", bytes, t, iters);
        println!(
            "uds     {:>8} B: {:>10.0} ns one-way, {:>9.1} MB/s",
            bytes, c.oneway_ns, c.mb_per_s
        );
        cells.push(c);
    }
    for node in nodes {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);

    // E17 validation: fit NetworkModel on the UDS endpoints (64 B for
    // latency, 1 MiB for bandwidth), predict the unfitted middle sizes.
    let uds = |b: usize| cells.iter().find(|c| c.transport == "uds" && c.bytes == b).unwrap();
    let latency = Duration::from_nanos(uds(64).oneway_ns as u64);
    let big = uds(1 << 20);
    let transfer_ns = (big.oneway_ns - latency.as_nanos() as f64).max(1.0);
    let bytes_per_sec = (1u64 << 20) as f64 / (transfer_ns / 1e9);
    let model = NetworkModel { latency, bytes_per_sec };
    let mut predictions = Vec::new();
    for &bytes in &[4096usize, 65536] {
        let predicted_ns = model.delay(bytes).as_nanos() as f64;
        let measured_ns = uds(bytes).oneway_ns;
        let rel_error = (predicted_ns - measured_ns).abs() / measured_ns;
        println!(
            "model   {:>8} B: predicted {:>10.0} ns, measured {:>10.0} ns ({:>5.1}% off)",
            bytes,
            predicted_ns,
            measured_ns,
            rel_error * 100.0
        );
        predictions.push(format!(
            "    {{\"bytes\": {bytes}, \"predicted_ns\": {predicted_ns:.0}, \"measured_ns\": {measured_ns:.0}, \"rel_error\": {rel_error:.3}}}"
        ));
    }

    // Zombie conviction latency: default fence tuning and a fast one.
    // 3 samples each; the numbers are wall-clock from the outstanding
    // send, so ≈ stall·interval for quarantine and + grace for eviction.
    let mut zombie_rows = Vec::new();
    for &(fence_ms, stall, grace_ms) in &[(25u64, 4u32, 1500u64), (10, 3, 300)] {
        let samples = 3;
        let (mut q_total, mut e_total) = (Duration::ZERO, Duration::ZERO);
        for _ in 0..samples {
            let (q, e) = measure_zombie(fence_ms, stall, grace_ms);
            q_total += q;
            e_total += e;
        }
        let q_ms = q_total.as_secs_f64() * 1e3 / samples as f64;
        let e_ms = e_total.as_secs_f64() * 1e3 / samples as f64;
        println!(
            "zombie  fence {fence_ms:>3} ms × {stall}, grace {grace_ms:>5} ms: \
             quarantine {q_ms:>7.1} ms, evict {e_ms:>7.1} ms"
        );
        zombie_rows.push(format!(
            "    {{\"fence_interval_ms\": {fence_ms}, \"stall_fences\": {stall}, \
             \"grace_ms\": {grace_ms}, \"quarantine_ms\": {q_ms:.1}, \"evict_ms\": {e_ms:.1}}}"
        ));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    let json = format!(
        "{{\n  \"bench\": \"transport_compare\",\n  \"cells\": [\n{}\n  ],\n  \"network_model_fit\": {{\"latency_ns\": {}, \"bytes_per_sec\": {:.0}}},\n  \"e17_validation\": [\n{}\n  ],\n  \"zombie_detection\": [\n{}\n  ]\n}}\n",
        cells.iter().map(Cell::json).collect::<Vec<_>>().join(",\n"),
        latency.as_nanos(),
        bytes_per_sec,
        predictions.join(",\n"),
        zombie_rows.join(",\n"),
    );
    std::fs::write(path, json).expect("write BENCH_transport.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
