//! Experiment F2 — Figure 2: direct-connected vs distributed frameworks.
//!
//! "In direct-connected frameworks … a port invocation then looks like a
//! refined form of library call … in a distributed framework, port
//! invocations become a refined form of Remote Method Invocation."
//! This bench quantifies that taxonomy: per-call latency of
//!
//! * a direct-connected port dispatch (dynamic call through the port),
//! * a distributed two-way RMI between two programs,
//! * a distributed one-way RMI (no response).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use mxn_bench::{criterion_config, time_universe};
use mxn_framework::{
    serve, AnyPayload, Component, Dispatch, Framework, RemotePort, RemoteService,
    Result as FwResult, Services,
};

trait Compute: Send + Sync {
    fn compute(&self, x: f64) -> f64;
}

struct Doubler;
impl Compute for Doubler {
    fn compute(&self, x: f64) -> f64 {
        x * 2.0
    }
}

struct Provider;
impl Component for Provider {
    fn set_services(&mut self, s: &Services) -> FwResult<()> {
        let h: Arc<dyn Compute> = Arc::new(Doubler);
        s.add_provides_port("c", "bench.Compute", h)
    }
}

struct User {
    services: Option<Services>,
}
impl Component for User {
    fn set_services(&mut self, s: &Services) -> FwResult<()> {
        s.register_uses_port("c", "bench.Compute")?;
        self.services = Some(s.clone());
        Ok(())
    }
}

struct Echo;
impl RemoteService for Echo {
    fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
        let v: f64 = arg.downcast().unwrap();
        AnyPayload::new(v * 2.0).into()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_framework_dispatch");

    // Direct-connected: library-call dispatch through the port.
    let fw = Framework::new();
    fw.add_component("provider", &mut Provider).unwrap();
    let mut user = User { services: None };
    fw.add_component("user", &mut user).unwrap();
    fw.connect("user", "c", "provider", "c").unwrap();
    let port: Arc<dyn Compute> = user.services.unwrap().get_port("c").unwrap();
    group.bench_function("direct_port_call", |b| {
        b.iter(|| std::hint::black_box(port.compute(std::hint::black_box(21.0))))
    });

    // Direct, including the port lookup each call (the un-cached pattern).
    let fw2 = Framework::new();
    fw2.add_component("provider", &mut Provider).unwrap();
    let mut user2 = User { services: None };
    fw2.add_component("user", &mut user2).unwrap();
    fw2.connect("user", "c", "provider", "c").unwrap();
    let services = user2.services.unwrap();
    group.bench_function("direct_port_call_with_lookup", |b| {
        b.iter(|| {
            let p: Arc<dyn Compute> = services.get_port("c").unwrap();
            std::hint::black_box(p.compute(21.0))
        })
    });

    // Distributed: two-way RMI between two 1-rank programs.
    group.bench_function("distributed_rmi_call", |b| {
        b.iter_custom(|iters| {
            time_universe(&[1, 1], |ctx| {
                if ctx.program == 0 {
                    let ic = ctx.intercomm(1);
                    let port = RemotePort::to_rank(0);
                    let start = Instant::now();
                    for _ in 0..iters {
                        let _: f64 = port.call(ic, 0, 21.0f64).unwrap();
                    }
                    let d = start.elapsed();
                    port.shutdown(ic).unwrap();
                    d
                } else {
                    serve(ctx.intercomm(0), &Echo).unwrap();
                    Duration::ZERO
                }
            })
        })
    });

    // Distributed: one-way RMI (caller does not wait). Measures the
    // caller-visible cost only; the provider drains in parallel.
    group.bench_function("distributed_oneway_call", |b| {
        b.iter_custom(|iters| {
            time_universe(&[1, 1], |ctx| {
                if ctx.program == 0 {
                    let ic = ctx.intercomm(1);
                    let port = RemotePort::to_rank(0);
                    let start = Instant::now();
                    for _ in 0..iters {
                        port.call_oneway(ic, 0, 21.0f64).unwrap();
                    }
                    let d = start.elapsed();
                    port.shutdown(ic).unwrap();
                    d
                } else {
                    serve(ctx.intercomm(0), &Echo).unwrap();
                    Duration::ZERO
                }
            })
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
