//! Experiment E17 (extension) — cluster-shaped timing via the synthetic
//! network model.
//!
//! The thread-based runtime delivers messages instantly, so message
//! *counts* are reported but cost nothing. With the [`NetworkModel`]
//! (per-message latency + bandwidth), the structural advantages the paper
//! argues for become wall-clock effects on a single machine:
//!
//! * a redistribution's cost tracks its pairwise-message count × latency;
//! * the receiver-request protocol's extra request round now costs a full
//!   latency on top of every transfer (sharpening E7);
//! * schedule messages carry data only, so bandwidth, not chatter,
//!   bounds large transfers.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, field_value};
use mxn_dad::{Dad, Extents, LocalArray};
use mxn_linearize::{request_and_fill, serve_requests, ArrayOrder};
use mxn_runtime::{InterComm, NetworkModel, World};
use mxn_schedule::RegionSchedule;

const M: usize = 2;
const N: usize = 3;

fn dads() -> (Dad, Dad) {
    let e = Extents::new([96, 32]);
    (Dad::block(e.clone(), &[M, 1]).unwrap(), Dad::block(e, &[1, N]).unwrap())
}

/// Runs `iters` transfers under `model`, with the chosen mechanism, and
/// returns the receivers' elapsed time.
fn run(model: NetworkModel, use_schedule: bool, iters: u64) -> Duration {
    let (src, dst) = dads();
    let durations = World::run_with_network(M + N, model, |p| {
        let world = p.world();
        let side = usize::from(p.rank() >= M);
        let (local_comm, ic) = InterComm::create(world, side).unwrap();
        let rank = local_comm.rank();
        if side == 0 {
            let local = LocalArray::from_fn(&src, rank, field_value);
            let sched = RegionSchedule::for_sender(&src, &dst, rank);
            for i in 0..iters {
                if use_schedule {
                    sched.execute_send(&ic, &local, (i & 0xfff) as i32).unwrap();
                } else {
                    serve_requests(&ic, &src, ArrayOrder::RowMajor, &local).unwrap();
                }
            }
            Duration::ZERO
        } else {
            let mut local: LocalArray<f64> = LocalArray::allocate(&dst, rank);
            let sched = RegionSchedule::for_receiver(&src, &dst, rank);
            let start = Instant::now();
            for i in 0..iters {
                if use_schedule {
                    sched.execute_recv(&ic, &mut local, (i & 0xfff) as i32).unwrap();
                } else {
                    request_and_fill(&ic, &dst, ArrayOrder::RowMajor, &mut local).unwrap();
                }
            }
            start.elapsed()
        }
    });
    durations.into_iter().max().unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_network_model");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    for (label, latency_us) in [("lat_0us", 0u64), ("lat_50us", 50), ("lat_200us", 200)] {
        let model = NetworkModel::latency_only(Duration::from_micros(latency_us));
        group.bench_with_input(BenchmarkId::new("schedule_transfer", label), &model, |b, &m| {
            b.iter_custom(|iters| run(m, true, iters))
        });
        group.bench_with_input(
            BenchmarkId::new("receiver_request_transfer", label),
            &model,
            |b, &m| b.iter_custom(|iters| run(m, false, iters)),
        );
    }

    // Bandwidth-bound regime: 200 MB/s link, fixed 10 µs latency.
    let bw = NetworkModel { latency: Duration::from_micros(10), bytes_per_sec: 200e6 };
    group.bench_with_input(BenchmarkId::new("schedule_transfer", "bw_200MBs"), &bw, |b, &m| {
        b.iter_custom(|iters| run(m, true, iters))
    });
    group.finish();

    println!(
        "\n--- E17: under latency, per-transfer cost ≈ (message rounds) × latency; the \
         receiver-request protocol pays one extra round per transfer ---"
    );
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
