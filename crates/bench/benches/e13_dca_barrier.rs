//! Experiment E13 — the DCA delivery barrier's cost (§4.3).
//!
//! "A barrier synchronization [is] required to ensure that the order of
//! invocation is preserved when different but intersecting sets of
//! processes make consecutive port calls … In other invocation schemes
//! where all processes must participate, the barrier is not required."
//!
//! Measures per-invocation latency through the DCA stub layer for the
//! all-participate (uniform, no barrier) scheme vs the mixed scheme
//! (barrier on every call), across component sizes, plus the mixed scheme
//! alternating intersecting subsets — the workload the barrier exists for.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mxn_bench::{criterion_config, time_universe};
use mxn_dca::DcaPort;
use mxn_framework::{AnyPayload, Dispatch, RemoteService};
use mxn_prmi::subset_serve;

struct Echo;
impl RemoteService for Echo {
    fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
        let v: f64 = arg.downcast().unwrap();
        AnyPayload::replicable(v).into()
    }
}

fn run_full(callers: usize, uniform: bool, iters: u64) -> Duration {
    time_universe(&[callers, 1], |ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port =
                if uniform { DcaPort::uniform(0, callers) } else { DcaPort::new(0, callers) };
            let start = Instant::now();
            for _ in 0..iters {
                let _: f64 = port.invoke(ic, &ctx.comm, &ctx.comm, 1, 1.0f64).unwrap();
            }
            let d = start.elapsed();
            if ctx.comm.rank() == 0 {
                port.shutdown(ic).unwrap();
            }
            d
        } else {
            subset_serve(ctx.intercomm(0), &Echo, Duration::from_secs(60)).unwrap();
            Duration::ZERO
        }
    })
}

/// The mixed workload: calls alternate between the full set and a proper
/// subset — the exact shape whose correctness needs the barrier.
fn run_intersecting(callers: usize, iters: u64) -> Duration {
    time_universe(&[callers, 1], |ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = DcaPort::new(0, callers);
            let sub_ranks: Vec<usize> = (0..callers - 1).collect();
            let sub = ctx.comm.subgroup(&sub_ranks).unwrap();
            let in_sub = ctx.comm.rank() < callers - 1;
            let start = Instant::now();
            for _ in 0..iters {
                let _: f64 = port.invoke(ic, &ctx.comm, &ctx.comm, 1, 1.0f64).unwrap();
                if in_sub {
                    let sub = sub.as_ref().unwrap();
                    let _: f64 = port.invoke(ic, &ctx.comm, sub, 2, 1.0f64).unwrap();
                }
            }
            let d = start.elapsed();
            if ctx.comm.rank() == 0 {
                port.shutdown(ic).unwrap();
            }
            d
        } else {
            subset_serve(ctx.intercomm(0), &Echo, Duration::from_secs(60)).unwrap();
            Duration::ZERO
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_dca_barrier");
    for callers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("uniform_no_barrier", callers),
            &callers,
            |b, &m| b.iter_custom(|iters| run_full(m, true, iters)),
        );
        group.bench_with_input(
            BenchmarkId::new("mixed_with_barrier", callers),
            &callers,
            |b, &m| b.iter_custom(|iters| run_full(m, false, iters)),
        );
    }
    group.bench_function("intersecting_subsets_4callers", |b| {
        b.iter_custom(|iters| run_intersecting(4, iters))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
