//! Experiment F3 — Figure 3: paired M×N components.
//!
//! Measures the M×N component's two connection models on a 4 ⇄ 6 coupling:
//!
//! * **one-shot** (PAWS-style): handshake + single transfer, per coupling;
//! * **persistent** (CUMULVS-style): handshake once, then periodic
//!   `data_ready` transfers — the steady-state per-transfer cost;
//! * persistent with a period: skipped `data_ready` calls are nearly free.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use mxn_bench::{criterion_config, field_value, time_universe};
use mxn_core::{ConnectionKind, MxnComponent};
use mxn_dad::{AccessMode, Dad, Extents, LocalArray};

fn dads() -> (Dad, Dad) {
    let e = Extents::new([128, 96]);
    (Dad::block(e.clone(), &[4, 1]).unwrap(), Dad::block(e, &[2, 3]).unwrap())
}

fn run_kind(kind: ConnectionKind, reconnect_each_iter: bool, iters: u64) -> std::time::Duration {
    let (src, dst) = dads();
    time_universe(&[4, 6], |ctx| {
        let rank = ctx.comm.rank();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut mxn = MxnComponent::new(rank);
            let data =
                Arc::new(parking_lot::RwLock::new(LocalArray::from_fn(&src, rank, field_value)));
            mxn.register_field("f", src.clone(), AccessMode::Read, data).unwrap();
            if reconnect_each_iter {
                let start = Instant::now();
                for _ in 0..iters {
                    let mut conn = mxn.export_field(ic, "f", "f", kind).unwrap();
                    conn.data_ready(ic, mxn.registry()).unwrap();
                }
                start.elapsed()
            } else {
                let mut conn = mxn.export_field(ic, "f", "f", kind).unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    conn.data_ready(ic, mxn.registry()).unwrap();
                }
                start.elapsed()
            }
        } else {
            let ic = ctx.intercomm(0);
            let mut mxn = MxnComponent::new(rank);
            mxn.register_allocated("f", dst.clone(), AccessMode::Write).unwrap();
            if reconnect_each_iter {
                let start = Instant::now();
                for _ in 0..iters {
                    let mut conn = mxn.accept_connection(ic).unwrap();
                    conn.data_ready(ic, mxn.registry()).unwrap();
                }
                start.elapsed()
            } else {
                let mut conn = mxn.accept_connection(ic).unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    conn.data_ready(ic, mxn.registry()).unwrap();
                }
                start.elapsed()
            }
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_mxn_component");

    group.bench_function("one_shot_connection_and_transfer", |b| {
        b.iter_custom(|iters| run_kind(ConnectionKind::OneShot, true, iters))
    });

    group.bench_function("persistent_channel_per_transfer", |b| {
        b.iter_custom(|iters| run_kind(ConnectionKind::Persistent { period: 1 }, false, iters))
    });

    group.bench_function("persistent_period4_per_data_ready", |b| {
        b.iter_custom(|iters| run_kind(ConnectionKind::Persistent { period: 4 }, false, iters))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
