//! Shared support for the experiment benchmarks.
//!
//! Each bench target in `benches/` regenerates one figure/table of the
//! paper (or one of its quantitative claims); see `DESIGN.md`'s experiment
//! index. The helpers here time *inside* a running universe so that
//! thread-spawn and wiring costs don't pollute per-transfer numbers.

use std::time::Duration;

use mxn_runtime::{ProgramCtx, Universe};

/// Runs `f` on a universe and returns the maximum of the per-rank
/// durations that participating ranks report (ranks may return
/// `Duration::ZERO` to opt out of timing).
pub fn time_universe<F>(sizes: &[usize], f: F) -> Duration
where
    F: Fn(&ProgramCtx) -> Duration + Send + Sync,
{
    let durations = Universe::run(sizes, |_, ctx| f(ctx));
    durations.into_iter().max().unwrap_or(Duration::ZERO)
}

/// Standard tiny-but-stable Criterion configuration for benches that spawn
/// whole universes per measurement.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

/// A deterministic synthetic field value.
pub fn field_value(idx: &[usize]) -> f64 {
    let mut v = 7.0;
    for (d, &i) in idx.iter().enumerate() {
        v = v * 31.0 + (i * (d + 1)) as f64;
    }
    v
}

/// Formats a bytes count human-readably for bench logs.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_universe_returns_max() {
        let d = time_universe(&[1, 1], |ctx| {
            if ctx.program == 0 {
                Duration::from_millis(5)
            } else {
                Duration::ZERO
            }
        });
        assert_eq!(d, Duration::from_millis(5));
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 << 20).contains("MiB"));
    }

    #[test]
    fn field_value_distinguishes_indices() {
        assert_ne!(field_value(&[0, 1]), field_value(&[1, 0]));
    }
}
