//! DCA-style user-specified data redistribution.
//!
//! "DCA also employs the MPI all-to-all communication model to implement
//! parallel data redistribution. This works by having the user define the
//! data distribution layout using MPI data types, displacement and count
//! arrays … This strategy … has the advantage of being familiar to MPI
//! users and of being flexible by giving users the tools to describe their
//! own data redistribution layout. This flexibility also has its
//! disadvantages, because it places more responsibility on the user."
//! (paper §4.3)
//!
//! The user describes, per destination rank, which slice of a flat local
//! buffer to ship ([`AlltoallvSpec`]); the framework moves the slices. No
//! descriptors, no schedules — and no safety net beyond count validation.

use mxn_dad::{Dad, LocalArray};
use mxn_runtime::{Comm, InterComm, MsgSize, Result, RuntimeError, SMALL_COLLECTIVE_BYTES};
use mxn_schedule::RegionSchedule;

/// Per-peer `(count, displacement)` arrays describing how a flat local
/// buffer is carved up for an all-to-all exchange — the MPI `alltoallv`
/// argument style DCA exposes to applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlltoallvSpec {
    counts: Vec<usize>,
    displs: Vec<usize>,
}

impl AlltoallvSpec {
    /// Builds a spec with explicit counts and displacements.
    pub fn new(counts: Vec<usize>, displs: Vec<usize>) -> Result<Self> {
        if counts.len() != displs.len() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("{} counts vs {} displacements", counts.len(), displs.len()),
            });
        }
        Ok(AlltoallvSpec { counts, displs })
    }

    /// Builds a spec for contiguous, back-to-back chunks.
    pub fn contiguous(counts: &[usize]) -> Self {
        let mut displs = Vec::with_capacity(counts.len());
        let mut acc = 0;
        for &c in counts {
            displs.push(acc);
            acc += c;
        }
        AlltoallvSpec { counts: counts.to_vec(), displs }
    }

    /// Per-peer element counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Per-peer start offsets into the flat buffer.
    pub fn displs(&self) -> &[usize] {
        &self.displs
    }

    /// Number of peers the spec addresses.
    pub fn npeers(&self) -> usize {
        self.counts.len()
    }

    /// Verifies every chunk fits inside a buffer of `len` elements.
    pub fn validate(&self, len: usize) -> Result<()> {
        for (p, (&c, &d)) in self.counts.iter().zip(&self.displs).enumerate() {
            if d + c > len {
                return Err(RuntimeError::CollectiveMismatch {
                    detail: format!("peer {p}: chunk [{d}, {}) exceeds buffer length {len}", d + c),
                });
            }
        }
        Ok(())
    }

    fn chunk<'a, T>(&self, peer: usize, data: &'a [T]) -> &'a [T] {
        &data[self.displs[peer]..self.displs[peer] + self.counts[peer]]
    }
}

/// Element-type-generic alltoallv over *any* communicator — including the
/// sub-group communicators of [`Comm::split`] / [`Comm::subgroup`], which
/// is what axis-wise collective lowerings run their per-axis exchanges on.
/// `spec` must address exactly `comm.size()` peers (sub-group local ranks).
///
/// Algorithm selection matches [`alltoallv_within`]: the group first agrees
/// on the size regime by allreducing the largest chunk, then every member
/// takes the same path — Bruck's ⌈log₂ p⌉-round algorithm in the
/// latency-bound small-message regime, pairwise exchange otherwise.
pub fn alltoallv_subgroup<T>(comm: &Comm, data: &[T], spec: &AlltoallvSpec) -> Result<Vec<Vec<T>>>
where
    T: Clone + Send + MsgSize + 'static,
{
    if spec.npeers() != comm.size() {
        return Err(RuntimeError::CollectiveMismatch {
            detail: format!("{} chunks for {} ranks", spec.npeers(), comm.size()),
        });
    }
    spec.validate(data.len())?;
    let chunks: Vec<Vec<T>> = (0..comm.size()).map(|p| spec.chunk(p, data).to_vec()).collect();
    let my_max = chunks.iter().map(|c| c.msg_size()).max().unwrap_or(0) as u64;
    let global_max = comm.allreduce(my_max, |a, b| *a = (*a).max(b))?;
    let small = global_max as usize <= SMALL_COLLECTIVE_BYTES && comm.size() > 2;
    let algo = if small { mxn_runtime::coll_algo::BRUCK } else { mxn_runtime::coll_algo::PAIRWISE };
    let _span = mxn_trace::span(
        mxn_trace::EventId::DcaAlltoallv,
        [algo, global_max, data.len() as u64, comm.size() as u64],
    );
    if small {
        comm.alltoall_bruck(chunks)
    } else {
        comm.alltoallv(chunks)
    }
}

/// Intra-program redistribution: every rank contributes `data` carved by
/// `spec`; returns the chunk received from each rank, in rank order.
///
/// Picks the exchange algorithm by message size: since counts are
/// user-defined and may differ per rank, the ranks first *agree* on the
/// regime by allreducing the largest per-peer chunk size, then all take the
/// same path — Bruck's ⌈log₂ p⌉-round algorithm when every chunk is small
/// (latency-bound regime), the pairwise p−1-round exchange otherwise
/// (bandwidth-bound; each block travels exactly one hop).
pub fn alltoallv_within(comm: &Comm, data: &[f64], spec: &AlltoallvSpec) -> Result<Vec<Vec<f64>>> {
    alltoallv_subgroup(comm, data, spec)
}

/// Cross-program, caller side: ship each provider its chunk (the extra
/// arguments "automatically generated by the SIDL parser" travel with the
/// invocation; here they are the chunks themselves).
pub fn scatter_to_remote(
    ic: &InterComm,
    data: &[f64],
    spec: &AlltoallvSpec,
    tag: i32,
) -> Result<()> {
    if spec.npeers() != ic.remote_size() {
        return Err(RuntimeError::CollectiveMismatch {
            detail: format!("{} chunks for {} remote ranks", spec.npeers(), ic.remote_size()),
        });
    }
    spec.validate(data.len())?;
    for p in 0..ic.remote_size() {
        ic.send(p, tag, spec.chunk(p, data).to_vec())?;
    }
    Ok(())
}

/// Cross-program, provider side: collect one chunk from every remote rank
/// (empty chunks included), in remote-rank order.
pub fn gather_from_remote(ic: &InterComm, tag: i32) -> Result<Vec<Vec<f64>>> {
    (0..ic.remote_size()).map(|p| ic.recv::<Vec<f64>>(p, tag)).collect()
}

/// The "DAD as a layer on top of the DCA abstractions" the paper suggests:
/// derives the user-facing counts/displacements (plus the permutation
/// buffer) from descriptors, so an application can drive the low-level DCA
/// path without hand-computing layouts. Returns `(flat_buffer, spec)` where
/// `flat_buffer` is this rank's data arranged so each destination's chunk
/// is contiguous.
pub fn spec_from_dads(
    src: &Dad,
    dst: &Dad,
    my_rank: usize,
    local: &LocalArray<f64>,
) -> (Vec<f64>, AlltoallvSpec) {
    let sched = RegionSchedule::for_sender(src, dst, my_rank);
    let mut counts = vec![0usize; dst.nranks()];
    let mut flat = Vec::new();
    for pair in sched.pairs() {
        counts[pair.peer] = pair.elements();
        for region in &pair.regions {
            flat.extend(local.pack_region(region));
        }
    }
    (flat, AlltoallvSpec::contiguous(&counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::{Universe, World};

    #[test]
    fn contiguous_spec_displacements() {
        let s = AlltoallvSpec::contiguous(&[2, 0, 3]);
        assert_eq!(s.displs(), &[0, 2, 2]);
        assert_eq!(s.npeers(), 3);
        s.validate(5).unwrap();
        assert!(s.validate(4).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(AlltoallvSpec::new(vec![1, 2], vec![0]).is_err());
    }

    #[test]
    fn within_program_identity_permutation() {
        World::run(3, |p| {
            let comm = p.world();
            let r = comm.rank();
            // Rank r sends value 100*r + dest to each destination.
            let data: Vec<f64> = (0..3).map(|d| (100 * r + d) as f64).collect();
            let spec = AlltoallvSpec::contiguous(&[1, 1, 1]);
            let got = alltoallv_within(comm, &data, &spec).unwrap();
            for (s, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![(100 * s + r) as f64]);
            }
        });
    }

    #[test]
    fn uneven_user_defined_chunks() {
        World::run(2, |p| {
            let comm = p.world();
            let r = comm.rank();
            // Rank 0 keeps 1 element for rank 0 and sends 3 to rank 1;
            // rank 1 sends 2 each.
            let (data, spec) = if r == 0 {
                (vec![0.0, 1.0, 2.0, 3.0], AlltoallvSpec::contiguous(&[1, 3]))
            } else {
                (vec![10.0, 11.0, 12.0, 13.0], AlltoallvSpec::contiguous(&[2, 2]))
            };
            let got = alltoallv_within(comm, &data, &spec).unwrap();
            if r == 0 {
                assert_eq!(got, vec![vec![0.0], vec![10.0, 11.0]]);
            } else {
                assert_eq!(got, vec![vec![1.0, 2.0, 3.0], vec![12.0, 13.0]]);
            }
        });
    }

    #[test]
    fn algorithm_selection_agrees_across_uneven_ranks() {
        // Chunk sizes differ per rank, straddling the small/large threshold
        // from one rank's local view — the allreduce agreement must still
        // put every rank on the same algorithm (this deadlocks if not).
        World::run(4, |p| {
            let comm = p.world();
            let r = comm.rank();
            // Rank 3 sends big chunks (forces the pairwise path globally).
            let n = if r == 3 { 1024 } else { 1 };
            let data: Vec<f64> = (0..4 * n).map(|i| (r * 100_000 + i) as f64).collect();
            let spec = AlltoallvSpec::contiguous(&[n; 4]);
            let got = alltoallv_within(comm, &data, &spec).unwrap();
            for (s, chunk) in got.iter().enumerate() {
                let sn = if s == 3 { 1024 } else { 1 };
                let expect: Vec<f64> = (0..sn).map(|i| (s * 100_000 + r * sn + i) as f64).collect();
                assert_eq!(chunk, &expect, "chunk from rank {s}");
            }
        });
    }

    #[test]
    fn generic_exchange_over_split_subgroups() {
        // 6 ranks split into two 3-rank sub-groups; each runs an
        // independent u32 alltoallv on its sub-communicator.
        World::run(6, |p| {
            let comm = p.world();
            let color = comm.rank() % 2;
            let sub = comm.split(color as i64, comm.rank() as i64).unwrap().unwrap();
            assert_eq!(sub.size(), 3);
            let r = sub.rank();
            let data: Vec<u32> = (0..3).map(|d| (color * 1000 + r * 10 + d) as u32).collect();
            let spec = AlltoallvSpec::contiguous(&[1, 1, 1]);
            let got = alltoallv_subgroup(&sub, &data, &spec).unwrap();
            for (s, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![(color * 1000 + s * 10 + r) as u32], "from sub-rank {s}");
            }
        });
    }

    #[test]
    fn small_chunks_take_the_bruck_path() {
        let (_, stats) = World::run_with_stats(8, |p| {
            let comm = p.world();
            let data = vec![comm.rank() as f64; 8];
            let spec = AlltoallvSpec::contiguous(&[1; 8]);
            alltoallv_within(comm, &data, &spec).unwrap();
        });
        // Bruck: ceil(log2 8) = 3 alltoall messages per rank (the selection
        // allreduce is attributed to Allreduce, not Alltoall).
        assert_eq!(stats.coll(mxn_runtime::CollOp::Alltoall).messages, 8 * 3);
    }

    #[test]
    fn cross_program_scatter_gather() {
        Universe::run(&[2, 3], |_, ctx| {
            if ctx.program == 0 {
                let r = ctx.comm.rank();
                let data: Vec<f64> = (0..6).map(|i| (r * 10 + i) as f64).collect();
                let spec = AlltoallvSpec::contiguous(&[2, 2, 2]);
                scatter_to_remote(ctx.intercomm(1), &data, &spec, 5).unwrap();
            } else {
                let got = gather_from_remote(ctx.intercomm(0), 5).unwrap();
                let j = ctx.comm.rank();
                for (src, chunk) in got.iter().enumerate() {
                    let base = (src * 10 + 2 * j) as f64;
                    assert_eq!(chunk, &vec![base, base + 1.0]);
                }
            }
        });
    }

    #[test]
    fn dad_layer_reproduces_schedule_transfer() {
        // Row-blocks → col-blocks driven purely through the DCA-style API,
        // with counts/displs derived from descriptors.
        Universe::run(&[2, 2], |_, ctx| {
            let e = Extents::new([4, 4]);
            let src = Dad::block(e.clone(), &[2, 1]).unwrap();
            let dst = Dad::block(e, &[1, 2]).unwrap();
            if ctx.program == 0 {
                let rank = ctx.comm.rank();
                let local = LocalArray::from_fn(&src, rank, |idx| (idx[0] * 4 + idx[1]) as f64);
                let (flat, spec) = spec_from_dads(&src, &dst, rank, &local);
                assert_eq!(flat.len(), 8);
                scatter_to_remote(ctx.intercomm(1), &flat, &spec, 9).unwrap();
            } else {
                // Receiver reassembles using its receiver schedule's region
                // order (the same canonical order the sender packed with).
                let rank = ctx.comm.rank();
                let sched = RegionSchedule::for_receiver(&src, &dst, rank);
                let chunks = gather_from_remote(ctx.intercomm(0), 9).unwrap();
                let mut out: LocalArray<f64> = LocalArray::allocate(&dst, rank);
                for pair in sched.pairs() {
                    let mut cursor = 0;
                    let data = &chunks[pair.peer];
                    for region in &pair.regions {
                        out.unpack_region(region, &data[cursor..cursor + region.len()]);
                        cursor += region.len();
                    }
                }
                for (idx, &v) in out.iter() {
                    assert_eq!(v, (idx[0] * 4 + idx[1]) as f64);
                }
            }
        });
    }
}
