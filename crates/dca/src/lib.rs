//! # mxn-dca — the Distributed CCA Architecture model
//!
//! The DCA framework of the paper's §4.3: a distributed CCA built directly
//! on MPI idioms.
//!
//! * [`stub`] — the stub-generator analogue: every port invocation carries
//!   a participation communicator as an extra trailing argument, and the
//!   stub inserts the delivery barrier exactly when a *proper subset* of
//!   the component's processes participates (the rule that fixes Figure 5;
//!   all-participate calls skip it).
//! * [`alltoall`] — user-specified redistribution with MPI-style count and
//!   displacement arrays, intra-program (over `alltoallv`) and
//!   cross-program, plus the "DAD as a layer on top of the DCA
//!   abstractions" derivation the paper suggests.
//!
//! Concurrent component startup via Go ports — DCA's other distinguishing
//! behaviour — is provided by `mxn_framework::Framework::run_all_go`.

pub mod alltoall;
pub mod generator;
pub mod stub;

pub use alltoall::{
    alltoallv_subgroup, alltoallv_within, gather_from_remote, scatter_to_remote, spec_from_dads,
    AlltoallvSpec,
};
pub use generator::GeneratedStub;
pub use stub::{program_local_ranks, DcaPort};
