//! The DCA stub layer: communicator-carrying port invocations.
//!
//! "The stub generator that parses the SIDL source files automatically adds
//! an extra argument to all port methods, of type MPI_Comm, that is used to
//! communicate to the framework which processes participate in the parallel
//! remote method invocation … it is used to perform a barrier
//! synchronization, required to ensure that the order of invocation is
//! preserved when different but intersecting sets of processes make
//! consecutive port calls … In other invocation schemes where all processes
//! must participate, the barrier is not required." (paper §4.3)
//!
//! [`DcaPort`] is the Rust analogue of a generated stub: every invocation
//! takes the participation communicator as its trailing argument, and the
//! stub inserts the delivery barrier exactly when the participant set is a
//! proper subset of the component's processes.

use std::time::Duration;

use mxn_runtime::{Comm, InterComm, MsgSize};

use mxn_prmi::subset::{subset_call, subset_call_timeout, subset_shutdown, DeliveryPolicy};
use mxn_prmi::{PrmiError, Result};

/// Maps a participation communicator's members to program-local ranks,
/// given the program communicator (both share global world ranks).
pub fn program_local_ranks(program: &Comm, participants: &Comm) -> Vec<usize> {
    participants
        .group()
        .iter()
        .map(|g| {
            program
                .group()
                .iter()
                .position(|pg| pg == g)
                .expect("participant is a member of the program")
        })
        .collect()
}

/// A generated-stub-style port handle: one remote serial provider rank,
/// invoked with a trailing participation communicator.
///
/// The delivery barrier is a property of the port's *invocation scheme*,
/// not of a single call: "in other invocation schemes where all processes
/// must participate, the barrier is not required" (§4.3). A port declared
/// [`DcaPort::uniform`] promises every call is all-participate and skips
/// barriers entirely; the default (mixed) scheme barriers every call,
/// because even an all-participate call can deadlock against a concurrent
/// subset call (the Figure 5 interleaving).
pub struct DcaPort {
    provider: usize,
    program_size: usize,
    uniform: bool,
}

impl DcaPort {
    /// Creates a stub for the general (mixed-participation) scheme:
    /// every invocation is barrier-synchronized. `program_size` is the
    /// caller component's full process count.
    pub fn new(provider: usize, program_size: usize) -> Self {
        DcaPort { provider, program_size, uniform: false }
    }

    /// Creates a stub for the all-participate scheme: the caller promises
    /// every invocation involves the whole component, so calls are
    /// delivered in order without barriers.
    pub fn uniform(provider: usize, program_size: usize) -> Self {
        DcaPort { provider, program_size, uniform: true }
    }

    /// The policy the stub generator would emit for this participant set.
    ///
    /// # Panics
    /// If a uniform port is invoked with a proper participant subset (a
    /// broken promise the generated stub can check cheaply).
    pub fn policy_for(&self, participants: &Comm) -> DeliveryPolicy {
        if self.uniform {
            assert_eq!(
                participants.size(),
                self.program_size,
                "uniform DCA port invoked with a participant subset"
            );
            DeliveryPolicy::eager()
        } else {
            DeliveryPolicy::safe()
        }
    }

    /// Invokes `method` with the participation communicator as the
    /// (conceptually trailing) extra argument — the DCA calling convention.
    pub fn invoke<A, R>(
        &self,
        ic: &InterComm,
        program: &Comm,
        participants: &Comm,
        method: u32,
        arg: A,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static,
        R: 'static,
    {
        let ranks = program_local_ranks(program, participants);
        subset_call(
            participants,
            ic,
            &ranks,
            self.provider,
            method,
            arg,
            self.policy_for(participants),
        )
    }

    /// Like [`DcaPort::invoke`] with a bounded wait (deadlock detection).
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_timeout<A, R>(
        &self,
        ic: &InterComm,
        program: &Comm,
        participants: &Comm,
        method: u32,
        arg: A,
        timeout: Duration,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static,
        R: 'static,
    {
        let ranks = program_local_ranks(program, participants);
        subset_call_timeout(
            participants,
            ic,
            &ranks,
            self.provider,
            method,
            arg,
            self.policy_for(participants),
            timeout,
        )
    }

    /// One-way invocation: shares are delivered (with the same barrier
    /// rule) but no response is awaited. The provider must treat the method
    /// as one-way too (see [`mxn_prmi::subset_serve`]'s contract — one-way
    /// methods must not produce a reply the callers never collect).
    pub fn invoke_oneway<A>(
        &self,
        ic: &InterComm,
        program: &Comm,
        participants: &Comm,
        method: u32,
        arg: A,
    ) -> Result<()>
    where
        A: Send + Sync + MsgSize + 'static,
    {
        // DCA one-way calls still synchronize delivery; they just skip the
        // response. Reuse the share protocol with a fire-and-forget recv
        // elision: we send shares and return.
        let ranks = program_local_ranks(program, participants);
        if self.policy_for(participants).barrier_before_delivery {
            participants.barrier().map_err(PrmiError::Runtime)?;
            mxn_trace::emit_instant(
                mxn_trace::EventId::DcaBarrier,
                [participants.size() as u64, program.size() as u64, 0, 0],
            );
        }
        // Sending the share is exactly what subset_call does before its
        // blocking receive; replicate the send half.
        use mxn_framework::AnyPayload;
        use mxn_prmi::SubsetShare;
        ic.send(
            self.provider,
            0x6000 + method as i32,
            SubsetShare {
                caller: ic.local_rank(),
                participants: ranks,
                oneway: true,
                arg: AnyPayload::new(arg),
            },
        )
        .map_err(PrmiError::Runtime)?;
        Ok(())
    }

    /// Ends the provider's serve loop (one caller rank sends this).
    pub fn shutdown(&self, ic: &InterComm) -> Result<()> {
        subset_shutdown(ic, self.provider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_framework::{AnyPayload, Dispatch, RemoteService};
    use mxn_prmi::{subset_serve, SubsetServeOutcome};
    use mxn_runtime::Universe;

    struct AddTen;
    impl RemoteService for AddTen {
        fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
            let v: f64 = arg.downcast().unwrap();
            AnyPayload::replicable(v + 10.0 + method as f64).into()
        }
    }

    #[test]
    fn full_participation_skips_barrier_and_works() {
        Universe::run(&[3, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = DcaPort::uniform(0, 3);
                assert_eq!(port.policy_for(&ctx.comm), DeliveryPolicy::eager());
                let r: f64 = port.invoke(ic, &ctx.comm, &ctx.comm, 1, 5.0f64).unwrap();
                assert_eq!(r, 16.0);
                if ctx.comm.rank() == 0 {
                    port.shutdown(ic).unwrap();
                }
            } else {
                let out = subset_serve(ctx.intercomm(0), &AddTen, Duration::from_secs(5)).unwrap();
                assert_eq!(out, SubsetServeOutcome::Completed { calls: 1 });
            }
        });
    }

    #[test]
    fn subset_participation_gets_the_barrier() {
        Universe::run(&[4, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = DcaPort::new(0, 4);
                let sub = ctx.comm.subgroup(&[1, 3]).unwrap();
                if let Some(sub) = sub {
                    assert_eq!(port.policy_for(&sub), DeliveryPolicy::safe());
                    assert_eq!(program_local_ranks(&ctx.comm, &sub), vec![1, 3]);
                    let r: f64 = port.invoke(ic, &ctx.comm, &sub, 0, 1.0f64).unwrap();
                    assert_eq!(r, 11.0);
                    if sub.rank() == 0 {
                        port.shutdown(ic).unwrap();
                    }
                }
            } else {
                let out = subset_serve(ctx.intercomm(0), &AddTen, Duration::from_secs(5)).unwrap();
                assert_eq!(out, SubsetServeOutcome::Completed { calls: 1 });
            }
        });
    }

    #[test]
    fn intersecting_subsets_complete_thanks_to_stub_barrier() {
        // The Figure 5 shape, but driven through DCA stubs, which insert
        // the barrier automatically: must complete.
        Universe::run(&[3, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = DcaPort::new(0, 3);
                let rank = ctx.comm.rank();
                let all = ctx.comm.subgroup(&[0, 1, 2]).unwrap().unwrap();
                let pair = ctx.comm.subgroup(&[1, 2]).unwrap();
                if rank == 0 {
                    let r: f64 = port.invoke(ic, &ctx.comm, &all, 0, 1.0f64).unwrap();
                    assert_eq!(r, 11.0);
                    port.shutdown(ic).unwrap();
                } else {
                    std::thread::sleep(Duration::from_millis(30));
                    let pair = pair.unwrap();
                    let rb: f64 = port.invoke(ic, &ctx.comm, &pair, 1, 2.0f64).unwrap();
                    assert_eq!(rb, 13.0);
                    let _ra: f64 = port.invoke(ic, &ctx.comm, &all, 0, 1.0f64).unwrap();
                }
            } else {
                let out = subset_serve(ctx.intercomm(0), &AddTen, Duration::from_secs(5)).unwrap();
                assert_eq!(out, SubsetServeOutcome::Completed { calls: 2 });
            }
        });
    }

    #[test]
    fn oneway_invocation_returns_immediately() {
        Universe::run(&[2, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = DcaPort::new(0, 2);
                port.invoke_oneway(ic, &ctx.comm, &ctx.comm, 2, 4.0f64).unwrap();
                // A later two-way call is serviced after the one-way.
                let r: f64 = port.invoke(ic, &ctx.comm, &ctx.comm, 0, 0.0f64).unwrap();
                assert_eq!(r, 10.0);
                if ctx.comm.rank() == 0 {
                    port.shutdown(ic).unwrap();
                }
            } else {
                let out =
                    subset_serve(ctx.intercomm(0), &OneWayAware, Duration::from_secs(5)).unwrap();
                // Both the one-way and the two-way call were serviced.
                assert_eq!(out, SubsetServeOutcome::Completed { calls: 2 });
            }
        });

        struct OneWayAware;
        impl RemoteService for OneWayAware {
            fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
                let v: f64 = arg.downcast().unwrap();
                AnyPayload::replicable(v + 10.0 + if method == 2 { 100.0 } else { 0.0 }).into()
            }
        }
    }
}
