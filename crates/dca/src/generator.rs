//! The SIDL-driven stub generator.
//!
//! "The stub generator that parses the SIDL source files automatically
//! adds an extra argument to all port methods, of type MPI_Comm … Also,
//! parallel arguments are identified in the SIDL file with the special
//! keyword 'parallel'." (paper §4.3)
//!
//! [`GeneratedStub`] is the product of that generator for one interface:
//! methods are dispatched **by name** against the parsed
//! [`InterfaceSpec`], and each call is checked against the declared
//! invocation mode before anything is sent — collective methods demand
//! full participation, independent methods a single participant, one-way
//! methods use the fire-and-forget path. The declared method ids become
//! the wire-level selectors automatically.

use std::time::Duration;

use mxn_framework::sidl::{InterfaceSpec, InvocationMode, MethodSpec, SidlType};
use mxn_runtime::{Comm, InterComm, MsgSize};

use mxn_prmi::{PrmiError, Result};

use crate::stub::DcaPort;

/// A stub "generated" from a SIDL interface declaration.
pub struct GeneratedStub {
    spec: InterfaceSpec,
    port: DcaPort,
    program_size: usize,
}

impl GeneratedStub {
    /// Builds the stub for `spec`, targeting remote provider rank
    /// `provider`, within a caller component of `program_size` processes.
    pub fn new(spec: InterfaceSpec, provider: usize, program_size: usize) -> Self {
        GeneratedStub { spec, port: DcaPort::new(provider, program_size), program_size }
    }

    /// The interface this stub implements.
    pub fn spec(&self) -> &InterfaceSpec {
        &self.spec
    }

    fn method(&self, name: &str) -> Result<&MethodSpec> {
        self.spec.method(name).ok_or_else(|| PrmiError::Protocol {
            detail: format!("interface `{}` has no method `{name}`", self.spec.name),
        })
    }

    fn check_mode(&self, m: &MethodSpec, participants: &Comm) -> Result<()> {
        match m.mode {
            InvocationMode::Collective => {
                if participants.size() != self.program_size {
                    return Err(PrmiError::Protocol {
                        detail: format!(
                            "collective method `{}` requires all {} processes \
                             (got {} participants)",
                            m.name,
                            self.program_size,
                            participants.size()
                        ),
                    });
                }
            }
            InvocationMode::Independent => {
                if participants.size() != 1 {
                    return Err(PrmiError::Protocol {
                        detail: format!(
                            "independent method `{}` is one-to-one (got {} participants)",
                            m.name,
                            participants.size()
                        ),
                    });
                }
            }
            InvocationMode::Oneway => {
                return Err(PrmiError::Protocol {
                    detail: format!("one-way method `{}` must use invoke_oneway", m.name),
                });
            }
        }
        Ok(())
    }

    /// Invokes a two-way method by name; the participation communicator is
    /// the "extra argument" the generator adds.
    pub fn invoke<A, R>(
        &self,
        name: &str,
        ic: &InterComm,
        program: &Comm,
        participants: &Comm,
        arg: A,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static,
        R: 'static,
    {
        let m = self.method(name)?;
        self.check_mode(m, participants)?;
        self.port.invoke(ic, program, participants, m.id, arg)
    }

    /// Bounded-wait variant of [`GeneratedStub::invoke`].
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_timeout<A, R>(
        &self,
        name: &str,
        ic: &InterComm,
        program: &Comm,
        participants: &Comm,
        arg: A,
        timeout: Duration,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static,
        R: 'static,
    {
        let m = self.method(name)?;
        self.check_mode(m, participants)?;
        self.port.invoke_timeout(ic, program, participants, m.id, arg, timeout)
    }

    /// Invokes a one-way method by name.
    pub fn invoke_oneway<A>(
        &self,
        name: &str,
        ic: &InterComm,
        program: &Comm,
        participants: &Comm,
        arg: A,
    ) -> Result<()>
    where
        A: Send + Sync + MsgSize + 'static,
    {
        let m = self.method(name)?;
        if m.mode != InvocationMode::Oneway {
            return Err(PrmiError::Protocol { detail: format!("method `{name}` is not one-way") });
        }
        debug_assert_eq!(m.ret, SidlType::Void, "parser enforced the one-way rule");
        self.port.invoke_oneway(ic, program, participants, m.id, arg)
    }

    /// Ends the provider's serve loop.
    pub fn shutdown(&self, ic: &InterComm) -> Result<()> {
        self.port.shutdown(ic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_framework::sidl::parse_interface;
    use mxn_framework::{AnyPayload, Dispatch, RemoteService};
    use mxn_prmi::{subset_serve, SubsetServeOutcome};
    use mxn_runtime::Universe;

    const IDL: &str = r#"
        interface Thermo {
            collective double mean_energy(in double scale);
            independent double probe(in double x);
            oneway void log_step(in double t);
        }
    "#;

    struct Thermo;
    impl RemoteService for Thermo {
        fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
            let v: f64 = arg.downcast().unwrap();
            AnyPayload::replicable(v + method as f64 * 100.0).into()
        }
    }

    #[test]
    fn generated_stub_dispatches_by_name_with_declared_ids() {
        Universe::run(&[2, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let stub = GeneratedStub::new(parse_interface(IDL).unwrap(), 0, 2);
                // Collective method: id 0 → +0.
                let r: f64 = stub.invoke("mean_energy", ic, &ctx.comm, &ctx.comm, 7.0f64).unwrap();
                assert_eq!(r, 7.0);
                // Independent method (singleton participation): id 1 → +100.
                let me = ctx.comm.split(ctx.comm.rank() as i64, 0).unwrap().unwrap();
                let r: f64 = stub.invoke("probe", ic, &ctx.comm, &me, 1.0f64).unwrap();
                assert_eq!(r, 101.0);
                // One-way: id 2 (executed, no reply).
                stub.invoke_oneway("log_step", ic, &ctx.comm, &ctx.comm, 0.5f64).unwrap();
                if ctx.comm.rank() == 0 {
                    stub.shutdown(ic).unwrap();
                }
            } else {
                let out = subset_serve(ctx.intercomm(0), &Thermo, Duration::from_secs(5)).unwrap();
                // 1 collective + 2 independent + 1 one-way = 4 calls.
                assert_eq!(out, SubsetServeOutcome::Completed { calls: 4 });
            }
        });
    }

    #[test]
    fn mode_violations_are_rejected_before_sending() {
        Universe::run(&[2, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let stub = GeneratedStub::new(parse_interface(IDL).unwrap(), 0, 2);
                let me = ctx.comm.split(ctx.comm.rank() as i64, 0).unwrap().unwrap();
                // Collective with a subset: rejected.
                let r: Result<f64> = stub.invoke("mean_energy", ic, &ctx.comm, &me, 1.0f64);
                assert!(matches!(r, Err(PrmiError::Protocol { .. })));
                // Independent with everyone: rejected.
                let r: Result<f64> = stub.invoke("probe", ic, &ctx.comm, &ctx.comm, 1.0f64);
                assert!(matches!(r, Err(PrmiError::Protocol { .. })));
                // Two-way call of a one-way method: rejected.
                let r: Result<f64> = stub.invoke("log_step", ic, &ctx.comm, &ctx.comm, 1.0f64);
                assert!(matches!(r, Err(PrmiError::Protocol { .. })));
                // One-way call of a two-way method: rejected.
                let r = stub.invoke_oneway("probe", ic, &ctx.comm, &me, 1.0f64);
                assert!(matches!(r, Err(PrmiError::Protocol { .. })));
                // Unknown method: rejected.
                let r: Result<f64> = stub.invoke("nope", ic, &ctx.comm, &ctx.comm, 1.0f64);
                assert!(matches!(r, Err(PrmiError::Protocol { .. })));
                // Nothing reached the provider; shut it down cleanly.
                if ctx.comm.rank() == 0 {
                    stub.shutdown(ic).unwrap();
                }
            } else {
                let out = subset_serve(ctx.intercomm(0), &Thermo, Duration::from_secs(5)).unwrap();
                assert_eq!(out, SubsetServeOutcome::Completed { calls: 0 });
            }
        });
    }
}
