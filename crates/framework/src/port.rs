//! Ports: typed connection points between components.
//!
//! CCA communication is through ports with a uses/provides pattern
//! (paper §2.1). A *provides* port is an object a component exposes; a
//! *uses* port is a declared dependency that the framework later wires to a
//! compatible provides port. Ports carry a SIDL-style *port type* string —
//! the interface name — which the framework checks at connect time, and a
//! Rust handle type (typically `Arc<dyn YourTrait>`) which the user
//! recovers with a checked downcast.

use std::any::Any;
use std::sync::Arc;

use crate::error::{FrameworkError, Result};

/// The SIDL port type of the framework's Go port.
pub const GO_PORT_TYPE: &str = "gov.cca.ports.GoPort";

/// The CCA Go port: "the component equivalent of the `main` function"
/// (paper §4.3). Components providing one can be started by the framework.
pub trait GoPort: Send + Sync {
    /// Runs the component; the return code is reported to the launcher.
    fn go(&self) -> Result<i32>;
}

/// A registered provides port: the SIDL type plus the type-erased handle.
#[derive(Clone)]
pub struct ProvidedPort {
    port_type: String,
    handle: Arc<dyn Any + Send + Sync>,
    rust_type: &'static str,
}

impl ProvidedPort {
    /// Wraps a concrete handle (commonly `Arc<dyn Trait>`; any `Clone +
    /// Send + Sync` value works) under a SIDL port type.
    pub fn new<T: Clone + Send + Sync + 'static>(port_type: &str, handle: T) -> Self {
        ProvidedPort {
            port_type: port_type.to_string(),
            handle: Arc::new(handle),
            rust_type: std::any::type_name::<T>(),
        }
    }

    /// The SIDL interface name.
    pub fn port_type(&self) -> &str {
        &self.port_type
    }

    /// The Rust type name of the stored handle (diagnostics).
    pub fn rust_type(&self) -> &'static str {
        self.rust_type
    }

    /// Recovers the handle as the Rust type it was registered with.
    pub fn downcast<T: Clone + 'static>(&self, port_name: &str) -> Result<T> {
        self.handle.downcast_ref::<T>().cloned().ok_or(FrameworkError::PortDowncast {
            port: port_name.to_string(),
            requested: std::any::type_name::<T>(),
        })
    }
}

impl std::fmt::Debug for ProvidedPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvidedPort")
            .field("port_type", &self.port_type)
            .field("rust_type", &self.rust_type)
            .finish()
    }
}

/// A declared uses port: name resolution happens at connect time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsesPort {
    /// The SIDL interface name the user expects.
    pub port_type: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Greeter: Send + Sync {
        fn greet(&self) -> String;
    }

    struct Hello;
    impl Greeter for Hello {
        fn greet(&self) -> String {
            "hello".into()
        }
    }

    #[test]
    fn roundtrip_trait_object_handle() {
        let handle: Arc<dyn Greeter> = Arc::new(Hello);
        let port = ProvidedPort::new("test.Greeter", handle);
        assert_eq!(port.port_type(), "test.Greeter");
        let back: Arc<dyn Greeter> = port.downcast("greeter").unwrap();
        assert_eq!(back.greet(), "hello");
    }

    #[test]
    fn wrong_type_downcast_fails() {
        let port = ProvidedPort::new("test.Num", 42u32);
        let r: Result<String> = port.downcast("num");
        assert!(matches!(r, Err(FrameworkError::PortDowncast { .. })));
        let ok: u32 = port.downcast("num").unwrap();
        assert_eq!(ok, 42);
    }

    #[test]
    fn go_port_as_provided_port() {
        struct Runner;
        impl GoPort for Runner {
            fn go(&self) -> Result<i32> {
                Ok(7)
            }
        }
        let handle: Arc<dyn GoPort> = Arc::new(Runner);
        let port = ProvidedPort::new(GO_PORT_TYPE, handle);
        let go: Arc<dyn GoPort> = port.downcast("go").unwrap();
        assert_eq!(go.go().unwrap(), 7);
    }
}
