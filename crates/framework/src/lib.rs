//! # mxn-framework — a CCA-style component framework
//!
//! The execution environment of a component-based application (paper §2.1,
//! Figure 2), in both flavors:
//!
//! * **Direct-connected** ([`Framework`]): components share an address
//!   space; a port invocation is "a refined form of library call". Run the
//!   same assembly on every rank of a communicator and each component
//!   becomes a *cohort* — a parallel component whose internal communication
//!   is out-of-band (MPI-style, via `mxn-runtime`).
//! * **Distributed** ([`remote`]): components live in disjoint process
//!   sets; ports become RMI over an inter-communicator, with request/
//!   response envelopes, a blocking server loop, one-way methods, and a
//!   minimal port-name directory. Parallel (collective) invocation
//!   semantics are layered on by the `mxn-prmi` crate.
//!
//! Components declare uses/provides ports through [`Services`]; a builder
//! wires them with [`Framework::connect`], checking SIDL-style port types.
//! Go ports ([`GoPort`]) start applications, individually or concurrently.

pub mod direct;
pub mod error;
pub mod port;
pub mod remote;
pub mod sidl;

pub use direct::{Component, Framework, Services};
pub use error::{FrameworkError, Result};
pub use port::{GoPort, ProvidedPort, UsesPort, GO_PORT_TYPE};
pub use remote::{
    publish_port_names, receive_port_names, serve, shutdown_all, AnyPayload, BatchService,
    CallPolicy, Dispatch, MethodNotFound, Overloaded, RemotePort, RemoteService, RmiRequest,
    RmiResponse, ServeStats, ShedReason, METHOD_SHUTDOWN, NACK_CALL_ID, RMI_REQ_TAG, RMI_RESP_TAG,
};
pub use sidl::{
    parse_interface, ArgSpec, Intent, InterfaceSpec, InvocationMode, MethodSpec, SidlError,
    SidlType,
};
