//! The direct-connected framework.
//!
//! "In direct-connected frameworks, all components in one process live in
//! the same address space and a port invocation then looks like a refined
//! form of library call" (paper §2.1, Figure 2). Running the same framework
//! assembly on every rank of a communicator makes each component a *cohort*
//! — a parallel component whose internal communication happens out-of-band
//! (via `mxn_runtime`) while all inter-component interaction goes through
//! ports.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{FrameworkError, Result};
use crate::port::{GoPort, ProvidedPort, UsesPort, GO_PORT_TYPE};

/// A CCA component: registers its uses/provides ports when added to a
/// framework.
pub trait Component: Send {
    /// Called once by the framework; the component declares its ports here
    /// and may keep the [`Services`] clone for later port lookups.
    fn set_services(&mut self, services: &Services) -> Result<()>;
}

#[derive(Default)]
struct Inner {
    components: Vec<String>,
    provided: HashMap<(String, String), ProvidedPort>,
    uses: HashMap<(String, String), UsesPort>,
    connections: HashMap<(String, String), (String, String)>,
}

/// A direct-connected CCA framework instance (one per process; run the
/// same assembly SPMD-style for parallel cohorts).
#[derive(Clone, Default)]
pub struct Framework {
    inner: Arc<Mutex<Inner>>,
}

impl Framework {
    /// Creates an empty framework.
    pub fn new() -> Self {
        Framework::default()
    }

    /// Instantiates a component under `name`: registers it and lets it
    /// declare ports via [`Component::set_services`]. Returns the
    /// component's services handle.
    pub fn add_component(&self, name: &str, component: &mut dyn Component) -> Result<Services> {
        {
            let mut inner = self.inner.lock();
            assert!(
                !inner.components.iter().any(|c| c == name),
                "component instance name `{name}` already in use"
            );
            inner.components.push(name.to_string());
        }
        let services = Services { fw: self.clone(), component: name.to_string() };
        component.set_services(&services)?;
        Ok(services)
    }

    /// Instance names in registration order.
    pub fn components(&self) -> Vec<String> {
        self.inner.lock().components.clone()
    }

    fn check_component(inner: &Inner, name: &str) -> Result<()> {
        if inner.components.iter().any(|c| c == name) {
            Ok(())
        } else {
            Err(FrameworkError::ComponentNotFound { component: name.to_string() })
        }
    }

    /// Connects `user`'s uses port to `provider`'s provides port, checking
    /// SIDL port types (the BuilderService `connect` operation).
    pub fn connect(
        &self,
        user: &str,
        uses_port: &str,
        provider: &str,
        provides_port: &str,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        Self::check_component(&inner, user)?;
        Self::check_component(&inner, provider)?;
        let uses_key = (user.to_string(), uses_port.to_string());
        let uses = inner.uses.get(&uses_key).ok_or_else(|| FrameworkError::PortNotFound {
            component: user.to_string(),
            port: uses_port.to_string(),
        })?;
        let provided = inner
            .provided
            .get(&(provider.to_string(), provides_port.to_string()))
            .ok_or_else(|| FrameworkError::PortNotFound {
                component: provider.to_string(),
                port: provides_port.to_string(),
            })?;
        if uses.port_type != provided.port_type() {
            return Err(FrameworkError::PortTypeMismatch {
                uses_type: uses.port_type.clone(),
                provides_type: provided.port_type().to_string(),
            });
        }
        if inner.connections.contains_key(&uses_key) {
            return Err(FrameworkError::AlreadyConnected {
                component: user.to_string(),
                port: uses_port.to_string(),
            });
        }
        inner.connections.insert(uses_key, (provider.to_string(), provides_port.to_string()));
        Ok(())
    }

    /// Severs a uses-port connection (BuilderService `disconnect`).
    pub fn disconnect(&self, user: &str, uses_port: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.connections.remove(&(user.to_string(), uses_port.to_string())).map(|_| ()).ok_or_else(
            || FrameworkError::NotConnected {
                component: user.to_string(),
                port: uses_port.to_string(),
            },
        )
    }

    fn go_handle(&self, component: &str) -> Result<Arc<dyn GoPort>> {
        let inner = self.inner.lock();
        Self::check_component(&inner, component)?;
        inner
            .provided
            .iter()
            .find(|((c, _), p)| c == component && p.port_type() == GO_PORT_TYPE)
            .ok_or_else(|| FrameworkError::PortNotFound {
                component: component.to_string(),
                port: GO_PORT_TYPE.to_string(),
            })
            .and_then(|((_, name), p)| p.downcast::<Arc<dyn GoPort>>(name))
    }

    /// Runs a component's Go port to completion.
    pub fn run_go(&self, component: &str) -> Result<i32> {
        self.go_handle(component)?.go()
    }

    /// Starts every registered Go port *concurrently* (the DCA startup
    /// model, paper §4.3) and returns each component's result.
    pub fn run_all_go(&self) -> Vec<(String, Result<i32>)> {
        let targets: Vec<(String, Arc<dyn GoPort>)> = {
            let inner = self.inner.lock();
            inner
                .provided
                .iter()
                .filter(|(_, p)| p.port_type() == GO_PORT_TYPE)
                .filter_map(|((c, name), p)| {
                    p.downcast::<Arc<dyn GoPort>>(name).ok().map(|g| (c.clone(), g))
                })
                .collect()
        };
        let mut results: Vec<(String, Result<i32>)> = Vec::with_capacity(targets.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = targets
                .into_iter()
                .map(|(name, go)| (name, scope.spawn(move || go.go())))
                .collect();
            for (name, h) in handles {
                let r = h
                    .join()
                    .unwrap_or(Err(FrameworkError::Runtime(mxn_runtime::RuntimeError::Aborted)));
                results.push((name, r));
            }
        });
        results.sort_by(|a, b| a.0.cmp(&b.0));
        results
    }
}

/// A component's window onto its framework (the CCA `Services` object).
#[derive(Clone)]
pub struct Services {
    fw: Framework,
    component: String,
}

impl Services {
    /// The owning component's instance name.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Registers a provides port under `name` with SIDL type `port_type`.
    pub fn add_provides_port<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
        port_type: &str,
        handle: T,
    ) -> Result<()> {
        let mut inner = self.fw.inner.lock();
        inner.provided.insert(
            (self.component.clone(), name.to_string()),
            ProvidedPort::new(port_type, handle),
        );
        Ok(())
    }

    /// Declares a uses port the framework may later connect.
    pub fn register_uses_port(&self, name: &str, port_type: &str) -> Result<()> {
        let mut inner = self.fw.inner.lock();
        inner.uses.insert(
            (self.component.clone(), name.to_string()),
            UsesPort { port_type: port_type.to_string() },
        );
        Ok(())
    }

    /// Resolves a connected uses port to its provider's handle — in a
    /// direct framework "a refined form of library call".
    pub fn get_port<T: Clone + 'static>(&self, name: &str) -> Result<T> {
        let inner = self.fw.inner.lock();
        let uses_key = (self.component.clone(), name.to_string());
        if !inner.uses.contains_key(&uses_key) {
            return Err(FrameworkError::PortNotFound {
                component: self.component.clone(),
                port: name.to_string(),
            });
        }
        let (prov_comp, prov_port) =
            inner.connections.get(&uses_key).ok_or_else(|| FrameworkError::NotConnected {
                component: self.component.clone(),
                port: name.to_string(),
            })?;
        let provided = inner
            .provided
            .get(&(prov_comp.clone(), prov_port.clone()))
            .expect("connection targets a registered provides port");
        provided.downcast::<T>(prov_port)
    }

    /// The framework this services handle belongs to.
    pub fn framework(&self) -> &Framework {
        &self.fw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI32, Ordering};

    /// A toy "integrator" port.
    trait Integrate: Send + Sync {
        fn integrate(&self, lo: f64, hi: f64) -> f64;
    }

    struct MidpointIntegrator;
    impl Integrate for MidpointIntegrator {
        fn integrate(&self, lo: f64, hi: f64) -> f64 {
            (hi - lo) * ((lo + hi) / 2.0)
        }
    }

    /// Provider component.
    struct IntegratorComp;
    impl Component for IntegratorComp {
        fn set_services(&mut self, services: &Services) -> Result<()> {
            let handle: Arc<dyn Integrate> = Arc::new(MidpointIntegrator);
            services.add_provides_port("integrator", "math.Integrate", handle)
        }
    }

    /// User component driving the provider through its uses port.
    struct DriverComp {
        services: Option<Services>,
    }
    impl Component for DriverComp {
        fn set_services(&mut self, services: &Services) -> Result<()> {
            services.register_uses_port("solver", "math.Integrate")?;
            self.services = Some(services.clone());
            Ok(())
        }
    }

    fn wired() -> (Framework, Services) {
        let fw = Framework::new();
        fw.add_component("integrator", &mut IntegratorComp).unwrap();
        let mut driver = DriverComp { services: None };
        fw.add_component("driver", &mut driver).unwrap();
        fw.connect("driver", "solver", "integrator", "integrator").unwrap();
        (fw, driver.services.unwrap())
    }

    #[test]
    fn port_invocation_is_a_library_call() {
        let (_fw, services) = wired();
        let port: Arc<dyn Integrate> = services.get_port("solver").unwrap();
        assert_eq!(port.integrate(0.0, 2.0), 2.0);
    }

    #[test]
    fn unconnected_port_errors() {
        let fw = Framework::new();
        let mut driver = DriverComp { services: None };
        fw.add_component("driver", &mut driver).unwrap();
        let r: Result<Arc<dyn Integrate>> = driver.services.unwrap().get_port("solver");
        assert!(matches!(r, Err(FrameworkError::NotConnected { .. })));
    }

    #[test]
    fn type_mismatch_rejected_at_connect() {
        let fw = Framework::new();
        fw.add_component("integrator", &mut IntegratorComp).unwrap();
        struct WrongUser;
        impl Component for WrongUser {
            fn set_services(&mut self, s: &Services) -> Result<()> {
                s.register_uses_port("solver", "mesh.Refine")
            }
        }
        fw.add_component("user", &mut WrongUser).unwrap();
        let r = fw.connect("user", "solver", "integrator", "integrator");
        assert!(matches!(r, Err(FrameworkError::PortTypeMismatch { .. })));
    }

    #[test]
    fn double_connect_rejected_and_disconnect_allows_rewire() {
        let (fw, _services) = wired();
        let r = fw.connect("driver", "solver", "integrator", "integrator");
        assert!(matches!(r, Err(FrameworkError::AlreadyConnected { .. })));
        fw.disconnect("driver", "solver").unwrap();
        fw.connect("driver", "solver", "integrator", "integrator").unwrap();
    }

    #[test]
    fn missing_pieces_error_cleanly() {
        let fw = Framework::new();
        assert!(matches!(
            fw.connect("ghost", "a", "ghost2", "b"),
            Err(FrameworkError::ComponentNotFound { .. })
        ));
        fw.add_component("integrator", &mut IntegratorComp).unwrap();
        assert!(matches!(
            fw.connect("integrator", "nope", "integrator", "integrator"),
            Err(FrameworkError::PortNotFound { .. })
        ));
        assert!(matches!(fw.run_go("integrator"), Err(FrameworkError::PortNotFound { .. })));
    }

    #[test]
    fn go_ports_run_individually_and_concurrently() {
        static COUNTER: AtomicI32 = AtomicI32::new(0);
        struct Worker(i32);
        impl GoPort for Worker {
            fn go(&self) -> Result<i32> {
                COUNTER.fetch_add(1, Ordering::SeqCst);
                Ok(self.0)
            }
        }
        struct WorkerComp(i32);
        impl Component for WorkerComp {
            fn set_services(&mut self, s: &Services) -> Result<()> {
                let go: Arc<dyn GoPort> = Arc::new(Worker(self.0));
                s.add_provides_port("go", GO_PORT_TYPE, go)
            }
        }
        let fw = Framework::new();
        fw.add_component("a", &mut WorkerComp(1)).unwrap();
        fw.add_component("b", &mut WorkerComp(2)).unwrap();
        assert_eq!(fw.run_go("a").unwrap(), 1);
        let results = fw.run_all_go();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "a");
        assert_eq!(*results[1].1.as_ref().unwrap(), 2);
        assert_eq!(COUNTER.load(Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_instance_names_rejected() {
        let fw = Framework::new();
        fw.add_component("x", &mut IntegratorComp).unwrap();
        fw.add_component("x", &mut IntegratorComp).unwrap();
    }
}
