//! Framework error types.

use std::fmt;

use mxn_runtime::RuntimeError;

/// Errors raised by framework operations (component wiring and port use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkError {
    /// Named component is not registered.
    ComponentNotFound {
        /// The component instance name looked up.
        component: String,
    },
    /// A port name was not found on a component.
    PortNotFound {
        /// Component owning (or expected to own) the port.
        component: String,
        /// The missing port name.
        port: String,
    },
    /// Uses/provides SIDL port types differ.
    PortTypeMismatch {
        /// The uses side's declared port type.
        uses_type: String,
        /// The provides side's registered port type.
        provides_type: String,
    },
    /// A uses port was fetched before being connected.
    NotConnected {
        /// Component whose uses port is dangling.
        component: String,
        /// The unconnected uses port name.
        port: String,
    },
    /// A uses port was connected twice.
    AlreadyConnected {
        /// Component whose uses port is already wired.
        component: String,
        /// The doubly-connected port name.
        port: String,
    },
    /// The Rust type requested from a port handle does not match the
    /// registered implementation.
    PortDowncast {
        /// The port whose handle failed to downcast.
        port: String,
        /// The requested Rust type.
        requested: &'static str,
    },
    /// The provider answered with a typed NACK: it does not implement the
    /// requested method id. Authoritative — retrying cannot help.
    MethodNotFound {
        /// The unknown method id.
        method: u32,
    },
    /// The server answered with a typed `Overloaded` NACK: admission
    /// control shed the request instead of queueing it unboundedly. The
    /// carried queue depth lets retry backoff scale with observed load.
    Overloaded {
        /// The method id of the shed call.
        method: u32,
        /// The shard's queue depth observed when the request was shed.
        queue_depth: u32,
    },
    /// A policy-governed RMI call used up all its attempts without seeing a
    /// response (the provider may still have executed the call).
    RetriesExhausted {
        /// The method id of the failing call.
        method: u32,
        /// Total attempts made (first try + retries).
        attempts: u32,
        /// The error from the final attempt.
        last: RuntimeError,
    },
    /// An underlying messaging failure.
    Runtime(RuntimeError),
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::ComponentNotFound { component } => {
                write!(f, "component `{component}` not found")
            }
            FrameworkError::PortNotFound { component, port } => {
                write!(f, "port `{port}` not found on component `{component}`")
            }
            FrameworkError::PortTypeMismatch { uses_type, provides_type } => write!(
                f,
                "port type mismatch: uses side wants `{uses_type}`, provides side offers \
                 `{provides_type}`"
            ),
            FrameworkError::NotConnected { component, port } => {
                write!(f, "uses port `{port}` of `{component}` is not connected")
            }
            FrameworkError::AlreadyConnected { component, port } => {
                write!(f, "uses port `{port}` of `{component}` is already connected")
            }
            FrameworkError::PortDowncast { port, requested } => {
                write!(f, "port `{port}` does not hold a `{requested}`")
            }
            FrameworkError::MethodNotFound { method } => {
                write!(f, "remote service does not implement method {method}")
            }
            FrameworkError::Overloaded { method, queue_depth } => {
                write!(f, "server shed RMI method {method} under load (queue depth {queue_depth})")
            }
            FrameworkError::RetriesExhausted { method, attempts, last } => write!(
                f,
                "RMI method {method} failed after {attempts} attempt(s); last error: {last}"
            ),
            FrameworkError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for FrameworkError {}

impl From<RuntimeError> for FrameworkError {
    fn from(e: RuntimeError) -> Self {
        FrameworkError::Runtime(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FrameworkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_parties() {
        let e = FrameworkError::PortTypeMismatch {
            uses_type: "solvers.Linear".into(),
            provides_type: "mesh.Refine".into(),
        };
        let s = e.to_string();
        assert!(s.contains("solvers.Linear") && s.contains("mesh.Refine"));
    }

    #[test]
    fn runtime_errors_convert() {
        let e: FrameworkError = RuntimeError::Aborted.into();
        assert_eq!(e, FrameworkError::Runtime(RuntimeError::Aborted));
    }
}
