//! A Scientific IDL (SIDL) subset parser.
//!
//! "Interfaces in the CCA are specified with the Scientific Interface
//! Definition Language (SIDL)" (paper §2.1), and both SciRun2 and DCA
//! derive their PRMI glue from SIDL extensions: SciRun2 marks methods
//! `independent` or `collective` (§4.2), DCA marks arguments `parallel`
//! and lets the stub generator add the communicator argument (§4.3).
//!
//! This module parses that dialect:
//!
//! ```text
//! interface Solver {
//!     collective double solve(in double tol, parallel inout array<double, 2> x);
//!     independent int rank_of(in int key);
//!     oneway void log(in string message);
//! }
//! ```
//!
//! and enforces the paper's stated rules — e.g. "One-way methods must not
//! have any return value (that includes arguments with the out
//! attribute)". Methods are numbered in declaration order, giving the
//! method ids the RMI layers dispatch on.

use std::fmt;

/// SIDL types in the supported subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidlType {
    /// No value (return type only).
    Void,
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Long,
    /// Double-precision float.
    Double,
    /// Boolean.
    Bool,
    /// Character string.
    String_,
    /// N-dimensional array of an element type.
    Array {
        /// Element type.
        elem: Box<SidlType>,
        /// Dimensionality (≥ 1).
        dim: usize,
    },
}

impl fmt::Display for SidlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SidlType::Void => write!(f, "void"),
            SidlType::Int => write!(f, "int"),
            SidlType::Long => write!(f, "long"),
            SidlType::Double => write!(f, "double"),
            SidlType::Bool => write!(f, "bool"),
            SidlType::String_ => write!(f, "string"),
            SidlType::Array { elem, dim } => write!(f, "array<{elem}, {dim}>"),
        }
    }
}

/// Argument intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// Caller → callee.
    In,
    /// Callee → caller.
    Out,
    /// Both directions.
    InOut,
}

/// How the method is invoked across the parallel port (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationMode {
    /// One-to-one, serial semantics (the default).
    Independent,
    /// All-to-all with ghost invocations/returns.
    Collective,
    /// Fire-and-forget; no results of any kind.
    Oneway,
}

/// One declared argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgSpec {
    /// Argument name.
    pub name: String,
    /// Declared type.
    pub ty: SidlType,
    /// Data-flow intent.
    pub intent: Intent,
    /// Marked with DCA's `parallel` keyword: a decomposed argument that
    /// the framework must redistribute.
    pub parallel: bool,
}

/// One declared method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name.
    pub name: String,
    /// Dispatch id (declaration order).
    pub id: u32,
    /// Invocation mode.
    pub mode: InvocationMode,
    /// Return type.
    pub ret: SidlType,
    /// Arguments in declaration order.
    pub args: Vec<ArgSpec>,
}

impl MethodSpec {
    /// Does any argument carry parallel data?
    pub fn has_parallel_args(&self) -> bool {
        self.args.iter().any(|a| a.parallel)
    }
}

/// A parsed interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceSpec {
    /// Interface (port type) name.
    pub name: String,
    /// Methods in declaration order.
    pub methods: Vec<MethodSpec>,
}

impl InterfaceSpec {
    /// Looks a method up by name.
    pub fn method(&self, name: &str) -> Option<&MethodSpec> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A parse error with a human-readable description and the offending
/// token position (in tokens, not bytes — the grammar is whitespace-
/// insensitive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidlError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SidlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIDL parse error: {}", self.message)
    }
}

impl std::error::Error for SidlError {}

fn err<T>(message: impl Into<String>) -> Result<T, SidlError> {
    Err(SidlError { message: message.into() })
}

/// Tokenizer: identifiers/keywords, integers, punctuation. `//` comments
/// run to end of line.
fn tokenize(src: &str) -> Result<Vec<String>, SidlError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '/' {
            chars.next();
            if chars.peek() == Some(&'/') {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                return err("stray '/'");
            }
        } else if c.is_alphanumeric() || c == '_' {
            let mut tok = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' {
                    tok.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(tok);
        } else if "{}(),<>;".contains(c) {
            out.push(c.to_string());
            chars.next();
        } else {
            return err(format!("unexpected character '{c}'"));
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<String, SidlError> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t.ok_or(SidlError { message: "unexpected end of input".into() })
    }

    fn expect(&mut self, want: &str) -> Result<(), SidlError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            err(format!("expected '{want}', found '{got}'"))
        }
    }

    fn parse_type(&mut self) -> Result<SidlType, SidlError> {
        let t = self.next()?;
        Ok(match t.as_str() {
            "void" => SidlType::Void,
            "int" => SidlType::Int,
            "long" => SidlType::Long,
            "double" => SidlType::Double,
            "bool" => SidlType::Bool,
            "string" => SidlType::String_,
            "array" => {
                self.expect("<")?;
                let elem = self.parse_type()?;
                if elem == SidlType::Void {
                    return err("array of void");
                }
                let dim = if self.peek() == Some(",") {
                    self.next()?;
                    let d = self.next()?;
                    d.parse::<usize>()
                        .ok()
                        .filter(|&d| d >= 1)
                        .ok_or(SidlError { message: format!("bad array dim '{d}'") })?
                } else {
                    1
                };
                self.expect(">")?;
                SidlType::Array { elem: Box::new(elem), dim }
            }
            other => return err(format!("unknown type '{other}'")),
        })
    }

    fn parse_arg(&mut self) -> Result<ArgSpec, SidlError> {
        let mut parallel = false;
        if self.peek() == Some("parallel") {
            self.next()?;
            parallel = true;
        }
        let intent = match self.next()?.as_str() {
            "in" => Intent::In,
            "out" => Intent::Out,
            "inout" => Intent::InOut,
            other => return err(format!("expected intent (in/out/inout), found '{other}'")),
        };
        let ty = self.parse_type()?;
        if parallel && !matches!(ty, SidlType::Array { .. }) {
            return err("only array arguments may be 'parallel'");
        }
        let name = self.parse_ident()?;
        Ok(ArgSpec { name, ty, intent, parallel })
    }

    fn parse_ident(&mut self) -> Result<String, SidlError> {
        let t = self.next()?;
        let mut chars = t.chars();
        let first_ok = chars.next().is_some_and(|c| c.is_alphabetic() || c == '_');
        if first_ok && t.chars().all(|c| c.is_alphanumeric() || c == '_') {
            Ok(t)
        } else {
            err(format!("expected identifier, found '{t}'"))
        }
    }

    fn parse_method(&mut self, id: u32) -> Result<MethodSpec, SidlError> {
        let mode = match self.peek() {
            Some("independent") => {
                self.next()?;
                InvocationMode::Independent
            }
            Some("collective") => {
                self.next()?;
                InvocationMode::Collective
            }
            Some("oneway") => {
                self.next()?;
                InvocationMode::Oneway
            }
            _ => InvocationMode::Independent,
        };
        let ret = self.parse_type()?;
        let name = self.parse_ident()?;
        self.expect("(")?;
        let mut args = Vec::new();
        if self.peek() != Some(")") {
            loop {
                args.push(self.parse_arg()?);
                if self.peek() == Some(",") {
                    self.next()?;
                } else {
                    break;
                }
            }
        }
        self.expect(")")?;
        self.expect(";")?;

        // The paper's one-way rule: no return value, no out/inout args.
        if mode == InvocationMode::Oneway {
            if ret != SidlType::Void {
                return err(format!("one-way method '{name}' must return void"));
            }
            if args.iter().any(|a| a.intent != Intent::In) {
                return err(format!("one-way method '{name}' must not have out/inout arguments"));
            }
        }
        Ok(MethodSpec { name, id, mode, ret, args })
    }
}

/// Parses one `interface { … }` declaration.
pub fn parse_interface(src: &str) -> Result<InterfaceSpec, SidlError> {
    let mut p = Parser { toks: tokenize(src)?, pos: 0 };
    p.expect("interface")?;
    let name = p.parse_ident()?;
    p.expect("{")?;
    let mut methods = Vec::new();
    while p.peek() != Some("}") {
        let id = methods.len() as u32;
        let m = p.parse_method(id)?;
        if methods.iter().any(|x: &MethodSpec| x.name == m.name) {
            return err(format!("duplicate method '{}'", m.name));
        }
        methods.push(m);
    }
    p.expect("}")?;
    if p.peek().is_some() {
        return err("trailing tokens after interface");
    }
    Ok(InterfaceSpec { name, methods })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOLVER: &str = r#"
        interface Solver {
            // Collective solve with a redistributed parallel argument.
            collective double solve(in double tol, parallel inout array<double, 2> x);
            independent int rank_of(in int key);
            oneway void log(in string message);
            bool is_ready();
        }
    "#;

    #[test]
    fn parses_the_dialect() {
        let spec = parse_interface(SOLVER).unwrap();
        assert_eq!(spec.name, "Solver");
        assert_eq!(spec.methods.len(), 4);

        let solve = spec.method("solve").unwrap();
        assert_eq!(solve.id, 0);
        assert_eq!(solve.mode, InvocationMode::Collective);
        assert_eq!(solve.ret, SidlType::Double);
        assert_eq!(solve.args.len(), 2);
        assert!(!solve.args[0].parallel);
        assert_eq!(solve.args[0].intent, Intent::In);
        assert!(solve.args[1].parallel);
        assert_eq!(solve.args[1].intent, Intent::InOut);
        assert_eq!(solve.args[1].ty, SidlType::Array { elem: Box::new(SidlType::Double), dim: 2 });
        assert!(solve.has_parallel_args());

        let log = spec.method("log").unwrap();
        assert_eq!(log.mode, InvocationMode::Oneway);
        assert_eq!(log.id, 2);
        assert!(!log.has_parallel_args());

        // Default mode is independent.
        assert_eq!(spec.method("is_ready").unwrap().mode, InvocationMode::Independent);
    }

    #[test]
    fn method_ids_follow_declaration_order() {
        let spec = parse_interface(SOLVER).unwrap();
        let ids: Vec<u32> = spec.methods.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn oneway_with_return_rejected() {
        let e = parse_interface("interface I { oneway int bad(); }").unwrap_err();
        assert!(e.message.contains("void"), "{e}");
    }

    #[test]
    fn oneway_with_out_arg_rejected() {
        // The paper: "One-way methods must not have any return value (that
        // includes arguments with the out attribute)."
        let e = parse_interface("interface I { oneway void bad(out int x); }").unwrap_err();
        assert!(e.message.contains("out"), "{e}");
    }

    #[test]
    fn parallel_scalar_rejected() {
        let e = parse_interface("interface I { void f(parallel in double x); }").unwrap_err();
        assert!(e.message.contains("array"), "{e}");
    }

    #[test]
    fn duplicate_methods_rejected() {
        let e = parse_interface("interface I { void f(); void f(); }").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn default_array_dim_is_one() {
        let spec = parse_interface("interface I { void f(in array<int> v); }").unwrap();
        assert_eq!(
            spec.methods[0].args[0].ty,
            SidlType::Array { elem: Box::new(SidlType::Int), dim: 1 }
        );
    }

    #[test]
    fn syntax_errors_are_located() {
        assert!(parse_interface("interface I { void f( }").is_err());
        assert!(parse_interface("interface I { flubber f(); }").is_err());
        assert!(parse_interface("interface I { void f() }").is_err(), "missing semicolon");
        assert!(parse_interface("interface { void f(); }").is_err(), "missing name");
        assert!(parse_interface("interface I { void f(); } extra").is_err());
        assert!(parse_interface("interface I { void f(in array<void> v); }").is_err());
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let spec =
            parse_interface("interface   X{// comment\nvoid f ( ) ;\n// another\n}").unwrap();
        assert_eq!(spec.name, "X");
        assert_eq!(spec.methods.len(), 1);
    }

    #[test]
    fn types_display_round_trip() {
        let t = SidlType::Array { elem: Box::new(SidlType::Double), dim: 3 };
        assert_eq!(t.to_string(), "array<double, 3>");
    }
}
