//! Distributed-framework ports: RMI over an inter-communicator.
//!
//! "In contrast, components in a distributed framework each run in
//! different sets of processes … port invocations become a refined form of
//! Remote Method Invocation" (paper §2.1, Figure 2 right). This module is
//! the *serial* RMI substrate — request/response envelopes, a server loop,
//! a client handle, and one-way methods. The parallel (collective)
//! semantics of PRMI are layered on top by the `mxn-prmi` crate.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mxn_runtime::{
    splitmix64, unit, Comm, InterComm, MsgSize, Result as RtResult, RuntimeError, Src,
};

use crate::error::{FrameworkError, Result};

/// Tag carrying RMI requests.
pub const RMI_REQ_TAG: i32 = 0x524d; // "RM"
/// Tag carrying RMI responses.
pub const RMI_RESP_TAG: i32 = 0x5252; // "RR"
/// Reserved method id requesting server shutdown.
pub const METHOD_SHUTDOWN: u32 = u32::MAX;
/// `call_id` of a NACK response: the server received a request it could not
/// decode (corrupt or mistyped) and is asking the sender to retry.
pub const NACK_CALL_ID: u64 = u64::MAX;

/// How often a blocked server re-checks client liveness, so a client that
/// dies without sending its shutdown does not wedge the serve loop.
const SERVE_LIVENESS_POLL: Duration = Duration::from_millis(25);

/// Process-wide idempotency-token source. Token 0 means "no token": the
/// server only deduplicates requests that carry a non-zero token, so plain
/// (unretried) calls never pay for or collide in the dedup table.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A type-erased argument or result with explicit wire-size accounting.
///
/// The wrapped value is `Sync` so envelopes carrying payloads (requests,
/// responses) can travel as shared multicast envelopes — one allocation
/// fanned out to every rank of a parallel component.
pub struct AnyPayload {
    value: Box<dyn Any + Send + Sync>,
    bytes: usize,
    /// Present on payloads built with [`AnyPayload::replicable`]: lets the
    /// PRMI layer duplicate the marshalled value for ghost invocations and
    /// ghost return values.
    replicator: Option<std::sync::Arc<dyn Fn() -> AnyPayload + Send + Sync>>,
}

impl AnyPayload {
    /// Wraps a value, capturing its wire size.
    pub fn new<T: Any + Send + Sync + MsgSize>(value: T) -> Self {
        let bytes = value.msg_size();
        AnyPayload { value: Box::new(value), bytes, replicator: None }
    }

    /// Wraps a clonable value so the payload can be duplicated — required
    /// for collective-call results that may fan out as ghost return values
    /// (more callers than providers).
    pub fn replicable<T: Any + Send + Sync + MsgSize + Clone>(value: T) -> Self {
        let proto = value.clone();
        let bytes = value.msg_size();
        AnyPayload {
            value: Box::new(value),
            bytes,
            replicator: Some(std::sync::Arc::new(move || AnyPayload::replicable(proto.clone()))),
        }
    }

    /// Returns the payload's replicator, if it was built with
    /// [`AnyPayload::replicable`].
    pub fn take_replicator(&self) -> Option<std::sync::Arc<dyn Fn() -> AnyPayload + Send + Sync>> {
        self.replicator.clone()
    }

    /// Duplicates the payload, if it was built with
    /// [`AnyPayload::replicable`]. The copy is itself replicable.
    pub fn replicate(&self) -> Option<AnyPayload> {
        self.replicator.as_ref().map(|rep| rep())
    }

    /// Wire size of the wrapped value.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Whether the wrapped value is a `T` (peek without consuming — used by
    /// callers to recognize typed NACK payloads like [`MethodNotFound`]
    /// before committing to a downcast).
    pub fn is<T: 'static>(&self) -> bool {
        self.value.is::<T>()
    }

    /// Recovers the wrapped value.
    pub fn downcast<T: 'static>(self) -> Result<T> {
        self.value.downcast::<T>().map(|b| *b).map_err(|_| FrameworkError::PortDowncast {
            port: "<rmi payload>".to_string(),
            requested: std::any::type_name::<T>(),
        })
    }
}

impl MsgSize for AnyPayload {
    fn msg_size(&self) -> usize {
        self.bytes
    }
}

/// An RMI request envelope.
pub struct RmiRequest {
    /// Method selector on the remote port.
    pub method: u32,
    /// Client-side correlation id.
    pub call_id: u64,
    /// Idempotency token: non-zero on policy-governed (retryable) calls.
    /// Requests with the same `(sender, token)` pair are executed at most
    /// once by the server; 0 disables deduplication.
    pub token: u64,
    /// One-way methods expect no response (paper §2.4).
    pub oneway: bool,
    /// The marshalled argument.
    pub arg: AnyPayload,
}

impl MsgSize for RmiRequest {
    fn msg_size(&self) -> usize {
        4 + 8 + 8 + 1 + self.arg.msg_size()
    }
}

/// An RMI response envelope.
pub struct RmiResponse {
    /// Correlates with [`RmiRequest::call_id`].
    pub call_id: u64,
    /// The marshalled return value.
    pub result: AnyPayload,
}

impl MsgSize for RmiResponse {
    fn msg_size(&self) -> usize {
        8 + self.result.msg_size()
    }
}

/// Typed NACK payload a server returns when a request names a method id the
/// service does not implement. Callers recognize it with
/// [`AnyPayload::is`] and surface [`FrameworkError::MethodNotFound`]
/// instead of a downcast error — and the provider keeps serving instead of
/// unwinding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodNotFound {
    /// The unknown method id the client asked for.
    pub method: u32,
}

impl MsgSize for MethodNotFound {
    fn msg_size(&self) -> usize {
        4
    }
}

/// Why an [`Overloaded`] NACK shed the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Admission control refused the request outright: the shard's
    /// in-flight budget was exhausted when the request arrived.
    AdmissionFull,
    /// The request was admitted but aged out of the shard queue before an
    /// executor reached it (`ServePolicy::queue_deadline`).
    QueueDeadline,
}

/// Typed NACK payload a server returns when admission control sheds a
/// request instead of queueing it unboundedly. Carries the shard's queue
/// depth at shed time so the client's [`CallPolicy`] can scale its retry
/// backoff with *observed* load rather than guessing — a depth-1 blip and
/// a thousand-deep pileup warrant very different pauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Shard queue depth (admitted, not-yet-dispatched requests) observed
    /// at the moment the request was shed.
    pub queue_depth: u32,
    /// Whether the request was refused at admission or expired in queue.
    pub reason: ShedReason,
}

impl MsgSize for Overloaded {
    fn msg_size(&self) -> usize {
        4 + 1
    }
}

/// Outcome of one [`RemoteService::dispatch`].
///
/// `Reply` carries the marshalled result (dropped for one-way methods);
/// `MethodNotFound` tells the serve loop to NACK the caller with a typed
/// [`MethodNotFound`] payload. A misbehaving client can therefore never
/// take down a provider: an unknown method id is an answered error, not a
/// panic in the serve loop.
pub enum Dispatch {
    /// The method executed; here is its marshalled result.
    Reply(AnyPayload),
    /// The service does not implement the requested method id.
    MethodNotFound,
}

impl From<AnyPayload> for Dispatch {
    fn from(p: AnyPayload) -> Self {
        Dispatch::Reply(p)
    }
}

/// A provides-port implementation servable over RMI: dispatch by method id.
pub trait RemoteService: Send + Sync {
    /// Handles one invocation. One-way methods still return a payload; it
    /// is dropped by the server. Return [`Dispatch::MethodNotFound`] for
    /// method ids the service does not implement — never panic.
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch;
}

/// Batch-aware extension of [`RemoteService`]: the serving plane hands a
/// whole per-method request batch to the service in one call, letting
/// implementations amortize per-invocation overhead (shared lock
/// acquisition, vectorized math, one allocation for N results).
///
/// The default implementation falls back to item-by-item
/// [`RemoteService::dispatch`], so opting in is one empty `impl` block;
/// overriding it must preserve the contract that **result `i` answers
/// argument `i`** — the plane demultiplexes replies by position.
pub trait BatchService: RemoteService {
    /// Dispatches a batch of same-method invocations. Must return exactly
    /// `args.len()` outcomes, position-aligned with the arguments.
    fn dispatch_batch(&self, method: u32, args: Vec<AnyPayload>) -> Vec<Dispatch> {
        args.into_iter().map(|arg| self.dispatch(method, arg)).collect()
    }
}

/// Statistics from one [`serve`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests handled (excluding shutdowns).
    pub calls: usize,
    /// Of which one-way.
    pub oneway_calls: usize,
    /// Retransmitted requests suppressed by idempotency-token dedup.
    pub duplicate_requests: usize,
    /// Undecodable (corrupt or mistyped) requests answered with a NACK.
    pub nacks: usize,
    /// Requests naming an unimplemented method id, answered with a typed
    /// [`MethodNotFound`] payload.
    pub method_not_found: usize,
    /// Remote ranks that died before sending their shutdown.
    pub dead_clients: usize,
}

/// Runs a provider rank's server loop: handle requests from any remote
/// rank until every remote rank has sent a shutdown. This is the
/// "component blocked waiting for remote port invocations" state of §2.4.
///
/// The loop is robust to a lossy or failing client side:
///
/// * Requests carrying a non-zero idempotency token are executed **at most
///   once** per `(client, token)`; a retransmission re-sends the cached
///   response (when the first response's payload was built with
///   [`AnyPayload::replicable`]) instead of re-dispatching.
/// * A request that cannot be decoded (corrupted in flight, or not an
///   [`RmiRequest`]) is answered with a NACK response ([`NACK_CALL_ID`])
///   rather than unwinding the server.
/// * A client rank that dies without sending its shutdown is detected via
///   the liveness registry and counted as shut down, so the loop still
///   terminates.
pub fn serve(ic: &InterComm, service: &dyn RemoteService) -> Result<ServeStats> {
    // A response aimed at a client that just died is dropped silently (the
    // death is folded into `shut` at the next idle poll); a PeerDead caused
    // by the *server's own* scheduled death still propagates.
    let send_response = |dst: usize, resp: RmiResponse| -> Result<()> {
        match ic.send(dst, RMI_RESP_TAG, resp) {
            Err(RuntimeError::PeerDead { .. }) if ic.is_remote_dead(dst) => Ok(()),
            other => other.map_err(Into::into),
        }
    };
    let mut stats = ServeStats::default();
    let mut shut: HashSet<usize> = HashSet::new();
    // (client remote-rank, token) -> replicator of the cached response, for
    // two-way results built with `AnyPayload::replicable`. Entries live for
    // the duration of the serve loop (one coupling episode).
    type Replicator = std::sync::Arc<dyn Fn() -> AnyPayload + Send + Sync>;
    let mut seen: HashMap<(usize, u64), Option<Replicator>> = HashMap::new();
    while shut.len() < ic.remote_size() {
        let (req, info) = match ic.recv_timeout_with_info::<RmiRequest>(
            Src::Any,
            RMI_REQ_TAG,
            SERVE_LIVENESS_POLL,
        ) {
            Ok(v) => v,
            Err(RuntimeError::Timeout { .. }) | Err(RuntimeError::PeerDead { .. }) => {
                // Idle: fold ranks that died shutdown-less into `shut`.
                for r in 0..ic.remote_size() {
                    if ic.is_remote_dead(r) && shut.insert(r) {
                        stats.dead_clients += 1;
                    }
                }
                continue;
            }
            Err(RuntimeError::Corrupt { src, .. })
            | Err(RuntimeError::TypeMismatch { src, .. }) => {
                stats.nacks += 1;
                send_response(
                    src,
                    RmiResponse { call_id: NACK_CALL_ID, result: AnyPayload::new(()) },
                )?;
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        if req.method == METHOD_SHUTDOWN {
            shut.insert(info.src);
            continue;
        }
        if req.token != 0 {
            if let Some(cached) = seen.get(&(info.src, req.token)) {
                stats.duplicate_requests += 1;
                if !req.oneway {
                    if let Some(replicate) = cached {
                        send_response(
                            info.src,
                            RmiResponse { call_id: req.call_id, result: replicate() },
                        )?;
                    }
                }
                continue;
            }
        }
        let (result, found) = match service.dispatch(req.method, req.arg) {
            Dispatch::Reply(p) => (p, true),
            Dispatch::MethodNotFound => {
                stats.method_not_found += 1;
                // Replicable so a retransmission re-fetches the same NACK
                // from the dedup cache.
                (AnyPayload::replicable(MethodNotFound { method: req.method }), false)
            }
        };
        mxn_trace::emit_instant(
            mxn_trace::EventId::RmiServe,
            [req.method as u64, req.call_id, info.src as u64, u64::from(req.oneway)],
        );
        if req.token != 0 {
            seen.insert((info.src, req.token), result.take_replicator());
        }
        if found {
            stats.calls += 1;
            if req.oneway {
                stats.oneway_calls += 1;
            }
        }
        if !req.oneway {
            send_response(info.src, RmiResponse { call_id: req.call_id, result })?;
        }
    }
    Ok(stats)
}

/// Retry/deadline policy for a synchronous RMI call over a lossy or
/// failing transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallPolicy {
    /// How long one attempt waits for the response before retrying.
    pub deadline: Duration,
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Pause before the first retry; doubles on each further retry.
    pub backoff: Duration,
    /// Deterministic jitter seed for the retry pauses. `None` sleeps the
    /// exact `backoff` schedule; `Some(seed)` draws each pause uniformly
    /// from `[backoff/2, backoff)` using the seed and the attempt number,
    /// so replaying the same seed (typically `Process::fault_seed()`)
    /// replays the same pauses while distinct ranks decorrelate.
    pub jitter: Option<u64>,
    /// Whether collective PRMI calls made under this policy may heal the
    /// intercommunicator (revoke, shrink to survivors) and retry the same
    /// call sequence after a failed commit vote. Plain point-to-point RMI
    /// ignores this flag.
    pub recover: bool,
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy {
            deadline: Duration::from_millis(200),
            max_retries: 3,
            backoff: Duration::from_millis(5),
            jitter: None,
            recover: false,
        }
    }
}

impl CallPolicy {
    /// Returns this policy with the jitter seed set (builder style). Pass
    /// `Process::fault_seed()` to tie retry pacing to the fault plane's
    /// replayable RNG.
    pub fn seeded(mut self, seed: Option<u64>) -> Self {
        self.jitter = seed;
        self
    }

    /// Returns this policy with collective-call recovery enabled.
    pub fn recovering(mut self) -> Self {
        self.recover = true;
        self
    }

    /// The pause before retry `attempt` (0-based) given the doubled `base`
    /// backoff for that attempt: `base` exactly without a jitter seed,
    /// otherwise a deterministic draw from `[base/2, base)`.
    pub fn retry_pause(&self, base: Duration, attempt: u32) -> Duration {
        match self.jitter {
            None => base,
            Some(seed) => {
                let draw = unit(splitmix64(seed ^ (u64::from(attempt) + 1)));
                let half = base.as_secs_f64() / 2.0;
                Duration::from_secs_f64(half + half * draw)
            }
        }
    }

    /// Load-scaling factor for a backoff pause given the queue depth an
    /// [`Overloaded`] NACK reported: `1 + ⌊log₂(depth + 1)⌋`, capped at
    /// 16×. Logarithmic so the pause tracks the *order of magnitude* of
    /// the pileup (depth 1 → 2×, depth 1000 → 10×) without any single
    /// client stalling for minutes; purely arithmetic, so the same
    /// observed depth always yields the same factor (determinism is
    /// preserved end to end — the jitter draw stays seeded).
    pub fn load_factor(queue_depth: u32) -> u32 {
        (u32::BITS - queue_depth.saturating_add(1).leading_zeros()).min(16)
    }

    /// The pause before retry `attempt` when the previous attempt was shed
    /// with an [`Overloaded`] NACK carrying `queue_depth`: the base backoff
    /// stretched by [`CallPolicy::load_factor`], then jittered exactly as
    /// [`CallPolicy::retry_pause`].
    pub fn retry_pause_loaded(&self, base: Duration, attempt: u32, queue_depth: u32) -> Duration {
        self.retry_pause(base.saturating_mul(Self::load_factor(queue_depth)), attempt)
    }
}

/// Client handle to one remote provider rank's port.
pub struct RemotePort {
    provider: usize,
    next_call: AtomicU64,
}

impl RemotePort {
    /// Handle addressing remote-local rank `provider`.
    pub fn to_rank(provider: usize) -> Self {
        RemotePort { provider, next_call: AtomicU64::new(0) }
    }

    /// The one-to-one PRMI pairing of Damevski's model (paper §2.4): caller
    /// rank `k` talks to provider rank `k % remote_size`.
    pub fn one_to_one(ic: &InterComm) -> Self {
        Self::to_rank(ic.local_rank() % ic.remote_size())
    }

    /// The provider rank this handle addresses.
    pub fn provider(&self) -> usize {
        self.provider
    }

    /// Synchronous RMI: marshal `arg`, block for the result.
    pub fn call<A, R>(&self, ic: &InterComm, method: u32, arg: A) -> Result<R>
    where
        A: Any + Send + Sync + MsgSize,
        R: 'static,
    {
        assert_ne!(method, METHOD_SHUTDOWN, "shutdown is sent via RemotePort::shutdown");
        let call_id = self.next_call.fetch_add(1, Ordering::Relaxed);
        let _span = mxn_trace::span(
            mxn_trace::EventId::RmiCall,
            [method as u64, call_id, self.provider as u64, 0],
        );
        ic.send(
            self.provider,
            RMI_REQ_TAG,
            RmiRequest { method, call_id, token: 0, oneway: false, arg: AnyPayload::new(arg) },
        )?;
        loop {
            let resp: RmiResponse = ic.recv(self.provider, RMI_RESP_TAG)?;
            // Skip leftovers of earlier retried calls (duplicate responses)
            // and NACKs; FIFO guarantees ours eventually arrives.
            if resp.call_id == call_id {
                if resp.result.is::<MethodNotFound>() {
                    return Err(FrameworkError::MethodNotFound { method });
                }
                if resp.result.is::<Overloaded>() {
                    let shed: Overloaded = resp.result.downcast()?;
                    return Err(FrameworkError::Overloaded {
                        method,
                        queue_depth: shed.queue_depth,
                    });
                }
                return resp.result.downcast::<R>();
            }
        }
    }

    /// Synchronous RMI under a [`CallPolicy`]: retransmits the request with
    /// the same idempotency token until a response arrives, the provider
    /// dies, or the attempt budget runs out.
    ///
    /// The token makes retries safe: a provider that already executed the
    /// call (but whose response was lost) re-sends the cached result instead
    /// of dispatching again — exactly-once execution, at-least-once
    /// delivery. For the cached re-send to carry the real value, the
    /// service must build its results with [`AnyPayload::replicable`].
    ///
    /// `arg` must be `Clone` so every attempt can re-marshal it.
    pub fn call_with_policy<A, R>(
        &self,
        ic: &InterComm,
        method: u32,
        arg: A,
        policy: CallPolicy,
    ) -> Result<R>
    where
        A: Any + Send + Sync + MsgSize + Clone,
        R: 'static,
    {
        assert_ne!(method, METHOD_SHUTDOWN, "shutdown is sent via RemotePort::shutdown");
        let call_id = self.next_call.fetch_add(1, Ordering::Relaxed);
        let _span = mxn_trace::span(
            mxn_trace::EventId::RmiCall,
            [method as u64, call_id, self.provider as u64, 0],
        );
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let mut backoff = policy.backoff;
        let mut last = RuntimeError::timeout(
            format!("RMI response (method {method})"),
            Duration::ZERO,
            Src::Rank(self.provider),
            RMI_RESP_TAG.into(),
        );
        // Queue depth carried by the most recent `Overloaded` shed, if the
        // last failure was a shed rather than a timeout: scales the next
        // pause and selects the terminal error.
        let mut shed_depth: Option<u32> = None;
        for attempt in 0..=policy.max_retries {
            ic.send(
                self.provider,
                RMI_REQ_TAG,
                RmiRequest {
                    method,
                    call_id,
                    token,
                    oneway: false,
                    arg: AnyPayload::new(arg.clone()),
                },
            )
            .map_err(FrameworkError::Runtime)?; // PeerDead fails fast
            let deadline = Instant::now() + policy.deadline;
            shed_depth = None;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match ic.recv_timeout::<RmiResponse>(self.provider, RMI_RESP_TAG, remaining) {
                    // A MethodNotFound NACK is authoritative: no retry can
                    // make the provider grow the method, so fail fast.
                    Ok(resp) if resp.call_id == call_id => {
                        if resp.result.is::<MethodNotFound>() {
                            return Err(FrameworkError::MethodNotFound { method });
                        }
                        // An Overloaded shed is retryable — the server did
                        // not execute (or cache) the call — but the pause
                        // must scale with the depth the NACK reported.
                        if resp.result.is::<Overloaded>() {
                            let shed: Overloaded = resp.result.downcast()?;
                            shed_depth = Some(shed.queue_depth);
                            break;
                        }
                        return resp.result.downcast::<R>();
                    }
                    // Stale duplicate of an earlier call, or a NACK asking
                    // us to retransmit: either way keep draining until our
                    // deadline, then retry.
                    Ok(_) => continue,
                    Err(e @ RuntimeError::Timeout { .. }) => {
                        last = e;
                        break;
                    }
                    // A response corrupted in flight: the retransmission
                    // will fetch the provider's cached copy.
                    Err(RuntimeError::Corrupt { .. }) => continue,
                    Err(e) => return Err(e.into()), // PeerDead etc. fail fast
                }
            }
            std::thread::sleep(match shed_depth {
                Some(depth) => policy.retry_pause_loaded(backoff, attempt, depth),
                None => policy.retry_pause(backoff, attempt),
            });
            backoff = backoff.saturating_mul(2);
        }
        match shed_depth {
            Some(queue_depth) => Err(FrameworkError::Overloaded { method, queue_depth }),
            None => Err(FrameworkError::RetriesExhausted {
                method,
                attempts: policy.max_retries + 1,
                last,
            }),
        }
    }

    /// One-way RMI: "the calling component continues execution immediately,
    /// without waiting for the remote invocation to complete" (§2.4).
    /// One-way methods must not return values.
    pub fn call_oneway<A>(&self, ic: &InterComm, method: u32, arg: A) -> Result<()>
    where
        A: Any + Send + Sync + MsgSize,
    {
        assert_ne!(method, METHOD_SHUTDOWN, "shutdown is sent via RemotePort::shutdown");
        let call_id = self.next_call.fetch_add(1, Ordering::Relaxed);
        let _span = mxn_trace::span(
            mxn_trace::EventId::RmiCall,
            [method as u64, call_id, self.provider as u64, 1],
        );
        ic.send(
            self.provider,
            RMI_REQ_TAG,
            RmiRequest { method, call_id, token: 0, oneway: true, arg: AnyPayload::new(arg) },
        )?;
        Ok(())
    }

    /// Tells the provider this client rank is done (the server exits once
    /// every remote rank has done so).
    pub fn shutdown(&self, ic: &InterComm) -> Result<()> {
        ic.send(
            self.provider,
            RMI_REQ_TAG,
            RmiRequest {
                method: METHOD_SHUTDOWN,
                call_id: u64::MAX,
                token: 0,
                oneway: true,
                arg: AnyPayload::new(()),
            },
        )?;
        Ok(())
    }
}

/// Tells *every* provider rank this client rank is done — required when
/// clients fan out over several providers.
pub fn shutdown_all(ic: &InterComm) -> Result<()> {
    for p in 0..ic.remote_size() {
        RemotePort::to_rank(p).shutdown(ic)?;
    }
    Ok(())
}

/// Provider side: rank 0 publishes the provider program's port names to
/// every user rank (a minimal distributed-framework directory).
pub fn publish_port_names(ic: &InterComm, local: &Comm, names: &[&str]) -> RtResult<()> {
    if local.rank() == 0 {
        let list: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        for r in 0..ic.remote_size() {
            ic.send(r, RMI_RESP_TAG, list.clone())?;
        }
    }
    Ok(())
}

/// User side: every rank receives the provider's published port names.
pub fn receive_port_names(ic: &InterComm) -> RtResult<Vec<String>> {
    ic.recv(0, RMI_RESP_TAG)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_runtime::Universe;

    /// A counter service: method 0 = add(delta) -> new total,
    /// method 1 (one-way) = reset.
    struct Counter(parking_lot::Mutex<i64>);
    impl RemoteService for Counter {
        fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
            match method {
                0 => {
                    let delta: i64 = arg.downcast().unwrap();
                    let mut v = self.0.lock();
                    *v += delta;
                    AnyPayload::new(*v).into()
                }
                1 => {
                    *self.0.lock() = 0;
                    AnyPayload::new(()).into()
                }
                _ => Dispatch::MethodNotFound,
            }
        }
    }

    #[test]
    fn call_response_roundtrip() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = RemotePort::to_rank(0);
                assert_eq!(port.call::<i64, i64>(ic, 0, 5).unwrap(), 5);
                assert_eq!(port.call::<i64, i64>(ic, 0, 7).unwrap(), 12);
                port.shutdown(ic).unwrap();
            } else {
                let svc = Counter(parking_lot::Mutex::new(0));
                let stats = serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 2);
                assert_eq!(stats.oneway_calls, 0);
            }
        });
    }

    #[test]
    fn oneway_does_not_block() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = RemotePort::to_rank(0);
                port.call::<i64, i64>(ic, 0, 100).unwrap();
                port.call_oneway::<i64>(ic, 1, 0).unwrap(); // reset, fire-and-forget
                                                            // A later two-way call observes the reset (FIFO ordering).
                assert_eq!(port.call::<i64, i64>(ic, 0, 1).unwrap(), 1);
                port.shutdown(ic).unwrap();
            } else {
                let svc = Counter(parking_lot::Mutex::new(0));
                let stats = serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.oneway_calls, 1);
            }
        });
    }

    #[test]
    fn many_clients_one_server() {
        Universe::run(&[3, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = RemotePort::to_rank(0);
                for _ in 0..4 {
                    port.call::<i64, i64>(ic, 0, 1).unwrap();
                }
                port.shutdown(ic).unwrap();
            } else {
                let svc = Counter(parking_lot::Mutex::new(0));
                let stats = serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 12);
                assert_eq!(*svc.0.lock(), 12);
            }
        });
    }

    #[test]
    fn one_to_one_pairing_spreads_clients() {
        Universe::run(&[4, 2], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = RemotePort::one_to_one(ic);
                assert_eq!(port.provider(), ctx.comm.rank() % 2);
                port.call::<i64, i64>(ic, 0, 1).unwrap();
                shutdown_all(ic).unwrap();
            } else {
                let svc = Counter(parking_lot::Mutex::new(0));
                let stats = serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 2, "each provider gets its paired callers");
            }
        });
    }

    #[test]
    fn port_name_directory() {
        Universe::run(&[2, 2], |_, ctx| {
            if ctx.program == 1 {
                publish_port_names(ctx.intercomm(0), &ctx.comm, &["field", "control"]).unwrap();
            } else {
                let names = receive_port_names(ctx.intercomm(1)).unwrap();
                assert_eq!(names, vec!["field".to_string(), "control".to_string()]);
            }
        });
    }

    #[test]
    fn unknown_method_is_nacked_not_fatal() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = RemotePort::to_rank(0);
                // Unknown method: a typed error, and the server survives.
                let e = port.call::<i64, i64>(ic, 99, 5).unwrap_err();
                assert!(matches!(e, FrameworkError::MethodNotFound { method: 99 }), "{e}");
                // Policy-governed calls fail fast instead of burning retries.
                let e = port.call_with_policy::<i64, i64>(ic, 7, 1, CallPolicy::default());
                assert!(matches!(e, Err(FrameworkError::MethodNotFound { method: 7 })));
                // The port still works afterwards.
                assert_eq!(port.call::<i64, i64>(ic, 0, 5).unwrap(), 5);
                port.shutdown(ic).unwrap();
            } else {
                let svc = Counter(parking_lot::Mutex::new(0));
                let stats = serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.method_not_found, 2);
                assert_eq!(stats.calls, 1, "unknown methods are not counted as calls");
            }
        });
    }

    #[test]
    fn payload_type_confusion_is_detected() {
        let p = AnyPayload::new(3.5f64);
        assert_eq!(p.bytes(), 8);
        assert!(p.downcast::<String>().is_err());
    }

    #[test]
    fn unseeded_policy_keeps_exact_backoff() {
        let policy = CallPolicy::default();
        let base = Duration::from_millis(40);
        assert_eq!(policy.retry_pause(base, 0), base);
        assert_eq!(policy.retry_pause(base, 7), base);
    }

    #[test]
    fn seeded_jitter_is_deterministic_and_bounded() {
        let a = CallPolicy::default().seeded(Some(0xfeed));
        let b = CallPolicy::default().seeded(Some(0xfeed));
        let c = CallPolicy::default().seeded(Some(0xbeef));
        let base = Duration::from_millis(40);
        let mut diverged = false;
        for attempt in 0..8 {
            let pa = a.retry_pause(base, attempt);
            assert_eq!(pa, b.retry_pause(base, attempt), "same seed replays the same pauses");
            assert!(pa >= base / 2 && pa < base, "pause {pa:?} outside [base/2, base)");
            diverged |= pa != c.retry_pause(base, attempt);
        }
        assert!(diverged, "distinct seeds should decorrelate");
    }

    #[test]
    fn seeded_jitter_varies_across_attempts() {
        let policy = CallPolicy::default().seeded(Some(1));
        let base = Duration::from_millis(64);
        let pauses: Vec<Duration> = (0..4).map(|i| policy.retry_pause(base, i)).collect();
        assert!(pauses.windows(2).any(|w| w[0] != w[1]), "{pauses:?}");
    }

    #[test]
    fn load_factor_tracks_order_of_magnitude() {
        assert_eq!(CallPolicy::load_factor(0), 1);
        assert_eq!(CallPolicy::load_factor(1), 2);
        assert_eq!(CallPolicy::load_factor(3), 3);
        assert_eq!(CallPolicy::load_factor(7), 4);
        assert_eq!(CallPolicy::load_factor(1000), 10);
        assert_eq!(CallPolicy::load_factor(u32::MAX), 16, "factor is capped");
    }

    #[test]
    fn loaded_pause_scales_with_depth_and_stays_deterministic() {
        let policy = CallPolicy::default().seeded(Some(0xfeed));
        let base = Duration::from_millis(8);
        for attempt in 0..4 {
            let calm = policy.retry_pause_loaded(base, attempt, 0);
            let deep = policy.retry_pause_loaded(base, attempt, 1 << 12);
            assert_eq!(calm, policy.retry_pause(base, attempt), "depth 0 is the plain schedule");
            assert!(deep > calm, "observed load must stretch the pause");
            assert_eq!(
                deep,
                policy.retry_pause_loaded(base, attempt, 1 << 12),
                "same depth + seed replays the same pause"
            );
            // Jitter bounds hold around the scaled base.
            let scaled = base * CallPolicy::load_factor(1 << 12);
            assert!(deep >= scaled / 2 && deep < scaled);
        }
    }

    impl BatchService for Counter {}

    #[test]
    fn batch_service_default_matches_item_dispatch() {
        let svc = Counter(parking_lot::Mutex::new(0));
        let outs =
            svc.dispatch_batch(0, (1..=4).map(|d| AnyPayload::new(d as i64)).collect::<Vec<_>>());
        assert_eq!(outs.len(), 4);
        let totals: Vec<i64> = outs
            .into_iter()
            .map(|d| match d {
                Dispatch::Reply(p) => p.downcast::<i64>().unwrap(),
                Dispatch::MethodNotFound => panic!("known method"),
            })
            .collect();
        assert_eq!(totals, vec![1, 3, 6, 10], "position i answers argument i, in order");
        let outs = svc.dispatch_batch(99, vec![AnyPayload::new(1i64)]);
        assert!(matches!(outs[0], Dispatch::MethodNotFound));
    }

    #[test]
    fn overloaded_nack_payload_is_recognizable() {
        let p = AnyPayload::replicable(Overloaded {
            queue_depth: 37,
            reason: ShedReason::AdmissionFull,
        });
        assert_eq!(p.bytes(), 5);
        assert!(p.is::<Overloaded>());
        let copy = p.replicate().expect("replicable");
        let shed: Overloaded = copy.downcast().unwrap();
        assert_eq!(shed.queue_depth, 37);
        assert_eq!(shed.reason, ShedReason::AdmissionFull);
    }
}
