//! The M×N component: the paper's §4.1 interface, packaged as a CCA port.
//!
//! [`MxnComponent`] ties together field registration, connection
//! management, self-connections (transpose-style redistributions within one
//! program), and id allocation. Wrapped in an `Arc<RwLock<…>>`, it
//! registers as a provides port of SIDL type [`MXN_PORT_TYPE`] — the
//! "paired M×N component instances co-located on both sides of a
//! connection" of Figure 3, with the inter-communicator as the out-of-band
//! channel between the pair.

use std::sync::Arc;

use parking_lot::RwLock;

use mxn_dad::{AccessMode, Dad, LocalArray};
use mxn_runtime::{Comm, InterComm};
use mxn_schedule::redistribute_within;

use crate::connection::{ConnectionKind, Direction, MxnConnection};
use crate::coordinator::follow_order;
use crate::error::Result;
use crate::field::{FieldData, FieldRegistry};

/// The SIDL port type of the M×N service.
pub const MXN_PORT_TYPE: &str = "cca.ports.MxnService";

/// One rank's instance of the M×N component.
pub struct MxnComponent {
    registry: FieldRegistry,
    next_conn: u32,
}

impl MxnComponent {
    /// Creates the component for this rank.
    pub fn new(rank: usize) -> Self {
        MxnComponent { registry: FieldRegistry::new(rank), next_conn: 0 }
    }

    /// Registers a field with existing local storage.
    pub fn register_field(
        &mut self,
        name: &str,
        dad: Dad,
        access: AccessMode,
        data: FieldData,
    ) -> Result<()> {
        self.registry.register(name, dad, access, data)
    }

    /// Registers a freshly allocated field; returns the storage handle.
    pub fn register_allocated(
        &mut self,
        name: &str,
        dad: Dad,
        access: AccessMode,
    ) -> Result<FieldData> {
        self.registry.register_allocated(name, dad, access)
    }

    /// The field registry (read access for diagnostics).
    pub fn registry(&self) -> &FieldRegistry {
        &self.registry
    }

    fn alloc_id(&mut self) -> u32 {
        let id = self.next_conn;
        self.next_conn += 1;
        id
    }

    /// Source-initiated export connection: couple `my_field` to the remote
    /// program's `peer_field`. Collective over the local program; the peer
    /// must call [`MxnComponent::accept_connection`].
    pub fn export_field(
        &mut self,
        ic: &InterComm,
        my_field: &str,
        peer_field: &str,
        kind: ConnectionKind,
    ) -> Result<MxnConnection> {
        let id = self.alloc_id();
        MxnConnection::initiate(
            ic,
            &self.registry,
            id,
            my_field,
            peer_field,
            Direction::Export,
            kind,
        )
    }

    /// Destination-initiated import ("pull") connection.
    pub fn import_field(
        &mut self,
        ic: &InterComm,
        my_field: &str,
        peer_field: &str,
        kind: ConnectionKind,
    ) -> Result<MxnConnection> {
        let id = self.alloc_id();
        MxnConnection::initiate(
            ic,
            &self.registry,
            id,
            my_field,
            peer_field,
            Direction::Import,
            kind,
        )
    }

    /// Accepts the next connection request arriving on `ic`.
    pub fn accept_connection(&mut self, ic: &InterComm) -> Result<MxnConnection> {
        let id = self.alloc_id();
        MxnConnection::accept(ic, &self.registry, id)
    }

    /// Waits for a third-party controller's order on `ctrl_ic` and executes
    /// it on `data_ic` (see [`crate::coordinator`]).
    pub fn follow_controller(
        &mut self,
        ctrl_ic: &InterComm,
        data_ic: &InterComm,
    ) -> Result<MxnConnection> {
        let id = self.alloc_id();
        follow_order(ctrl_ic, data_ic, &self.registry, id)
    }

    /// Self-connection: redistributes a field to a new decomposition within
    /// the same program (e.g. a transpose). Collective over `comm`; the
    /// field's descriptor and storage are replaced.
    pub fn self_redistribute(&mut self, comm: &Comm, field: &str, new_dad: Dad) -> Result<()> {
        let (old_dad, access, data) = {
            let entry = self.registry.get(field)?;
            (entry.dad().clone(), entry.access(), entry.data().clone())
        };
        let new_local: LocalArray<f64> = {
            let src = data.read();
            redistribute_within(comm, &old_dad, &new_dad, &src, (1 << 20) - 4)?
        };
        self.registry.unregister(field)?;
        self.registry.register(field, new_dad, access, Arc::new(RwLock::new(new_local)))
    }
}

/// Shared handle type under which the component registers as a CCA port.
pub type MxnPort = Arc<RwLock<MxnComponent>>;

/// Creates a port handle for this rank, ready for
/// `Services::add_provides_port(name, MXN_PORT_TYPE, handle)`.
pub fn mxn_port(rank: usize) -> MxnPort {
    Arc::new(RwLock::new(MxnComponent::new(rank)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::TransferOutcome;
    use mxn_dad::Extents;
    use mxn_framework::{Framework, Services};
    use mxn_runtime::{Universe, World};

    #[test]
    fn component_export_import_roundtrip() {
        Universe::run(&[2, 2], |_, ctx| {
            let rank = ctx.comm.rank();
            let src = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
            let dst = Dad::block(Extents::new([4, 4]), &[1, 2]).unwrap();
            let mut mxn = MxnComponent::new(rank);
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let data = mxn.register_allocated("f", src, AccessMode::ReadWrite).unwrap();
                {
                    let mut d = data.write();
                    let vals: Vec<(Vec<usize>, f64)> = d
                        .iter()
                        .map(|(idx, _)| {
                            let v = (idx[0] * 4 + idx[1]) as f64;
                            (idx, v)
                        })
                        .collect();
                    for (idx, v) in vals {
                        *d.get_mut(&idx).unwrap() = v;
                    }
                }
                let mut conn = mxn.export_field(ic, "f", "g", ConnectionKind::OneShot).unwrap();
                let out = conn.data_ready(ic, mxn.registry()).unwrap();
                assert!(matches!(out, TransferOutcome::Transferred { .. }));
            } else {
                let ic = ctx.intercomm(0);
                let data = mxn.register_allocated("g", dst, AccessMode::Write).unwrap();
                let mut conn = mxn.accept_connection(ic).unwrap();
                conn.data_ready(ic, mxn.registry()).unwrap();
                for (idx, &v) in data.read().iter() {
                    assert_eq!(v, (idx[0] * 4 + idx[1]) as f64);
                }
            }
        });
    }

    #[test]
    fn self_redistribution_transpose() {
        World::run(4, |p| {
            let comm = p.world();
            let rows = Dad::block(Extents::new([8, 8]), &[4, 1]).unwrap();
            let cols = Dad::block(Extents::new([8, 8]), &[1, 4]).unwrap();
            let mut mxn = MxnComponent::new(comm.rank());
            let data = Arc::new(RwLock::new(LocalArray::from_fn(&rows, comm.rank(), |idx| {
                (idx[0] * 8 + idx[1]) as f64
            })));
            mxn.register_field("u", rows, AccessMode::ReadWrite, data).unwrap();
            mxn.self_redistribute(comm, "u", cols.clone()).unwrap();
            let entry = mxn.registry().get("u").unwrap();
            assert_eq!(entry.dad(), &cols);
            for (idx, &v) in entry.data().read().iter() {
                assert_eq!(v, (idx[0] * 8 + idx[1]) as f64);
            }
        });
    }

    #[test]
    fn registers_as_cca_port() {
        struct MxnProviderComp {
            rank: usize,
        }
        impl mxn_framework::Component for MxnProviderComp {
            fn set_services(&mut self, s: &Services) -> mxn_framework::Result<()> {
                s.add_provides_port("mxn", MXN_PORT_TYPE, mxn_port(self.rank))
            }
        }
        let fw = Framework::new();
        fw.add_component("mxn", &mut MxnProviderComp { rank: 0 }).unwrap();

        struct UserComp {
            services: Option<Services>,
        }
        impl mxn_framework::Component for UserComp {
            fn set_services(&mut self, s: &Services) -> mxn_framework::Result<()> {
                s.register_uses_port("coupler", MXN_PORT_TYPE)?;
                self.services = Some(s.clone());
                Ok(())
            }
        }
        let mut user = UserComp { services: None };
        fw.add_component("app", &mut user).unwrap();
        fw.connect("app", "coupler", "mxn", "mxn").unwrap();

        let port: MxnPort = user.services.unwrap().get_port("coupler").unwrap();
        let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
        port.write().register_allocated("x", dad, AccessMode::ReadWrite).unwrap();
        assert_eq!(port.read().registry().names(), vec!["x".to_string()]);
    }
}
