//! Error types for the M×N component.

use std::fmt;

use mxn_runtime::RuntimeError;

/// Errors raised by M×N registration, connection and transfer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MxnError {
    /// A field name is already registered.
    FieldExists {
        /// The conflicting field name.
        field: String,
    },
    /// A field name is not registered.
    FieldNotFound {
        /// The missing field name.
        field: String,
    },
    /// Registered local storage does not match the descriptor.
    StorageMismatch {
        /// The field being registered.
        field: String,
        /// Elements the descriptor assigns to this rank.
        expected: usize,
        /// Elements the provided storage holds.
        actual: usize,
    },
    /// A field's access mode forbids the requested transfer direction.
    AccessDenied {
        /// The field involved.
        field: String,
        /// The access ("read" or "write") that was needed.
        needed: &'static str,
    },
    /// Source and destination descriptors disagree on global shape.
    ShapeMismatch {
        /// Human-readable description of the two shapes.
        detail: String,
    },
    /// A transfer was attempted on a closed (completed one-shot) connection.
    ConnectionClosed,
    /// Connection handshake produced inconsistent metadata.
    Handshake {
        /// What was inconsistent.
        detail: String,
    },
    /// A participating rank (on either side of the coupling) died during
    /// connection establishment or a collective transfer. Every surviving
    /// rank of the transfer reports this consistently — no partial silent
    /// delivery.
    PeerFailed {
        /// Rank of the failed participant as reported by the failing
        /// operation itself (the partner whose death was detected), not
        /// whichever dead rank a liveness scan happens to find first.
        rank: usize,
        /// Tag of the operation that detected the failure, when the error
        /// originated from a specific send/receive (`None` for failures
        /// found by a post-transfer liveness sweep or a commit vote).
        tag: Option<i32>,
    },
    /// A transactional transfer's collective commit vote failed: every
    /// surviving rank rolled the attempt back, so no rank holds partially
    /// delivered data. Heal the connection and retry the same sequence.
    TransferAborted {
        /// Recovery epoch the aborted attempt ran under.
        epoch: u64,
        /// Transfer sequence number that was rolled back.
        seq: u64,
    },
    /// Underlying messaging failure.
    Runtime(RuntimeError),
}

impl fmt::Display for MxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MxnError::FieldExists { field } => write!(f, "field `{field}` already registered"),
            MxnError::FieldNotFound { field } => write!(f, "field `{field}` not registered"),
            MxnError::StorageMismatch { field, expected, actual } => write!(
                f,
                "field `{field}`: descriptor assigns {expected} local elements but storage \
                 holds {actual}"
            ),
            MxnError::AccessDenied { field, needed } => {
                write!(f, "field `{field}` does not allow {needed} access")
            }
            MxnError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MxnError::ConnectionClosed => write!(f, "connection is closed"),
            MxnError::Handshake { detail } => write!(f, "connection handshake failed: {detail}"),
            MxnError::PeerFailed { rank, tag } => match tag {
                Some(tag) => {
                    write!(f, "rank {rank} failed during an M×N operation (detected on tag {tag})")
                }
                None => write!(f, "rank {rank} failed during an M×N operation"),
            },
            MxnError::TransferAborted { epoch, seq } => write!(
                f,
                "transfer {seq} (epoch {epoch}) rolled back: the collective commit vote failed"
            ),
            MxnError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for MxnError {}

impl From<RuntimeError> for MxnError {
    fn from(e: RuntimeError) -> Self {
        MxnError::Runtime(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MxnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = MxnError::StorageMismatch { field: "rho".into(), expected: 8, actual: 4 };
        let s = e.to_string();
        assert!(s.contains("rho") && s.contains('8') && s.contains('4'));
    }

    #[test]
    fn runtime_conversion() {
        let e: MxnError = RuntimeError::Aborted.into();
        assert_eq!(e, MxnError::Runtime(RuntimeError::Aborted));
    }

    #[test]
    fn peer_failed_reports_origin() {
        let s = MxnError::PeerFailed { rank: 3, tag: Some(42) }.to_string();
        assert!(s.contains('3') && s.contains("42"), "{s}");
        let s = MxnError::PeerFailed { rank: 3, tag: None }.to_string();
        assert!(s.contains('3') && !s.contains("tag"), "{s}");
    }

    #[test]
    fn transfer_aborted_names_epoch_and_seq() {
        let s = MxnError::TransferAborted { epoch: 2, seq: 7 }.to_string();
        assert!(s.contains('2') && s.contains('7') && s.contains("rolled back"), "{s}");
    }
}
