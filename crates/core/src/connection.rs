//! M×N connections and the `data_ready` transfer protocol.
//!
//! A connection couples one program's registered field to another
//! program's, across an inter-communicator. Its lifecycle reproduces §4.1
//! of the paper:
//!
//! * **Establishment** exchanges DADs: the initiating side's rank 0 sends a
//!   connection request (with its descriptor) to every remote rank; the
//!   accepting side validates field name, access mode and shape, and its
//!   rank 0 answers with its own descriptor. Both sides then build their
//!   communication schedules independently.
//! * **Transfers** follow the paper's `dataReady()` design: "each
//!   independent pairwise communication … is initiated when a single
//!   instance of the parallel source cohort invokes the dataReady() method
//!   … a matching dataReady() call at the corresponding destination cohort
//!   process completes the given pairwise communication … no additional
//!   synchronization barriers are required on either side."
//! * **One-shot** connections close after their single transfer;
//!   **persistent** connections recur automatically every `period`-th
//!   `data_ready` call (the CUMULVS channel model).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use mxn_dad::{AccessMode, Dad};
use mxn_runtime::{Comm, InterComm, MsgSize, ReconfigReport, RuntimeError, ShrinkReport, Src};
use mxn_schedule::{
    recv_redistributed_budgeted_cached_for_epoch, send_redistributed_budgeted_cached_for_epoch,
    RegionSchedule, ScheduleCache,
};
use mxn_trace::EventId;

use crate::elastic::redistribute_elastic;
use crate::error::{MxnError, Result};
use crate::field::FieldRegistry;

/// Rewrites a runtime-level failure detection (`PeerDead`) into the
/// coupling-level [`MxnError::PeerFailed`], preserving the rank the failing
/// operation itself reported and the tag it ran under — not whichever dead
/// rank a liveness scan happens to find first.
fn map_dead(tag: i32, e: MxnError) -> MxnError {
    match e {
        MxnError::Runtime(RuntimeError::PeerDead { rank }) => {
            MxnError::PeerFailed { rank, tag: Some(tag) }
        }
        other => other,
    }
}

/// Base of the tag space used by M×N data transfers.
const CONN_TAG_BASE: i32 = 1 << 20;
/// Tag carrying connection requests.
const REQ_TAG: i32 = CONN_TAG_BASE - 2;
/// Tag carrying connection acknowledgements.
const ACK_TAG: i32 = CONN_TAG_BASE - 1;
/// Tag carrying connection state to ranks joining an elastic expand.
const CONN_JOIN_TAG: i32 = CONN_TAG_BASE - 3;

/// The RMA window id an elastic rebind runs under. Salted with the
/// pre-bump epoch (so back-to-back reconfigurations of one connection
/// never alias) and the side bit (so the two programs' concurrent
/// redistribution windows over the same world stay disjoint).
fn elastic_win_id(tag: i32, epoch: u64, side: usize) -> u32 {
    (((tag as u32) ^ (epoch as u32).wrapping_add(1)) & 0x7ff) | ((side as u32) << 11)
}

/// Everything a joining rank needs to reconstruct its side of a live
/// connection: sent by the sponsor (old local rank 0) over the world
/// communicator *after* the membership expand commits, so an aborted
/// attempt leaks no connection state.
struct ConnState {
    field: String,
    /// The joining side's direction (same side as the sponsor).
    direction: Direction,
    kind: ConnectionKind,
    transactional: bool,
    tag: i32,
    /// The sponsor's epoch *before* the bump; the joiner bumps identically.
    epoch: u64,
    calls: u64,
    transfers: u64,
    /// Pre-expand descriptor of the joining side.
    my_dad: Dad,
    /// Pre-expand descriptor of the remote side.
    peer_dad: Dad,
    /// Pre-expand world ranks of the joining side, in local-rank order.
    old_local_group: Vec<usize>,
    /// Pre-expand world ranks of the remote side.
    old_remote_group: Vec<usize>,
}

impl MsgSize for ConnState {
    fn msg_size(&self) -> usize {
        self.field.len()
            + 1
            + self.kind.msg_size()
            + 1
            + 4
            + 3 * size_of::<u64>()
            + self.my_dad.descriptor_bytes()
            + self.peer_dad.descriptor_bytes()
            + (self.old_local_group.len() + self.old_remote_group.len()) * size_of::<usize>()
    }
}

/// Re-derives one side's descriptor for a changed membership: a pure
/// append grows it ([`Dad::expand`]), a subset re-decomposes over the
/// keepers ([`Dad::shrink`]), an unchanged group keeps it as-is.
fn resize_dad(dad: &Dad, old_group: &[usize], new_group: &[usize]) -> Result<Dad> {
    use std::cmp::Ordering;
    match new_group.len().cmp(&old_group.len()) {
        Ordering::Equal => Ok(dad.clone()),
        Ordering::Greater => {
            dad.expand(new_group.len()).map_err(|detail| MxnError::Handshake { detail })
        }
        Ordering::Less => {
            let keep = new_group
                .iter()
                .map(|w| {
                    old_group.iter().position(|x| x == w).ok_or_else(|| MxnError::Handshake {
                        detail: format!("kept rank {w} was not in the pre-contract group"),
                    })
                })
                .collect::<Result<Vec<usize>>>()?;
            dad.shrink(&keep).map_err(|detail| MxnError::Handshake { detail })
        }
    }
}

/// One-shot or persistent periodic coupling (paper §2.3, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionKind {
    /// Transfer exactly once, then close.
    OneShot,
    /// Transfer automatically on every `period`-th `data_ready` call.
    Persistent {
        /// Steps between transfers (≥ 1).
        period: u32,
    },
}

impl MsgSize for ConnectionKind {
    fn msg_size(&self) -> usize {
        5
    }
}

/// Which way data flows through this side of the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// This side is the source (sends on `data_ready`).
    Export,
    /// This side is the destination (receives on `data_ready`).
    Import,
}

impl Direction {
    /// The peer side's direction.
    pub fn opposite(&self) -> Direction {
        match self {
            Direction::Export => Direction::Import,
            Direction::Import => Direction::Export,
        }
    }
}

impl MsgSize for Direction {
    fn msg_size(&self) -> usize {
        1
    }
}

/// Connection request (initiator rank 0 → every acceptor rank).
pub struct ConnReq {
    /// The initiating program's connection id.
    pub initiator_id: u32,
    /// Field name *on the accepting side*.
    pub field: String,
    /// Transfer cadence.
    pub kind: ConnectionKind,
    /// The initiator's direction (acceptor takes the opposite).
    pub initiator_direction: Direction,
    /// The initiator's descriptor of the shared array.
    pub dad: Dad,
}

impl MsgSize for ConnReq {
    fn msg_size(&self) -> usize {
        4 + self.field.len() + self.kind.msg_size() + 1 + self.dad.descriptor_bytes()
    }
}

/// Connection acknowledgement (acceptor rank 0 → every initiator rank).
/// Carries either the acceptor's descriptor or a rejection, so a failed
/// validation on the accepting side surfaces as an error at the initiator
/// instead of a hang.
pub struct ConnAck {
    /// The accepting program's connection id.
    pub acceptor_id: u32,
    /// The acceptor's descriptor, or why it refused.
    pub body: std::result::Result<Dad, String>,
}

impl MsgSize for ConnAck {
    fn msg_size(&self) -> usize {
        4 + match &self.body {
            Ok(dad) => dad.descriptor_bytes(),
            Err(e) => e.len(),
        }
    }
}

/// What a `data_ready` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// A transfer ran; this rank moved `elements` values.
    Transferred {
        /// Elements sent or received by this rank.
        elements: usize,
    },
    /// A persistent connection's period was not due this call.
    Skipped,
    /// The connection has already completed (one-shot) .
    Closed,
}

/// One rank's handle to one side of an established M×N connection.
#[derive(Debug)]
pub struct MxnConnection {
    field: String,
    direction: Direction,
    kind: ConnectionKind,
    /// The descriptors the current schedule was built from, kept so a
    /// heal can re-derive survivor descriptors and rebuild the schedule.
    my_dad: Dad,
    peer_dad: Dad,
    schedule: RegionSchedule,
    tag: i32,
    /// Recovery epoch: 0 until the first heal, +1 per heal. Transfers from
    /// different epochs never mix — a heal revokes the old intercomm
    /// context, so in-flight messages from before the shrink are dropped.
    epoch: u64,
    /// When set, each due transfer is a transaction: data is staged, a
    /// collective commit vote runs over both sides, and the field is only
    /// updated (and the sequence number advanced) on a unanimous yes.
    transactional: bool,
    calls: u64,
    transfers: u64,
    closed: bool,
}

fn conn_tag(ic: &InterComm, my_id: u32, peer_id: u32) -> i32 {
    // Ids wrap modulo 2^12: with 16M combined values this only aliases a
    // connection created 4096 handshakes earlier on the same side, which
    // is necessarily closed (handshakes and transfers are ordered per
    // intercomm), so FIFO matching keeps reused tags unambiguous.
    let (my_id, peer_id) = (my_id % (1 << 12), peer_id % (1 << 12));
    let (id0, id1) = if ic.side() == 0 { (my_id, peer_id) } else { (peer_id, my_id) };
    CONN_TAG_BASE + ((id0 as i32) << 12 | id1 as i32)
}

impl MxnConnection {
    /// Initiates a connection for `my_field`, asking the remote side to
    /// couple its field named `peer_field`. Collective over the local
    /// program; the remote program must call [`MxnConnection::accept`].
    ///
    /// `my_id` must be a program-locally consistent counter value (every
    /// local rank passes the same id for the same connection).
    pub fn initiate(
        ic: &InterComm,
        registry: &FieldRegistry,
        my_id: u32,
        my_field: &str,
        peer_field: &str,
        direction: Direction,
        kind: ConnectionKind,
    ) -> Result<MxnConnection> {
        let entry = match direction {
            Direction::Export => registry.check_exportable(my_field)?,
            Direction::Import => registry.check_importable(my_field)?,
        };
        if let ConnectionKind::Persistent { period } = kind {
            if period == 0 {
                return Err(MxnError::Handshake { detail: "period must be ≥ 1".into() });
            }
        }
        if ic.local_rank() == 0 {
            for r in 0..ic.remote_size() {
                ic.send(
                    r,
                    REQ_TAG,
                    ConnReq {
                        initiator_id: my_id,
                        field: peer_field.to_string(),
                        kind,
                        initiator_direction: direction,
                        dad: entry.dad().clone(),
                    },
                )
                .map_err(|e| map_dead(REQ_TAG, e.into()))?;
            }
        }
        let ack: ConnAck = ic.recv(0, ACK_TAG).map_err(|e| map_dead(ACK_TAG, e.into()))?;
        let peer_dad = match ack.body {
            Ok(dad) => dad,
            Err(reason) => {
                return Err(MxnError::Handshake {
                    detail: format!("peer rejected the connection: {reason}"),
                })
            }
        };
        Self::finish(
            ic,
            registry,
            my_field,
            direction,
            kind,
            entry.dad().clone(),
            peer_dad,
            my_id,
            ack.acceptor_id,
        )
    }

    /// Accepts the next incoming connection request. Collective over the
    /// local program. `my_id` as in [`MxnConnection::initiate`].
    pub fn accept(ic: &InterComm, registry: &FieldRegistry, my_id: u32) -> Result<MxnConnection> {
        let req: ConnReq = ic.recv(0, REQ_TAG).map_err(|e| map_dead(REQ_TAG, e.into()))?;
        let direction = req.initiator_direction.opposite();
        let entry = match direction {
            Direction::Export => registry.check_exportable(&req.field),
            Direction::Import => registry.check_importable(&req.field),
        };
        let entry = match entry {
            Ok(e) => e,
            Err(err) => {
                // NACK every initiator rank so nobody hangs, then fail.
                if ic.local_rank() == 0 {
                    for r in 0..ic.remote_size() {
                        ic.send(
                            r,
                            ACK_TAG,
                            ConnAck { acceptor_id: my_id, body: Err(err.to_string()) },
                        )?;
                    }
                }
                return Err(err);
            }
        };
        if ic.local_rank() == 0 {
            for r in 0..ic.remote_size() {
                ic.send(r, ACK_TAG, ConnAck { acceptor_id: my_id, body: Ok(entry.dad().clone()) })?;
            }
        }
        Self::finish(
            ic,
            registry,
            &req.field,
            direction,
            req.kind,
            entry.dad().clone(),
            req.dad,
            my_id,
            req.initiator_id,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        ic: &InterComm,
        registry: &FieldRegistry,
        field: &str,
        direction: Direction,
        kind: ConnectionKind,
        my_dad: Dad,
        peer_dad: Dad,
        my_id: u32,
        peer_id: u32,
    ) -> Result<MxnConnection> {
        if !my_dad.conforms(&peer_dad) {
            return Err(MxnError::ShapeMismatch {
                detail: format!(
                    "local extents {:?} vs remote extents {:?}",
                    my_dad.extents().dims(),
                    peer_dad.extents().dims()
                ),
            });
        }
        let rank = registry.rank();
        let schedule = match direction {
            Direction::Export => RegionSchedule::for_sender(&my_dad, &peer_dad, rank),
            Direction::Import => RegionSchedule::for_receiver(&peer_dad, &my_dad, rank),
        };
        Ok(MxnConnection {
            field: field.to_string(),
            direction,
            kind,
            my_dad,
            peer_dad,
            schedule,
            tag: conn_tag(ic, my_id, peer_id),
            epoch: 0,
            transactional: false,
            calls: 0,
            transfers: 0,
            closed: false,
        })
    }

    /// The coupled field's name on this side.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// This side's direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The connection's cadence.
    pub fn kind(&self) -> ConnectionKind {
        self.kind
    }

    /// `(data_ready calls, transfers executed)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.calls, self.transfers)
    }

    /// Whether the connection has completed (one-shot already fired).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Current recovery epoch (0 = never healed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether transfers run transactionally.
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// Switches transactional transfers on or off. Both sides of the
    /// connection must agree (the commit vote is collective); the default
    /// is off, which keeps the legacy non-voting fast path.
    pub fn set_transactional(&mut self, on: bool) {
        self.transactional = on;
    }

    /// Number of peer ranks this rank exchanges messages with.
    pub fn num_partners(&self) -> usize {
        self.schedule.num_messages()
    }

    /// Declares this rank's local data consistent and "ready": runs this
    /// rank's independent pairwise sends or receives if a transfer is due.
    /// No global synchronization happens — pairs complete independently.
    pub fn data_ready(
        &mut self,
        ic: &InterComm,
        registry: &FieldRegistry,
    ) -> Result<TransferOutcome> {
        if self.closed {
            return Ok(TransferOutcome::Closed);
        }
        self.calls += 1;
        let due = match self.kind {
            ConnectionKind::OneShot => self.transfers == 0,
            ConnectionKind::Persistent { period } => (self.calls - 1).is_multiple_of(period as u64),
        };
        if !due {
            return Ok(TransferOutcome::Skipped);
        }
        if self.transactional {
            return self.transactional_transfer(ic, registry);
        }
        let entry = registry.get(&self.field)?;
        let moved = match self.direction {
            Direction::Export => {
                let data = entry.data().read();
                self.schedule.execute_send(ic, &data, self.tag)
            }
            Direction::Import => {
                let mut data = entry.data().write();
                self.schedule.execute_recv(ic, &mut data, self.tag)
            }
        };
        let elements = match moved {
            Ok(n) => n,
            Err(e) => return Err(map_dead(self.tag, e.into())),
        };
        // Consistent collective failure: even when this rank's own pairwise
        // schedule completed, a death anywhere in the coupling voids the
        // transfer, so every surviving rank reports the same outcome
        // instead of some ranks silently succeeding on partial data.
        if let Some(rank) = ic.any_dead() {
            return Err(MxnError::PeerFailed { rank, tag: None });
        }
        self.transfers += 1;
        if self.kind == ConnectionKind::OneShot {
            self.closed = true;
        }
        Ok(TransferOutcome::Transferred { elements })
    }

    /// One due transfer as a transaction. The import side *stages* each
    /// pairwise message instead of unpacking it; then both sides run a
    /// collective commit vote ([`InterComm::agree_all`]) on the reliable
    /// control channel. The decision is a pure function of the agreed
    /// value, so every survivor commits or rolls back identically — a
    /// transfer is never half-committed. On rollback the period slot is
    /// given back (`calls` is undone), so after [`MxnConnection::heal`]
    /// the next `data_ready` retries the same sequence number.
    fn transactional_transfer(
        &mut self,
        ic: &InterComm,
        registry: &FieldRegistry,
    ) -> Result<TransferOutcome> {
        let seq = self.transfers + 1;
        let entry = registry.get(&self.field)?;
        let mut staged: Vec<Vec<f64>> = Vec::new();
        let mut elements = 0usize;
        let mut failure: Option<MxnError> = None;
        match self.direction {
            Direction::Export => {
                let data = entry.data().read();
                match self.schedule.execute_send(ic, &data, self.tag) {
                    Ok(n) => elements = n,
                    Err(e) => failure = Some(map_dead(self.tag, e.into())),
                }
            }
            Direction::Import => {
                for pair in self.schedule.pairs() {
                    match ic.recv::<Vec<f64>>(pair.peer, self.tag) {
                        Ok(buf) => {
                            elements += buf.len();
                            staged.push(buf);
                        }
                        Err(e) => {
                            failure = Some(map_dead(self.tag, MxnError::Runtime(e)));
                            break;
                        }
                    }
                }
            }
        }
        let ok = failure.is_none() && ic.any_dead().is_none();
        let commit = ic.agree_all(ok).map_err(|e| map_dead(self.tag, e.into()))?;
        if commit {
            if self.direction == Direction::Import {
                let mut data = entry.data().write();
                for (i, buf) in staged.iter().enumerate() {
                    self.schedule.unpack_pair_from(i, &mut data, buf);
                }
            }
            self.transfers += 1;
            mxn_trace::emit_instant(EventId::Commit, [self.epoch, seq, 0, 0]);
            if self.kind == ConnectionKind::OneShot {
                self.closed = true;
            }
            Ok(TransferOutcome::Transferred { elements })
        } else {
            // Staged data is dropped untouched; the field still holds the
            // last committed transfer. Undo the call so the period slot is
            // re-offered when the caller retries after healing.
            self.calls -= 1;
            mxn_trace::emit_instant(EventId::Rollback, [self.epoch, seq, 0, 0]);
            Err(failure.unwrap_or(MxnError::TransferAborted { epoch: self.epoch, seq }))
        }
    }

    /// Collectively heals the connection after a rank death: revokes the
    /// failed intercomm context (dropping in-flight transfers from the old
    /// epoch), shrinks the intercomm to the survivors, re-derives both
    /// sides' descriptors over their survivor sets ([`Dad::shrink`]),
    /// rebinds this rank's field storage to the survivor decomposition and
    /// rebuilds the communication schedule. Every surviving rank of both
    /// programs must call this; returns the healed intercomm (use it for
    /// all subsequent `data_ready` calls) and the shrink report.
    ///
    /// The committed transfer count is untouched: a transfer rolled back
    /// just before the heal is retried — same sequence number — by the
    /// next `data_ready` on the healed intercomm. Data owned exclusively
    /// by dead ranks is lost (survivors' rebound storage holds zeros there
    /// until the next transfer overwrites it); see `FieldRegistry::rebind`.
    ///
    /// # Panics
    /// If called on a closed connection.
    pub fn heal(
        &mut self,
        ic: &InterComm,
        registry: &mut FieldRegistry,
    ) -> Result<(InterComm, ShrinkReport)> {
        assert!(!self.closed, "cannot heal a closed connection");
        let mut span = mxn_trace::span(EventId::Heal, [self.epoch + 1, 0, 0, 0]);
        ic.revoke();
        let (healed, report) = ic.shrink_with_report().map_err(|e| map_dead(self.tag, e.into()))?;
        let old_rank = self.schedule.rank();
        let new_rank = report
            .local_survivors
            .iter()
            .position(|&r| r == old_rank)
            .expect("a rank that reached heal() is a survivor");
        let my_dad = self
            .my_dad
            .shrink(&report.local_survivors)
            .map_err(|detail| MxnError::Handshake { detail })?;
        let peer_dad = self
            .peer_dad
            .shrink(&report.remote_survivors)
            .map_err(|detail| MxnError::Handshake { detail })?;
        registry.rebind(&self.field, my_dad.clone(), old_rank, new_rank)?;
        self.schedule = match self.direction {
            Direction::Export => RegionSchedule::for_sender(&my_dad, &peer_dad, new_rank),
            Direction::Import => RegionSchedule::for_receiver(&peer_dad, &my_dad, new_rank),
        };
        self.my_dad = my_dad;
        self.peer_dad = peer_dad;
        self.epoch += 1;
        span.set_end([
            self.epoch,
            report.local_survivors.len() as u64,
            report.remote_survivors.len() as u64,
            0,
        ]);
        Ok((healed, report))
    }

    /// Budget-aware `data_ready`: the pairwise transfer runs over a
    /// planned route from `cache` that respects the staging-buffer budget
    /// negotiated at plan time. Both sides of the coupling must use this
    /// path for the same rounds (the routed protocol has its own wire
    /// format). Routes and schedules are keyed on the descriptor
    /// fingerprints *and* the connection epoch: a heal or elastic
    /// reconfiguration bumps the epoch, which forces a fresh profile and
    /// plan even when a grow→shrink cycle returns to byte-identical
    /// descriptors — without the salt, a post-reconfiguration transfer
    /// silently reuses a route profiled for the old membership.
    pub fn data_ready_budgeted(
        &mut self,
        ic: &InterComm,
        registry: &FieldRegistry,
        cache: &ScheduleCache,
        budget_bytes: u64,
    ) -> Result<TransferOutcome> {
        if self.closed {
            return Ok(TransferOutcome::Closed);
        }
        self.calls += 1;
        let due = match self.kind {
            ConnectionKind::OneShot => self.transfers == 0,
            ConnectionKind::Persistent { period } => (self.calls - 1).is_multiple_of(period as u64),
        };
        if !due {
            return Ok(TransferOutcome::Skipped);
        }
        let entry = registry.get(&self.field)?;
        let moved = match self.direction {
            Direction::Export => {
                let data = entry.data().read();
                send_redistributed_budgeted_cached_for_epoch(
                    cache,
                    ic,
                    &self.my_dad,
                    &self.peer_dad,
                    &data,
                    self.tag,
                    budget_bytes,
                    self.epoch,
                )
            }
            Direction::Import => recv_redistributed_budgeted_cached_for_epoch::<f64>(
                cache,
                ic,
                &self.peer_dad,
                &self.my_dad,
                self.tag,
                budget_bytes,
                self.epoch,
            )
            .map(|arr| {
                let n = arr.len();
                *entry.data().write() = arr;
                n
            }),
        };
        let elements = match moved {
            Ok(n) => n,
            Err(e) => return Err(map_dead(self.tag, e.into())),
        };
        if let Some(rank) = ic.any_dead() {
            return Err(MxnError::PeerFailed { rank, tag: None });
        }
        self.transfers += 1;
        if self.kind == ConnectionKind::OneShot {
            self.closed = true;
        }
        Ok(TransferOutcome::Transferred { elements })
    }

    /// Collectively grows the coupling: admits `add_local` world ranks to
    /// this side and `add_remote` to the peer side (the membership-level
    /// [`InterComm::expand`] handshake), then re-decomposes both sides'
    /// descriptors over the larger groups, *spreads* this side's field
    /// onto the newcomers through a one-sided RMA window
    /// ([`redistribute_elastic`]) and rebuilds the transfer schedule.
    /// Every incumbent rank of both programs must call this; the admitted
    /// ranks must be parked in [`MxnConnection::join`]. Returns the grown
    /// intercomm — use it for all subsequent `data_ready` calls.
    ///
    /// The whole operation is transactional: if the membership vote fails
    /// (a newcomer died mid-handshake), every rank gets
    /// [`RuntimeError::ReconfigAborted`], the old intercomm stays valid,
    /// no connection state is sent, no data moves, and the epoch does not
    /// bump — retry with a healthy spare or keep running at the old size.
    ///
    /// # Panics
    /// If called on a closed connection.
    pub fn expand(
        &mut self,
        ic: &InterComm,
        world: &Comm,
        registry: &mut FieldRegistry,
        add_local: &[usize],
        add_remote: &[usize],
    ) -> Result<(InterComm, ReconfigReport)> {
        assert!(!self.closed, "cannot expand a closed connection");
        let (grown, report) =
            ic.expand(add_local, add_remote).map_err(|e| map_dead(self.tag, e.into()))?;
        if ic.local_rank() == 0 {
            for &w in add_local {
                world
                    .send(
                        w,
                        CONN_JOIN_TAG,
                        ConnState {
                            field: self.field.clone(),
                            direction: self.direction,
                            kind: self.kind,
                            transactional: self.transactional,
                            tag: self.tag,
                            epoch: self.epoch,
                            calls: self.calls,
                            transfers: self.transfers,
                            my_dad: self.my_dad.clone(),
                            peer_dad: self.peer_dad.clone(),
                            old_local_group: report.old_local_group.clone(),
                            old_remote_group: report.old_remote_group.clone(),
                        },
                    )
                    .map_err(|e| map_dead(CONN_JOIN_TAG, e.into()))?;
            }
        }
        self.elastic_rebind(ic.side(), world, registry, &report)?;
        Ok((grown, report))
    }

    /// Collectively shrinks the coupling *gracefully*: the ranks not in
    /// the keep lists are still alive, so — unlike [`MxnConnection::heal`]
    /// — their data is handed off through the RMA window before they
    /// retire and nothing is lost. Keep lists are this side's / the peer
    /// side's *local* ranks. Leavers get `None`, their connection handle
    /// closes, and their field registration is left untouched (stale).
    ///
    /// # Panics
    /// If called on a closed connection.
    pub fn contract(
        &mut self,
        ic: &InterComm,
        world: &Comm,
        registry: &mut FieldRegistry,
        keep_local_ranks: &[usize],
        keep_remote_ranks: &[usize],
    ) -> Result<(Option<InterComm>, ReconfigReport)> {
        assert!(!self.closed, "cannot contract a closed connection");
        let (shrunk, report) = ic
            .contract(keep_local_ranks, keep_remote_ranks)
            .map_err(|e| map_dead(self.tag, e.into()))?;
        self.elastic_rebind(ic.side(), world, registry, &report)?;
        Ok((shrunk, report))
    }

    /// The data-carrying half of an elastic reconfiguration, shared by
    /// grow and graceful shrink: resize both descriptors, move this
    /// side's field through the window, rebind storage and rebuild the
    /// schedule, bump the epoch. A leaver (not in the new group) serves
    /// its shard as a pure source and comes out closed.
    fn elastic_rebind(
        &mut self,
        side: usize,
        world: &Comm,
        registry: &mut FieldRegistry,
        report: &ReconfigReport,
    ) -> Result<()> {
        let new_my_dad =
            resize_dad(&self.my_dad, &report.old_local_group, &report.new_local_group)?;
        let new_peer_dad =
            resize_dad(&self.peer_dad, &report.old_remote_group, &report.new_remote_group)?;
        let me = world.rank();
        let old_rank = report.old_local_group.iter().position(|&r| r == me);
        let new_rank = report.new_local_group.iter().position(|&r| r == me);
        let win_id = elastic_win_id(self.tag, self.epoch, side);
        let entry = registry.get(&self.field)?;
        let data = entry.data().clone();
        let fresh = {
            let guard = data.read();
            redistribute_elastic(
                world,
                win_id,
                &self.my_dad,
                &new_my_dad,
                &report.old_local_group,
                &report.new_local_group,
                old_rank.map(|r| (r, &*guard)),
                new_rank,
            )?
        };
        match (new_rank, fresh) {
            (Some(nr), Some(arr)) => {
                registry.rebind_elastic(&self.field, new_my_dad.clone(), nr, arr)?;
                self.schedule = match self.direction {
                    Direction::Export => RegionSchedule::for_sender(&new_my_dad, &new_peer_dad, nr),
                    Direction::Import => {
                        RegionSchedule::for_receiver(&new_peer_dad, &new_my_dad, nr)
                    }
                };
            }
            _ => self.closed = true,
        }
        self.my_dad = new_my_dad;
        self.peer_dad = new_peer_dad;
        self.epoch += 1;
        Ok(())
    }

    /// A spare rank's entry into a live coupling. Blocks in
    /// [`InterComm::await_join`] until some connection's
    /// [`MxnConnection::expand`] admits this rank, receives the sponsor's
    /// connection state, takes part in the data redistribution (receiving
    /// its shard of the field), and returns a fully formed connection
    /// handle, intercomm, and field registry — from here on the newcomer
    /// is indistinguishable from an incumbent. The field is registered
    /// read-write so it can serve either direction.
    pub fn join(
        world: &Comm,
        timeout: Duration,
    ) -> Result<(MxnConnection, InterComm, FieldRegistry)> {
        let ic = InterComm::await_join(world, timeout)?;
        let st: ConnState = world
            .recv_timeout(Src::Any, CONN_JOIN_TAG, timeout)
            .map_err(|e| map_dead(CONN_JOIN_TAG, e.into()))?;
        let new_local_group = ic.local_group().to_vec();
        let new_remote_group = ic.remote_group().to_vec();
        let new_my_dad = resize_dad(&st.my_dad, &st.old_local_group, &new_local_group)?;
        let new_peer_dad = resize_dad(&st.peer_dad, &st.old_remote_group, &new_remote_group)?;
        let new_rank = ic.local_rank();
        let win_id = elastic_win_id(st.tag, st.epoch, ic.side());
        let fresh = redistribute_elastic(
            world,
            win_id,
            &st.my_dad,
            &new_my_dad,
            &st.old_local_group,
            &new_local_group,
            None,
            Some(new_rank),
        )?
        .expect("a joining rank always receives a shard");
        let mut registry = FieldRegistry::new(new_rank);
        registry.register(
            &st.field,
            new_my_dad.clone(),
            AccessMode::ReadWrite,
            Arc::new(RwLock::new(fresh)),
        )?;
        let schedule = match st.direction {
            Direction::Export => RegionSchedule::for_sender(&new_my_dad, &new_peer_dad, new_rank),
            Direction::Import => RegionSchedule::for_receiver(&new_peer_dad, &new_my_dad, new_rank),
        };
        let conn = MxnConnection {
            field: st.field,
            direction: st.direction,
            kind: st.kind,
            my_dad: new_my_dad,
            peer_dad: new_peer_dad,
            schedule,
            tag: st.tag,
            epoch: st.epoch + 1,
            transactional: st.transactional,
            calls: st.calls,
            transfers: st.transfers,
            closed: false,
        };
        Ok((conn, ic, registry))
    }

    /// CUMULVS-style *loose* synchronization for import connections:
    /// consumes every complete transfer already queued — without blocking
    /// — leaving the field holding the **newest** available data. Returns
    /// how many transfers were consumed (0 when nothing new arrived).
    ///
    /// This is the "variety of synchronization options" of §4.1 beyond
    /// tight periodic coupling: a visualization-style consumer polls at its
    /// own rate while the producer free-runs.
    ///
    /// # Panics
    /// If called on an export-side or closed connection.
    pub fn poll_latest(&mut self, ic: &InterComm, registry: &FieldRegistry) -> Result<u64> {
        assert_eq!(self.direction, Direction::Import, "poll_latest is import-side");
        assert!(!self.closed, "connection is closed");
        let entry = registry.get(&self.field)?;
        let mut rounds = 0;
        loop {
            // A transfer is consumable only when *every* partner's message
            // for the next round is present (messages per pair are FIFO,
            // so presence of one per partner = one complete round).
            let ready = self.schedule.pairs().iter().all(|p| ic.iprobe(p.peer, self.tag).is_some());
            if !ready || self.schedule.num_messages() == 0 {
                return Ok(rounds);
            }
            let mut data = entry.data().write();
            self.schedule
                .execute_recv(ic, &mut data, self.tag)
                .map_err(|e| map_dead(self.tag, e.into()))?;
            drop(data);
            self.transfers += 1;
            rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::{AccessMode, Extents, LocalArray};
    use mxn_runtime::Universe;
    use parking_lot::RwLock;
    use std::sync::Arc;

    fn src_dad() -> Dad {
        Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap()
    }

    fn dst_dad() -> Dad {
        Dad::block(Extents::new([6, 6]), &[1, 3]).unwrap()
    }

    fn seeded(dad: &Dad, rank: usize, offset: f64) -> crate::field::FieldData {
        Arc::new(RwLock::new(LocalArray::from_fn(dad, rank, |idx| {
            (idx[0] * 6 + idx[1]) as f64 + offset
        })))
    }

    #[test]
    fn one_shot_source_initiated() {
        Universe::run(&[2, 3], |_, ctx| {
            let rank = ctx.comm.rank();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut reg = FieldRegistry::new(rank);
                reg.register("rho", src_dad(), AccessMode::Read, seeded(&src_dad(), rank, 0.0))
                    .unwrap();
                let mut conn = MxnConnection::initiate(
                    ic,
                    &reg,
                    0,
                    "rho",
                    "rho_in",
                    Direction::Export,
                    ConnectionKind::OneShot,
                )
                .unwrap();
                assert_eq!(
                    conn.data_ready(ic, &reg).unwrap(),
                    TransferOutcome::Transferred { elements: 18 }
                );
                assert!(conn.is_closed());
                assert_eq!(conn.data_ready(ic, &reg).unwrap(), TransferOutcome::Closed);
            } else {
                let ic = ctx.intercomm(0);
                let mut reg = FieldRegistry::new(rank);
                let data = reg.register_allocated("rho_in", dst_dad(), AccessMode::Write).unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                assert_eq!(conn.direction(), Direction::Import);
                conn.data_ready(ic, &reg).unwrap();
                for (idx, &v) in data.read().iter() {
                    assert_eq!(v, (idx[0] * 6 + idx[1]) as f64);
                }
            }
        });
    }

    #[test]
    fn destination_initiated_pull() {
        // The destination side initiates ("M×N connections can be initiated
        // by either the source or destination components").
        Universe::run(&[2, 2], |_, ctx| {
            let rank = ctx.comm.rank();
            if ctx.program == 1 {
                let ic = ctx.intercomm(0);
                let mut reg = FieldRegistry::new(rank);
                let data = reg.register_allocated("mine", dst_dad0(), AccessMode::Write).unwrap();
                let mut conn = MxnConnection::initiate(
                    ic,
                    &reg,
                    0,
                    "mine",
                    "theirs",
                    Direction::Import,
                    ConnectionKind::OneShot,
                )
                .unwrap();
                conn.data_ready(ic, &reg).unwrap();
                for (idx, &v) in data.read().iter() {
                    assert_eq!(v, (idx[0] * 6 + idx[1]) as f64 + 5.0);
                }
            } else {
                let ic = ctx.intercomm(1);
                let mut reg = FieldRegistry::new(rank);
                reg.register(
                    "theirs",
                    src_dad(),
                    AccessMode::ReadWrite,
                    seeded(&src_dad(), rank, 5.0),
                )
                .unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                assert_eq!(conn.direction(), Direction::Export);
                conn.data_ready(ic, &reg).unwrap();
            }
        });
        fn dst_dad0() -> Dad {
            Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap()
        }
    }

    #[test]
    fn persistent_period_two() {
        Universe::run(&[1, 1], |_, ctx| {
            let kind = ConnectionKind::Persistent { period: 2 };
            let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut reg = FieldRegistry::new(0);
                let data: crate::field::FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&dad, 0, |_| 0.0)));
                reg.register("f", dad.clone(), AccessMode::Read, data.clone()).unwrap();
                let mut conn =
                    MxnConnection::initiate(ic, &reg, 0, "f", "f", Direction::Export, kind)
                        .unwrap();
                for step in 0..6u64 {
                    // Update source data each step.
                    {
                        let mut d = data.write();
                        for i in 0..4 {
                            *d.get_mut(&[i]).unwrap() = step as f64;
                        }
                    }
                    let out = conn.data_ready(ic, &reg).unwrap();
                    if step % 2 == 0 {
                        assert!(matches!(out, TransferOutcome::Transferred { elements: 4 }));
                    } else {
                        assert_eq!(out, TransferOutcome::Skipped);
                    }
                }
                assert_eq!(conn.stats(), (6, 3));
            } else {
                let ic = ctx.intercomm(0);
                let mut reg = FieldRegistry::new(0);
                let data = reg.register_allocated("f", dad, AccessMode::Write).unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                let mut received = Vec::new();
                for _ in 0..6 {
                    if let TransferOutcome::Transferred { .. } = conn.data_ready(ic, &reg).unwrap()
                    {
                        received.push(*data.read().get(&[0]).unwrap());
                    }
                }
                // Transfers happened at steps 0, 2, 4 of the source.
                assert_eq!(received, vec![0.0, 2.0, 4.0]);
            }
        });
    }

    #[test]
    fn access_mode_rejects_wrong_direction() {
        Universe::run(&[1, 1], |_, ctx| {
            let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
            let mut reg = FieldRegistry::new(0);
            reg.register_allocated("w", dad, AccessMode::Write).unwrap();
            if ctx.program == 0 {
                let r = MxnConnection::initiate(
                    ctx.intercomm(1),
                    &reg,
                    0,
                    "w",
                    "w",
                    Direction::Export,
                    ConnectionKind::OneShot,
                );
                assert!(matches!(r, Err(MxnError::AccessDenied { .. })));
            }
        });
    }

    #[test]
    fn shape_mismatch_detected_at_handshake() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
                let mut reg = FieldRegistry::new(0);
                reg.register_allocated("f", dad, AccessMode::Read).unwrap();
                let r = MxnConnection::initiate(
                    ctx.intercomm(1),
                    &reg,
                    0,
                    "f",
                    "f",
                    Direction::Export,
                    ConnectionKind::OneShot,
                );
                assert!(matches!(r, Err(MxnError::ShapeMismatch { .. })));
            } else {
                let dad = Dad::block(Extents::new([5]), &[1]).unwrap();
                let mut reg = FieldRegistry::new(0);
                reg.register_allocated("f", dad, AccessMode::Write).unwrap();
                let r = MxnConnection::accept(ctx.intercomm(0), &reg, 0);
                assert!(matches!(r, Err(MxnError::ShapeMismatch { .. })));
            }
        });
    }

    #[test]
    fn two_connections_do_not_cross_talk() {
        // Two couplings in opposite directions between the same programs.
        Universe::run(&[2, 2], |_, ctx| {
            let rank = ctx.comm.rank();
            let a = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
            let b = Dad::block(Extents::new([4, 4]), &[1, 2]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut reg = FieldRegistry::new(rank);
                reg.register("out", a.clone(), AccessMode::Read, seeded2(&a, rank, 100.0)).unwrap();
                let din = reg.register_allocated("in", a.clone(), AccessMode::Write).unwrap();
                let mut c1 = MxnConnection::initiate(
                    ic,
                    &reg,
                    0,
                    "out",
                    "in",
                    Direction::Export,
                    ConnectionKind::OneShot,
                )
                .unwrap();
                let mut c2 = MxnConnection::accept(ic, &reg, 1).unwrap();
                c1.data_ready(ic, &reg).unwrap();
                c2.data_ready(ic, &reg).unwrap();
                for (idx, &v) in din.read().iter() {
                    assert_eq!(v, (idx[0] * 4 + idx[1]) as f64 + 200.0);
                }
            } else {
                let ic = ctx.intercomm(0);
                let mut reg = FieldRegistry::new(rank);
                let din = reg.register_allocated("in", b.clone(), AccessMode::Write).unwrap();
                reg.register("out", b.clone(), AccessMode::Read, seeded2(&b, rank, 200.0)).unwrap();
                let mut c1 = MxnConnection::accept(ic, &reg, 0).unwrap();
                let mut c2 = MxnConnection::initiate(
                    ic,
                    &reg,
                    1,
                    "out",
                    "in",
                    Direction::Export,
                    ConnectionKind::OneShot,
                )
                .unwrap();
                c1.data_ready(ic, &reg).unwrap();
                c2.data_ready(ic, &reg).unwrap();
                for (idx, &v) in din.read().iter() {
                    assert_eq!(v, (idx[0] * 4 + idx[1]) as f64 + 100.0);
                }
            }
        });
        fn seeded2(dad: &Dad, rank: usize, off: f64) -> crate::field::FieldData {
            Arc::new(RwLock::new(LocalArray::from_fn(dad, rank, |idx| {
                (idx[0] * 4 + idx[1]) as f64 + off
            })))
        }
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use crate::field::FieldRegistry;
    use mxn_dad::{AccessMode, Extents, LocalArray};
    use mxn_runtime::Universe;
    use parking_lot::RwLock;
    use std::sync::Arc;

    fn src_dad() -> Dad {
        Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap()
    }

    fn dst_dad() -> Dad {
        Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap()
    }

    /// `(idx, step)`-coded value so each transfer's payload is unique.
    fn coded(idx: &[usize], step: f64) -> f64 {
        (idx[0] * 6 + idx[1]) as f64 + step * 100.0
    }

    fn refill(data: &crate::field::FieldData, step: f64) {
        let mut d = data.write();
        let idxs: Vec<Vec<usize>> = d.iter().map(|(i, _)| i).collect();
        for idx in idxs {
            *d.get_mut(&idx).unwrap() = coded(&idx, step);
        }
    }

    /// A transactional one-shot behaves like the legacy path when nothing
    /// fails: data lands, the connection closes, the commit advances seq.
    #[test]
    fn transactional_one_shot_commits_and_closes() {
        Universe::run(&[2, 3], |_, ctx| {
            let rank = ctx.comm.rank();
            let mut reg = FieldRegistry::new(rank);
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let data: crate::field::FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&src_dad(), rank, |idx| {
                        coded(idx, 1.0)
                    })));
                reg.register("f", src_dad(), AccessMode::Read, data).unwrap();
                let mut conn = MxnConnection::initiate(
                    ic,
                    &reg,
                    0,
                    "f",
                    "f",
                    Direction::Export,
                    ConnectionKind::OneShot,
                )
                .unwrap();
                conn.set_transactional(true);
                assert!(matches!(
                    conn.data_ready(ic, &reg).unwrap(),
                    TransferOutcome::Transferred { elements: 18 }
                ));
                assert!(conn.is_closed());
                assert_eq!(conn.epoch(), 0);
            } else {
                let dst = Dad::block(Extents::new([6, 6]), &[1, 3]).unwrap();
                let ic = ctx.intercomm(0);
                let data = reg.register_allocated("f", dst, AccessMode::Write).unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                conn.set_transactional(true);
                conn.data_ready(ic, &reg).unwrap();
                for (idx, &v) in data.read().iter() {
                    assert_eq!(v, coded(&idx, 1.0));
                }
            }
        });
    }

    /// The full self-healing cycle: a committed step, an importer death,
    /// a collective rollback (committed data untouched on every rank), a
    /// heal (shrink + survivor descriptors + rebound storage + rebuilt
    /// schedule), and a retried transfer of the *same* sequence number
    /// that completes over the survivors.
    #[test]
    fn transactional_rollback_then_heal_completes() {
        Universe::run(&[2, 2], |p, ctx| {
            let rank = ctx.comm.rank();
            let mut reg = FieldRegistry::new(rank);
            let kind = ConnectionKind::Persistent { period: 1 };
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let data: crate::field::FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&src_dad(), rank, |idx| {
                        coded(idx, 1.0)
                    })));
                reg.register("f", src_dad(), AccessMode::Read, data.clone()).unwrap();
                let mut conn =
                    MxnConnection::initiate(ic, &reg, 0, "f", "f", Direction::Export, kind)
                        .unwrap();
                conn.set_transactional(true);
                // Step 1 commits on every rank.
                conn.data_ready(ic, &reg).unwrap();
                p.world().barrier().unwrap();
                // World rank 3 (importer 1) kills itself after the barrier.
                while !p.is_dead(3) {
                    std::thread::yield_now();
                }
                // Step 2: the attempt must roll back collectively.
                refill(&data, 2.0);
                let err = conn.data_ready(ic, &reg).unwrap_err();
                assert!(
                    matches!(err, MxnError::PeerFailed { .. } | MxnError::TransferAborted { .. }),
                    "unexpected rollback error: {err}"
                );
                assert_eq!(conn.stats().1, 1, "seq 1 stays the last committed transfer");
                // Heal: shrink, survivor descriptors, rebuilt schedule.
                let (healed, report) = conn.heal(ic, &mut reg).unwrap();
                assert_eq!(report.local_survivors, vec![0, 1]);
                assert_eq!(report.remote_survivors, vec![0]);
                assert_eq!(conn.epoch(), 1);
                // Retry the same sequence over the healed intercomm.
                conn.data_ready(&healed, &reg).unwrap();
                assert_eq!(conn.stats().1, 2);
            } else if rank == 1 {
                // The importer that dies: participates in the committed
                // step, then drops dead.
                let ic = ctx.intercomm(0);
                let _data = reg.register_allocated("f", dst_dad(), AccessMode::Write).unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                conn.set_transactional(true);
                conn.data_ready(ic, &reg).unwrap();
                p.world().barrier().unwrap();
                p.kill_rank(p.rank());
            } else {
                // The surviving importer.
                let ic = ctx.intercomm(0);
                let data = reg.register_allocated("f", dst_dad(), AccessMode::Write).unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                conn.set_transactional(true);
                conn.data_ready(ic, &reg).unwrap();
                for (idx, &v) in data.read().iter() {
                    assert_eq!(v, coded(&idx, 1.0));
                }
                p.world().barrier().unwrap();
                while !p.is_dead(3) {
                    std::thread::yield_now();
                }
                let err = conn.data_ready(ic, &reg).unwrap_err();
                assert!(matches!(
                    err,
                    MxnError::PeerFailed { .. } | MxnError::TransferAborted { .. }
                ));
                // The rollback never touched the committed step-1 data.
                for (idx, &v) in data.read().iter() {
                    assert_eq!(v, coded(&idx, 1.0), "rollback preserved committed data");
                }
                let (healed, report) = conn.heal(ic, &mut reg).unwrap();
                assert_eq!(report.local_survivors, vec![0]);
                assert_eq!(report.remote_survivors, vec![0, 1]);
                assert_eq!(conn.epoch(), 1);
                conn.data_ready(&healed, &reg).unwrap();
                // The survivor now owns the whole array, filled with the
                // retried step-2 payload — nothing half-committed.
                let d = data.read();
                assert_eq!(d.len(), 36, "rebound storage covers the survivor share");
                for (idx, &v) in d.iter() {
                    assert_eq!(v, coded(&idx, 2.0));
                }
            }
        });
    }
}

#[cfg(test)]
mod elastic_tests {
    use super::*;
    use crate::field::{FieldData, FieldRegistry};
    use mxn_dad::{AccessMode, Extents, LocalArray};
    use mxn_runtime::{FaultConfig, World};
    use parking_lot::RwLock;
    use std::sync::Arc;
    use std::time::Duration;

    fn coded(idx: &[usize], step: f64) -> f64 {
        (idx[0] * 6 + idx[1]) as f64 + step * 100.0
    }

    /// Rewrites every locally held element with step-coded values, under
    /// whatever decomposition the storage currently has.
    fn refill(data: &FieldData, step: f64) {
        let mut d = data.write();
        let idxs: Vec<Vec<usize>> = d.iter().map(|(i, _)| i).collect();
        for idx in idxs {
            *d.get_mut(&idx).unwrap() = coded(&idx, step);
        }
    }

    fn check(data: &FieldData, step: f64) {
        let d = data.read();
        for (idx, &v) in d.iter() {
            assert_eq!(v, coded(&idx, step), "mismatch at {idx:?} (step {step})");
        }
    }

    /// The full elastic lifecycle on a live 2×2 coupling: an epoch at the
    /// original size, a grow to 3×3 (one spare joining each side, shards
    /// spread through the RMA window), an epoch at the grown size, a
    /// graceful contract back to 2×2 (leavers hand their data off and come
    /// out closed), and a final epoch — every transfer matching the
    /// fault-free oracle on the then-current decomposition.
    #[test]
    fn expand_then_contract_roundtrip_preserves_the_stream() {
        World::run(6, |p| {
            let world = p.world();
            let color = if p.rank() < 4 { 0 } else { -1 };
            let pair = world.split(color, 0).unwrap();
            if p.rank() >= 4 {
                // Spare capacity parks until the coupling grows onto it.
                let (mut conn, ic, reg) =
                    MxnConnection::join(world, Duration::from_secs(10)).unwrap();
                assert_eq!(conn.epoch(), 1);
                let data = reg.get("f").unwrap().data().clone();
                if conn.direction() == Direction::Export {
                    // The received shard carries the last-published step.
                    check(&data, 1.0);
                    refill(&data, 2.0);
                }
                conn.data_ready(&ic, &reg).unwrap();
                if conn.direction() == Direction::Import {
                    check(&data, 2.0);
                }
                // The contract retires this rank: it serves its shard one
                // last time and its handle closes.
                let (gone, _) = conn.contract(&ic, world, &mut { reg }, &[0, 1], &[0, 1]).unwrap();
                assert!(gone.is_none(), "a leaver gets no new intercomm");
                assert!(conn.is_closed());
                return;
            }
            let side = usize::from(p.rank() >= 2);
            let (_prog, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
            let rank = ic.local_rank();
            let mut reg = FieldRegistry::new(rank);
            let src = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
            let dst = Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap();
            let (data, mut conn) = if side == 0 {
                let data: FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&src, rank, |idx| coded(idx, 1.0))));
                reg.register("f", src.clone(), AccessMode::Read, data.clone()).unwrap();
                let conn = MxnConnection::initiate(
                    &ic,
                    &reg,
                    0,
                    "f",
                    "f",
                    Direction::Export,
                    ConnectionKind::Persistent { period: 1 },
                )
                .unwrap();
                (data, conn)
            } else {
                let data = reg.register_allocated("f", dst.clone(), AccessMode::Write).unwrap();
                (data, MxnConnection::accept(&ic, &reg, 0).unwrap())
            };
            // Epoch 0: the original 2×2 coupling.
            conn.data_ready(&ic, &reg).unwrap();
            if side == 1 {
                check(&data, 1.0);
            }
            // Grow: rank 4 joins side 0, rank 5 joins side 1.
            let (add_l, add_r) =
                if side == 0 { (&[4][..], &[5][..]) } else { (&[5][..], &[4][..]) };
            let (grown, report) = conn.expand(&ic, world, &mut reg, add_l, add_r).unwrap();
            assert_eq!(conn.epoch(), 1);
            assert_eq!(report.new_local_group.len(), 3);
            // The rebind spread the current step onto the 3-rank layout.
            check(&data, 1.0);
            assert!(data.read().len() < 36, "no rank holds the whole array after the grow");
            if side == 0 {
                refill(&data, 2.0);
            }
            conn.data_ready(&grown, &reg).unwrap();
            if side == 1 {
                check(&data, 2.0);
            }
            // Graceful contract back to the original 2×2.
            let (shrunk, _) = conn.contract(&grown, world, &mut reg, &[0, 1], &[0, 1]).unwrap();
            let shrunk = shrunk.expect("incumbents survive the contract");
            assert_eq!(conn.epoch(), 2);
            check(&data, 2.0);
            if side == 0 {
                refill(&data, 3.0);
            }
            conn.data_ready(&shrunk, &reg).unwrap();
            if side == 1 {
                check(&data, 3.0);
            }
            assert_eq!(conn.stats(), (3, 3));
        });
    }

    /// A newcomer dying mid-handshake aborts the whole grow: every
    /// incumbent gets `ReconfigAborted`, the epoch does not bump, and the
    /// *old* coupling keeps transferring — the membership rollback leaves
    /// the connection exactly as it was.
    #[test]
    fn aborted_expand_rolls_the_connection_back() {
        let cfg = FaultConfig::reliable(23);
        World::run_with_faults(5, cfg, |p| {
            let world = p.world();
            // The split is a world collective, so the doomed spare takes
            // part in it (color −1) before dying.
            let color = if p.rank() < 4 { 0 } else { -1 };
            let pair = world.split(color, 0).unwrap();
            if p.rank() == 4 {
                p.kill_rank(4);
                return;
            }
            let pair = pair.unwrap();
            // The kill must be visible before the vote so every incumbent
            // observes the same partial alive set.
            while !p.is_dead(4) {
                std::thread::yield_now();
            }
            let side = usize::from(p.rank() >= 2);
            let (_prog, ic) = InterComm::create(&pair, side).unwrap();
            let rank = ic.local_rank();
            let mut reg = FieldRegistry::new(rank);
            let src = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
            let dst = Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap();
            let (data, mut conn) = if side == 0 {
                let data: FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&src, rank, |idx| coded(idx, 1.0))));
                reg.register("f", src.clone(), AccessMode::Read, data.clone()).unwrap();
                let conn = MxnConnection::initiate(
                    &ic,
                    &reg,
                    0,
                    "f",
                    "f",
                    Direction::Export,
                    ConnectionKind::Persistent { period: 1 },
                )
                .unwrap();
                (data, conn)
            } else {
                let data = reg.register_allocated("f", dst, AccessMode::Write).unwrap();
                (data, MxnConnection::accept(&ic, &reg, 0).unwrap())
            };
            conn.data_ready(&ic, &reg).unwrap();
            let before = conn.epoch();
            let (add_l, add_r) = if side == 0 { (&[4][..], &[][..]) } else { (&[][..], &[4][..]) };
            let err = conn.expand(&ic, world, &mut reg, add_l, add_r).unwrap_err();
            assert!(
                matches!(&err, MxnError::Runtime(re) if re.is_reconfig_aborted()),
                "expected a reconfig abort, got: {err}"
            );
            assert_eq!(conn.epoch(), before, "an aborted grow must not bump the epoch");
            // The old coupling is untouched: the next step still flows.
            if side == 0 {
                refill(&data, 2.0);
            }
            conn.data_ready(&ic, &reg).unwrap();
            if side == 1 {
                check(&data, 2.0);
            }
        });
    }
}

#[cfg(test)]
mod budgeted_epoch_tests {
    use super::*;
    use crate::field::{FieldData, FieldRegistry};
    use mxn_dad::{AccessMode, Extents, LocalArray};
    use mxn_runtime::World;
    use parking_lot::RwLock;
    use std::sync::Arc;
    use std::time::Duration;

    fn coded(idx: &[usize], step: f64) -> f64 {
        (idx[0] * 24 + idx[1]) as f64 + step * 10_000.0
    }

    fn refill(data: &FieldData, step: f64) {
        let mut d = data.write();
        let idxs: Vec<Vec<usize>> = d.iter().map(|(i, _)| i).collect();
        for idx in idxs {
            *d.get_mut(&idx).unwrap() = coded(&idx, step);
        }
    }

    /// The PR 8 follow-on regression: budgeted routes are cached by
    /// descriptor fingerprints, and a grow→shrink cycle returns to
    /// *byte-identical* fingerprints. Without the epoch salt the
    /// post-contract transfer would silently reuse the route profiled
    /// before the cycle; with it, every elastic epoch re-plans. The cache
    /// must hold three routes at the end — epochs 0, 1 and 2 — not two.
    #[test]
    fn budgeted_routes_replan_across_elastic_epochs() {
        const BUDGET: u64 = 2000;
        World::run(5, |p| {
            let world = p.world();
            let color = if p.rank() < 4 { 0 } else { -1 };
            let pair = world.split(color, 0).unwrap();
            let cache = ScheduleCache::new();
            if p.rank() == 4 {
                // Joins the import side for the grown epoch, then retires.
                let (mut conn, ic, reg) =
                    MxnConnection::join(world, Duration::from_secs(10)).unwrap();
                conn.data_ready_budgeted(&ic, &reg, &cache, BUDGET).unwrap();
                let d = reg.get("f").unwrap().data().read().clone();
                for (idx, &v) in d.iter() {
                    assert_eq!(v, coded(&idx, 2.0));
                }
                let (gone, _) = conn.contract(&ic, world, &mut { reg }, &[0, 1], &[0, 1]).unwrap();
                assert!(gone.is_none());
                return;
            }
            let side = usize::from(p.rank() >= 2);
            let (_prog, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
            let rank = ic.local_rank();
            let mut reg = FieldRegistry::new(rank);
            let src = Dad::block(Extents::new([24, 24]), &[2, 1]).unwrap();
            let dst = Dad::block(Extents::new([24, 24]), &[1, 2]).unwrap();
            // Both sides watch the import-side descriptor round-trip.
            let original_fp = dst.fingerprint();
            let (data, mut conn) = if side == 0 {
                let data: FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&src, rank, |idx| coded(idx, 1.0))));
                reg.register("f", src.clone(), AccessMode::Read, data.clone()).unwrap();
                let conn = MxnConnection::initiate(
                    &ic,
                    &reg,
                    0,
                    "f",
                    "f",
                    Direction::Export,
                    ConnectionKind::Persistent { period: 1 },
                )
                .unwrap();
                (data, conn)
            } else {
                let data = reg.register_allocated("f", dst.clone(), AccessMode::Write).unwrap();
                (data, MxnConnection::accept(&ic, &reg, 0).unwrap())
            };
            // Epoch 0 at the original size.
            conn.data_ready_budgeted(&ic, &reg, &cache, BUDGET).unwrap();
            assert_eq!(cache.routes_len(), 1);
            // Grow the import side onto rank 4, transfer at epoch 1.
            let (add_l, add_r) = if side == 0 { (&[][..], &[4][..]) } else { (&[4][..], &[][..]) };
            let (grown, _) = conn.expand(&ic, world, &mut reg, add_l, add_r).unwrap();
            if side == 0 {
                refill(&data, 2.0);
            }
            conn.data_ready_budgeted(&grown, &reg, &cache, BUDGET).unwrap();
            assert_eq!(cache.routes_len(), 2, "the grown layout planned its own route");
            // Contract back: fingerprints return to the pre-grow values.
            let (shrunk, _) = conn.contract(&grown, world, &mut reg, &[0, 1], &[0, 1]).unwrap();
            let shrunk = shrunk.unwrap();
            let peer_fp =
                if side == 0 { conn.peer_dad.fingerprint() } else { conn.my_dad.fingerprint() };
            assert_eq!(peer_fp, original_fp, "the cycle returns to identical descriptors");
            if side == 0 {
                refill(&data, 3.0);
            }
            conn.data_ready_budgeted(&shrunk, &reg, &cache, BUDGET).unwrap();
            assert_eq!(
                cache.routes_len(),
                3,
                "identical fingerprints at a new epoch must re-plan, not reuse the stale route"
            );
            if side == 1 {
                let d = data.read();
                for (idx, &v) in d.iter() {
                    assert_eq!(v, coded(&idx, 3.0), "post-cycle budgeted transfer fits");
                }
            }
        });
    }
}

#[cfg(test)]
mod loose_sync_tests {
    use super::*;
    use crate::field::FieldRegistry;
    use mxn_dad::{AccessMode, Dad, Extents, LocalArray};
    use mxn_runtime::Universe;
    use parking_lot::RwLock;
    use std::sync::Arc;

    /// A free-running producer and a lazily polling consumer: the consumer
    /// always ends up with the *newest* data, never blocking.
    #[test]
    fn poll_latest_consumes_backlog_and_keeps_newest() {
        Universe::run(&[1, 1], |_, ctx| {
            let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut reg = FieldRegistry::new(0);
                let data: crate::field::FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&dad, 0, |_| 0.0)));
                reg.register("f", dad, AccessMode::Read, data.clone()).unwrap();
                let mut conn = MxnConnection::initiate(
                    ic,
                    &reg,
                    0,
                    "f",
                    "f",
                    Direction::Export,
                    ConnectionKind::Persistent { period: 1 },
                )
                .unwrap();
                // Producer free-runs 5 steps before the consumer looks.
                for step in 1..=5u64 {
                    {
                        let mut d = data.write();
                        for i in 0..4 {
                            *d.get_mut(&[i]).unwrap() = step as f64;
                        }
                    }
                    conn.data_ready(ic, &reg).unwrap();
                }
                // Signal "done producing" out of band.
                ic.send(0, 0x7f, ()).unwrap();
            } else {
                let ic = ctx.intercomm(0);
                let mut reg = FieldRegistry::new(0);
                let data = reg.register_allocated("f", dad, AccessMode::Write).unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                // Wait until the producer finished all 5 exports.
                ic.recv::<()>(0, 0x7f).unwrap();
                let consumed = conn.poll_latest(ic, &reg).unwrap();
                assert_eq!(consumed, 5, "whole backlog drained");
                assert_eq!(*data.read().get(&[0]).unwrap(), 5.0, "newest kept");
                // Nothing more queued: poll returns instantly with 0.
                assert_eq!(conn.poll_latest(ic, &reg).unwrap(), 0);
            }
        });
    }

    /// Loose sync across a real M×N shape: partial rounds (some partners
    /// delivered, some not) are not consumed.
    #[test]
    fn poll_latest_waits_for_complete_rounds() {
        Universe::run(&[2, 1], |_, ctx| {
            let src = Dad::block(Extents::new([4]), &[2]).unwrap();
            let dst = Dad::block(Extents::new([4]), &[1]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut reg = FieldRegistry::new(ctx.comm.rank());
                let data: crate::field::FieldData =
                    Arc::new(RwLock::new(LocalArray::from_fn(&src, ctx.comm.rank(), |idx| {
                        idx[0] as f64
                    })));
                reg.register("f", src, AccessMode::Read, data).unwrap();
                let mut conn = MxnConnection::initiate(
                    ic,
                    &reg,
                    0,
                    "f",
                    "f",
                    Direction::Export,
                    ConnectionKind::Persistent { period: 1 },
                )
                .unwrap();
                if ctx.comm.rank() == 0 {
                    // Rank 0 exports immediately…
                    conn.data_ready(ic, &reg).unwrap();
                    ic.send(0, 0x7e, ()).unwrap();
                    // …then waits for the consumer's probe result before
                    // rank 1 is allowed to send (ordering via consumer).
                    ic.recv::<()>(0, 0x7d).unwrap();
                } else {
                    // Rank 1 exports only after the consumer verified the
                    // partial round was not consumable.
                    ic.recv::<()>(0, 0x7d).unwrap();
                    conn.data_ready(ic, &reg).unwrap();
                    ic.send(0, 0x7c, ()).unwrap();
                }
            } else {
                let ic = ctx.intercomm(0);
                let mut reg = FieldRegistry::new(0);
                let data = reg.register_allocated("f", dst, AccessMode::Write).unwrap();
                let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
                // Only rank 0's half has arrived: not a complete round.
                ic.recv::<()>(0, 0x7e).unwrap();
                assert_eq!(conn.poll_latest(ic, &reg).unwrap(), 0);
                // Release rank 1 (and rank 0).
                ic.send(0, 0x7d, ()).unwrap();
                ic.send(1, 0x7d, ()).unwrap();
                ic.recv::<()>(1, 0x7c).unwrap();
                // Now the round is complete.
                assert_eq!(conn.poll_latest(ic, &reg).unwrap(), 1);
                assert_eq!(*data.read().get(&[3]).unwrap(), 3.0);
            }
        });
    }
}
