//! Computational steering.
//!
//! CUMULVS — one of the two parents of the M×N component — "is designed
//! for interactive visualization and computational steering" (paper §4.1):
//! alongside the periodic data channels, a viewer can adjust named
//! parameters of the running simulation. This module provides that
//! control plane: the component registers steerable parameters and polls
//! for updates between time-steps; the viewer pushes new values (to every
//! rank, keeping the SPMD copies consistent) and can query snapshots.

use std::collections::HashMap;

use mxn_runtime::{InterComm, MsgSize, Result};

const STEER_TAG: i32 = (1 << 20) - 5;
const SNAP_REQ_TAG: i32 = (1 << 20) - 6;
const SNAP_RESP_TAG: i32 = (1 << 20) - 7;

struct SteerUpdate {
    name: String,
    value: f64,
}

impl MsgSize for SteerUpdate {
    fn msg_size(&self) -> usize {
        self.name.len() + 8
    }
}

/// The component side: a per-rank table of steerable parameters.
#[derive(Debug, Default)]
pub struct SteeringRegistry {
    params: HashMap<String, f64>,
    updates_applied: u64,
}

impl SteeringRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a steerable parameter with its initial value.
    pub fn register(&mut self, name: &str, initial: f64) {
        self.params.insert(name.to_string(), initial);
    }

    /// Current value of a parameter.
    ///
    /// # Panics
    /// On unknown parameter names (a programming error on the component
    /// side, not a steering-protocol error).
    pub fn get(&self, name: &str) -> f64 {
        self.params[name]
    }

    /// Registered parameter names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.params.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of steering updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Drains pending steering messages (non-blocking) and applies them.
    /// Unknown parameter names are ignored (the viewer may be newer than
    /// the component). Returns the applied `(name, value)` pairs in
    /// arrival order. Called between time-steps.
    pub fn poll(&mut self, ic: &InterComm) -> Result<Vec<(String, f64)>> {
        let mut applied = Vec::new();
        while let Some((u, _)) = ic.try_recv::<SteerUpdate>(mxn_runtime::Src::Any, STEER_TAG)? {
            if let Some(slot) = self.params.get_mut(&u.name) {
                *slot = u.value;
                self.updates_applied += 1;
                applied.push((u.name, u.value));
            }
        }
        // Also answer any snapshot requests.
        while let Some(((), info)) = ic.try_recv::<()>(mxn_runtime::Src::Any, SNAP_REQ_TAG)? {
            let snap: Vec<(String, f64)> =
                self.names().into_iter().map(|n| (n.clone(), self.params[&n])).collect();
            ic.send(info.src, SNAP_RESP_TAG, snap)?;
        }
        Ok(applied)
    }
}

/// Viewer side: sets `name` to `value` on **every** rank of the remote
/// component, preserving the SPMD convention that parameters agree across
/// the cohort.
pub fn steer(ic: &InterComm, name: &str, value: f64) -> Result<()> {
    for r in 0..ic.remote_size() {
        ic.send(r, STEER_TAG, SteerUpdate { name: name.to_string(), value })?;
    }
    Ok(())
}

/// Viewer side: asks remote rank `rank` for a snapshot of all parameters.
/// The component answers at its next [`SteeringRegistry::poll`].
pub fn request_snapshot(ic: &InterComm, rank: usize) -> Result<()> {
    ic.send(rank, SNAP_REQ_TAG, ())
}

/// Viewer side: receives a previously requested snapshot.
pub fn receive_snapshot(ic: &InterComm, rank: usize) -> Result<Vec<(String, f64)>> {
    ic.recv(rank, SNAP_RESP_TAG)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_runtime::Universe;
    use std::time::Duration;

    /// A simulation steers its timestep mid-run; all ranks stay agreed.
    #[test]
    fn steering_updates_all_ranks_between_steps() {
        Universe::run(&[3, 1], |_, ctx| {
            if ctx.program == 0 {
                // The simulation component, 3 ranks.
                let ic = ctx.intercomm(1);
                let mut steering = SteeringRegistry::new();
                steering.register("dt", 0.1);
                steering.register("viscosity", 1.0);

                let mut dts = Vec::new();
                for step in 0..20 {
                    if step == 5 {
                        // Tell the viewer we reached step 5 (rank 0 only).
                        if ctx.comm.rank() == 0 {
                            ic.send(0, 1, ()).unwrap();
                        }
                    }
                    if step >= 5 {
                        // Give the update a moment to arrive, then poll.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    steering.poll(ic).unwrap();
                    dts.push(steering.get("dt"));
                }
                // The steered value eventually took effect...
                assert_eq!(*dts.last().unwrap(), 0.05);
                // ...and the early steps used the original.
                assert_eq!(dts[0], 0.1);
                // All ranks agree at the end.
                let all: Vec<f64> = ctx.comm.allgather(steering.get("dt")).unwrap();
                assert!(all.iter().all(|&v| v == 0.05));
            } else {
                // The viewer.
                let ic = ctx.intercomm(0);
                ic.recv::<()>(0, 1).unwrap(); // wait for step 5
                steer(ic, "dt", 0.05).unwrap();
            }
        });
    }

    #[test]
    fn unknown_parameters_are_ignored() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut s = SteeringRegistry::new();
                s.register("alpha", 2.0);
                // Wait for both updates to be queued.
                ic.recv::<()>(0, 2).unwrap();
                let applied = s.poll(ic).unwrap();
                assert_eq!(applied, vec![("alpha".to_string(), 3.0)]);
                assert_eq!(s.get("alpha"), 3.0);
                assert_eq!(s.updates_applied(), 1);
            } else {
                let ic = ctx.intercomm(0);
                steer(ic, "no_such_param", 9.9).unwrap();
                steer(ic, "alpha", 3.0).unwrap();
                ic.send(0, 2, ()).unwrap();
            }
        });
    }

    #[test]
    fn snapshot_roundtrip() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut s = SteeringRegistry::new();
                s.register("dt", 0.25);
                s.register("cfl", 0.9);
                // Serve until the snapshot request has been answered.
                ic.recv::<()>(0, 3).unwrap();
                s.poll(ic).unwrap();
            } else {
                let ic = ctx.intercomm(0);
                request_snapshot(ic, 0).unwrap();
                ic.send(0, 3, ()).unwrap();
                let snap = receive_snapshot(ic, 0).unwrap();
                assert_eq!(snap, vec![("cfl".to_string(), 0.9), ("dt".to_string(), 0.25)]);
            }
        });
    }

    #[test]
    fn poll_with_no_traffic_is_cheap_and_empty() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut s = SteeringRegistry::new();
                s.register("x", 1.0);
                assert!(s.poll(ic).unwrap().is_empty());
                assert_eq!(s.get("x"), 1.0);
            }
        });
    }
}
