//! # mxn-core — the generalized M×N parallel data redistribution component
//!
//! The paper's primary contribution (§4.1): a CCA component specification
//! unifying the CUMULVS and PAWS coupling models under one interface.
//!
//! * **Registration** ([`field`]): components register parallel data
//!   fields by DAD handle, with read/write/read-write access modes.
//! * **Connections** ([`connection`]): one-shot (PAWS-style point-to-point)
//!   or persistent periodic (CUMULVS-style channels), established by a
//!   descriptor-exchanging handshake, initiated by the source, the
//!   destination, or a third-party controller ([`coordinator`]).
//! * **Transfers**: the `data_ready()` protocol — independent pairwise
//!   point-to-point messages, no synchronization barriers on either side.
//! * **Self-connections**: in-place redistribution (transpose) within one
//!   program ([`MxnComponent::self_redistribute`]).
//! * **CCA integration** ([`component`]): the whole service registers as a
//!   provides port ([`MXN_PORT_TYPE`]) in a direct-connected framework,
//!   realizing the paired-component architecture of Figure 3.
//! * **Elasticity** ([`elastic`], [`autoscale`]): live couplings grow onto
//!   spare ranks and shrink back gracefully, the field spread through a
//!   one-sided RMA window ([`MxnConnection::expand`] /
//!   [`MxnConnection::contract`] / [`MxnConnection::join`]), driven by a
//!   load-watching [`Autoscaler`] policy.

pub mod autoscale;
pub mod component;
pub mod connection;
pub mod coordinator;
pub mod elastic;
pub mod error;
pub mod field;
pub mod particles;
pub mod steering;

pub use autoscale::{Autoscaler, AutoscalerConfig, LoadSample, ScaleDecision};
pub use component::{mxn_port, MxnComponent, MxnPort, MXN_PORT_TYPE};
pub use connection::{ConnectionKind, Direction, MxnConnection, TransferOutcome};
pub use coordinator::{follow_order, order_connection, ConnOrder};
pub use elastic::redistribute_elastic;
pub use error::{MxnError, Result};
pub use field::{FieldData, FieldEntry, FieldRegistry};
pub use particles::{MigrationReport, Particle, ParticleField};
pub use steering::{receive_snapshot, request_snapshot, steer, SteeringRegistry};
