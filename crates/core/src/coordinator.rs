//! Third-party connection initiation.
//!
//! "M×N connections can be initiated by either the source or destination
//! components, **or by a third party controller**. Therefore, neither side
//! of an M×N connection need be fully aware, if at all, of the nature of
//! any such connections … no fundamental changes to the source or
//! destination component codes are strictly necessary." (paper §4.1)
//!
//! The controller (typically a serial driver program) sends each side a
//! [`ConnOrder`] over its control inter-communicator; each side then runs
//! the normal initiate/accept handshake on the *data* inter-communicator.

use mxn_runtime::{InterComm, MsgSize};

use crate::connection::{ConnectionKind, Direction, MxnConnection};
use crate::error::Result;
use crate::field::FieldRegistry;

const ORDER_TAG: i32 = (1 << 20) - 3;

/// An instruction from a third-party controller to one side of a coupling.
pub struct ConnOrder {
    /// True for the side that runs `initiate` (the other runs `accept`).
    pub initiate: bool,
    /// The field to couple on the receiving side of this order.
    pub field: String,
    /// The peer program's field name (used only by the initiator).
    pub peer_field: String,
    /// This side's transfer direction.
    pub direction: Direction,
    /// Transfer cadence.
    pub kind: ConnectionKind,
}

impl MsgSize for ConnOrder {
    fn msg_size(&self) -> usize {
        1 + self.field.len() + self.peer_field.len() + 1 + self.kind.msg_size()
    }
}

/// Controller side: orchestrates a coupling between programs A and B
/// without either being aware of the other in advance. `a_*` describes the
/// exporting side, `b_*` the importing side.
pub fn order_connection(
    ic_a: &InterComm,
    a_field: &str,
    ic_b: &InterComm,
    b_field: &str,
    kind: ConnectionKind,
) -> Result<()> {
    for r in 0..ic_a.remote_size() {
        ic_a.send(
            r,
            ORDER_TAG,
            ConnOrder {
                initiate: true,
                field: a_field.to_string(),
                peer_field: b_field.to_string(),
                direction: Direction::Export,
                kind,
            },
        )?;
    }
    for r in 0..ic_b.remote_size() {
        ic_b.send(
            r,
            ORDER_TAG,
            ConnOrder {
                initiate: false,
                field: b_field.to_string(),
                peer_field: a_field.to_string(),
                direction: Direction::Import,
                kind,
            },
        )?;
    }
    Ok(())
}

/// Component side: waits for a controller order on `ctrl_ic`, then runs
/// the corresponding handshake on `data_ic`. The component never needed to
/// know what it would be coupled to.
pub fn follow_order(
    ctrl_ic: &InterComm,
    data_ic: &InterComm,
    registry: &FieldRegistry,
    my_id: u32,
) -> Result<MxnConnection> {
    let order: ConnOrder = ctrl_ic.recv(0, ORDER_TAG)?;
    if order.initiate {
        MxnConnection::initiate(
            data_ic,
            registry,
            my_id,
            &order.field,
            &order.peer_field,
            order.direction,
            order.kind,
        )
    } else {
        MxnConnection::accept(data_ic, registry, my_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::TransferOutcome;
    use mxn_dad::{AccessMode, Dad, Extents, LocalArray};
    use mxn_runtime::Universe;
    use parking_lot::RwLock;
    use std::sync::Arc;

    #[test]
    fn third_party_controller_couples_two_unaware_programs() {
        // Programs: 0 = controller (1 rank), 1 = source (2), 2 = sink (2).
        Universe::run(&[1, 2, 2], |_, ctx| {
            let dad_src = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
            let dad_dst = Dad::block(Extents::new([4, 4]), &[1, 2]).unwrap();
            match ctx.program {
                0 => {
                    order_connection(
                        ctx.intercomm(1),
                        "temperature",
                        ctx.intercomm(2),
                        "boundary_temp",
                        ConnectionKind::OneShot,
                    )
                    .unwrap();
                }
                1 => {
                    let rank = ctx.comm.rank();
                    let mut reg = FieldRegistry::new(rank);
                    let data = Arc::new(RwLock::new(LocalArray::from_fn(&dad_src, rank, |idx| {
                        (idx[0] * 4 + idx[1]) as f64
                    })));
                    reg.register("temperature", dad_src, AccessMode::Read, data).unwrap();
                    let mut conn =
                        follow_order(ctx.intercomm(0), ctx.intercomm(2), &reg, 0).unwrap();
                    assert_eq!(conn.direction(), Direction::Export);
                    let out = conn.data_ready(ctx.intercomm(2), &reg).unwrap();
                    assert!(matches!(out, TransferOutcome::Transferred { .. }));
                }
                _ => {
                    let rank = ctx.comm.rank();
                    let mut reg = FieldRegistry::new(rank);
                    let data = reg
                        .register_allocated("boundary_temp", dad_dst, AccessMode::Write)
                        .unwrap();
                    let mut conn =
                        follow_order(ctx.intercomm(0), ctx.intercomm(1), &reg, 0).unwrap();
                    assert_eq!(conn.direction(), Direction::Import);
                    conn.data_ready(ctx.intercomm(1), &reg).unwrap();
                    for (idx, &v) in data.read().iter() {
                        assert_eq!(v, (idx[0] * 4 + idx[1]) as f64);
                    }
                }
            }
        });
    }
}
