//! Autoscaler policy: when should a live coupling grow or shrink?
//!
//! The driver half of ROADMAP item 3's elastic loop. The policy is a pure
//! state machine — it never talks to the runtime — so it is unit-testable
//! without a world and reusable from examples, benches, and the CI
//! drivers alike. The caller samples load (queue depth from
//! [`mxn_runtime::WorldStats`] mailbox gauges, in-flight messages, or any
//! proxy it trusts), feeds each sample to [`Autoscaler::observe`], and
//! acts on the returned [`ScaleDecision`] by running a membership
//! reconfiguration. Only after the reconfiguration *commits* does the
//! caller report back via [`Autoscaler::record_scaled`] — an aborted grow
//! rolls back at the membership layer and the policy simply keeps its old
//! size, so policy state can never run ahead of the real world.

/// Tuning knobs for the scaling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Queue depth (bytes) at or above which the coupling is overloaded.
    pub high_queue_bytes: u64,
    /// Queue depth (bytes) at or below which the coupling is underloaded.
    /// Must be below `high_queue_bytes`; the gap is the hysteresis band.
    pub low_queue_bytes: u64,
    /// Ranks added (or retired) per scaling step.
    pub step: usize,
    /// Observations to ignore after a scale operation, letting the new
    /// membership drain the backlog before being judged.
    pub cooldown: u64,
    /// Smallest membership the policy will shrink to.
    pub min_ranks: usize,
    /// Largest membership the policy will grow to.
    pub max_ranks: usize,
    /// Consecutive out-of-band samples required before acting — a single
    /// bursty sample never triggers a reconfiguration.
    pub sustain: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            high_queue_bytes: 64 * 1024,
            low_queue_bytes: 4 * 1024,
            step: 1,
            cooldown: 2,
            min_ranks: 1,
            max_ranks: 64,
            sustain: 2,
        }
    }
}

/// One load observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadSample {
    /// Bytes sitting in mailboxes / staging queues.
    pub queue_bytes: u64,
    /// Messages issued but not yet completed.
    pub inflight_msgs: u64,
}

/// What the policy wants done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Stay at the current size.
    Hold,
    /// Admit `add` more ranks.
    Grow {
        /// Ranks to add (already clamped to `max_ranks`).
        add: usize,
    },
    /// Retire `remove` ranks.
    Shrink {
        /// Ranks to retire (already clamped to `min_ranks`).
        remove: usize,
    },
}

/// The scaling state machine. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    current: usize,
    high_streak: u32,
    low_streak: u32,
    cooldown_left: u64,
}

impl Autoscaler {
    /// Builds a policy for a coupling currently running on `current`
    /// ranks.
    ///
    /// # Panics
    /// On a malformed config (inverted thresholds or bounds, zero step or
    /// sustain).
    pub fn new(cfg: AutoscalerConfig, current: usize) -> Autoscaler {
        assert!(cfg.low_queue_bytes < cfg.high_queue_bytes, "hysteresis band is inverted");
        assert!(cfg.min_ranks >= 1 && cfg.min_ranks <= cfg.max_ranks, "rank bounds are inverted");
        assert!(cfg.step >= 1, "step must be ≥ 1");
        assert!(cfg.sustain >= 1, "sustain must be ≥ 1");
        assert!(
            (cfg.min_ranks..=cfg.max_ranks).contains(&current),
            "current size {current} outside [{}, {}]",
            cfg.min_ranks,
            cfg.max_ranks
        );
        Autoscaler { cfg, current, high_streak: 0, low_streak: 0, cooldown_left: 0 }
    }

    /// The membership size the policy believes is live.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Feeds one load sample; returns what to do. The decision is purely
    /// advisory — the policy's own size only changes via
    /// [`Autoscaler::record_scaled`].
    pub fn observe(&mut self, sample: &LoadSample) -> ScaleDecision {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.high_streak = 0;
            self.low_streak = 0;
            return ScaleDecision::Hold;
        }
        let load = sample.queue_bytes;
        if load >= self.cfg.high_queue_bytes {
            self.high_streak += 1;
            self.low_streak = 0;
            let headroom = self.cfg.max_ranks - self.current;
            if self.high_streak >= self.cfg.sustain && headroom > 0 {
                return ScaleDecision::Grow { add: self.cfg.step.min(headroom) };
            }
        } else if load <= self.cfg.low_queue_bytes && sample.inflight_msgs == 0 {
            self.low_streak += 1;
            self.high_streak = 0;
            let slack = self.current - self.cfg.min_ranks;
            if self.low_streak >= self.cfg.sustain && slack > 0 {
                return ScaleDecision::Shrink { remove: self.cfg.step.min(slack) };
            }
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }
        ScaleDecision::Hold
    }

    /// Feeds one *measured* mailbox-depth gauge — the sample
    /// `InterComm::sample_mailbox_gauge` (or any
    /// [`mxn_runtime::WorldStats::queue_gauge`] reader) produces — instead
    /// of a caller-invented [`LoadSample`]. The peak since the last sample
    /// is the queue-pressure signal (a backlog that built and drained
    /// between samples still counts).
    ///
    /// Queued envelopes count as shrink-vetoing in-flight work only when
    /// their resident bytes exceed the low-water band: a persistent
    /// connection parks a handful of tiny ready/ack control envelopes in
    /// the mailbox at *every* sampling point, and a hard `depth == 0`
    /// veto would let that chatter pin the membership at its grown size
    /// forever. Byte-insignificant residue never blocks a shrink the
    /// byte thresholds allow.
    pub fn observe_stats(&mut self, gauge: &mxn_runtime::MailboxGauge) -> ScaleDecision {
        let inflight =
            if gauge.live_bytes > self.cfg.low_queue_bytes { gauge.depth_msgs } else { 0 };
        self.observe(&LoadSample {
            queue_bytes: gauge.peak_bytes.max(gauge.live_bytes),
            inflight_msgs: inflight,
        })
    }

    /// Reports that a reconfiguration committed and the coupling now runs
    /// on `new_size` ranks. Resets streaks and arms the cooldown.
    pub fn record_scaled(&mut self, new_size: usize) {
        assert!(
            (self.cfg.min_ranks..=self.cfg.max_ranks).contains(&new_size),
            "scaled size {new_size} outside the configured bounds"
        );
        self.current = new_size;
        self.high_streak = 0;
        self.low_streak = 0;
        self.cooldown_left = self.cfg.cooldown;
    }

    /// Reports that an attempted reconfiguration aborted (rolled back).
    /// The size is unchanged; streaks reset and the cooldown arms so the
    /// policy does not immediately hammer a membership that just refused
    /// to commit.
    pub fn record_aborted(&mut self) {
        self.high_streak = 0;
        self.low_streak = 0;
        self.cooldown_left = self.cfg.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscalerConfig {
        AutoscalerConfig {
            high_queue_bytes: 1000,
            low_queue_bytes: 100,
            step: 2,
            cooldown: 3,
            min_ranks: 2,
            max_ranks: 8,
            sustain: 2,
        }
    }

    fn busy() -> LoadSample {
        LoadSample { queue_bytes: 5000, inflight_msgs: 9 }
    }

    fn idle() -> LoadSample {
        LoadSample { queue_bytes: 0, inflight_msgs: 0 }
    }

    fn mid() -> LoadSample {
        LoadSample { queue_bytes: 500, inflight_msgs: 1 }
    }

    #[test]
    fn sustained_pressure_grows_one_burst_does_not() {
        let mut a = Autoscaler::new(cfg(), 4);
        assert_eq!(a.observe(&busy()), ScaleDecision::Hold, "first high sample only streaks");
        assert_eq!(a.observe(&mid()), ScaleDecision::Hold, "band sample resets the streak");
        assert_eq!(a.observe(&busy()), ScaleDecision::Hold);
        assert_eq!(a.observe(&busy()), ScaleDecision::Grow { add: 2 }, "sustained pressure");
        assert_eq!(a.current(), 4, "observe never mutates the size");
    }

    #[test]
    fn cooldown_swallows_samples_after_a_scale() {
        let mut a = Autoscaler::new(cfg(), 4);
        a.observe(&busy());
        assert_eq!(a.observe(&busy()), ScaleDecision::Grow { add: 2 });
        a.record_scaled(6);
        assert_eq!(a.current(), 6);
        for _ in 0..3 {
            assert_eq!(a.observe(&busy()), ScaleDecision::Hold, "cooldown holds");
        }
        // Post-cooldown the streak must be rebuilt from scratch.
        assert_eq!(a.observe(&busy()), ScaleDecision::Hold);
        assert_eq!(a.observe(&busy()), ScaleDecision::Grow { add: 2 });
    }

    #[test]
    fn growth_clamps_at_max_ranks() {
        let mut a = Autoscaler::new(cfg(), 7);
        a.observe(&busy());
        assert_eq!(a.observe(&busy()), ScaleDecision::Grow { add: 1 }, "only 1 rank of headroom");
        a.record_scaled(8);
        for _ in 0..3 {
            a.observe(&busy());
        }
        a.observe(&busy());
        assert_eq!(a.observe(&busy()), ScaleDecision::Hold, "at max: sustained load holds");
    }

    #[test]
    fn idle_shrinks_and_clamps_at_min_ranks() {
        let mut a = Autoscaler::new(cfg(), 3);
        assert_eq!(a.observe(&idle()), ScaleDecision::Hold);
        assert_eq!(a.observe(&idle()), ScaleDecision::Shrink { remove: 1 }, "clamped to min");
        a.record_scaled(2);
        for _ in 0..3 {
            a.observe(&idle());
        }
        a.observe(&idle());
        assert_eq!(a.observe(&idle()), ScaleDecision::Hold, "at min: idleness holds");
    }

    #[test]
    fn inflight_messages_veto_a_shrink() {
        let mut a = Autoscaler::new(cfg(), 4);
        let draining = LoadSample { queue_bytes: 0, inflight_msgs: 3 };
        for _ in 0..5 {
            assert_eq!(a.observe(&draining), ScaleDecision::Hold, "in-flight work blocks shrink");
        }
    }

    #[test]
    fn aborted_scale_keeps_size_and_arms_cooldown() {
        let mut a = Autoscaler::new(cfg(), 4);
        a.observe(&busy());
        assert_eq!(a.observe(&busy()), ScaleDecision::Grow { add: 2 });
        a.record_aborted();
        assert_eq!(a.current(), 4, "rollback leaves the size untouched");
        for _ in 0..3 {
            assert_eq!(a.observe(&busy()), ScaleDecision::Hold);
        }
        a.observe(&busy());
        assert_eq!(a.observe(&busy()), ScaleDecision::Grow { add: 2 }, "retry after cooldown");
    }

    #[test]
    fn observe_stats_maps_measured_gauges_onto_the_policy() {
        use mxn_runtime::MailboxGauge;
        let mut a = Autoscaler::new(cfg(), 4);
        // A backlog that built and drained between samples still registers:
        // peak carries the pressure even with live == 0.
        let burst = MailboxGauge { live_bytes: 0, peak_bytes: 5000, depth_msgs: 0 };
        assert_eq!(a.observe_stats(&burst), ScaleDecision::Hold);
        assert_eq!(a.observe_stats(&burst), ScaleDecision::Grow { add: 2 });
        a.record_scaled(6);
        for _ in 0..3 {
            a.observe_stats(&burst);
        }
        // A byte-significant draining backlog holds the membership.
        let draining = MailboxGauge { live_bytes: 600, peak_bytes: 600, depth_msgs: 2 };
        for _ in 0..5 {
            assert_eq!(a.observe_stats(&draining), ScaleDecision::Hold);
        }
        // Parked protocol chatter — a few queued envelopes whose bytes sit
        // under the low-water band — must NOT veto the shrink: a persistent
        // connection leaves such residue at every sampling point.
        let chatter = MailboxGauge { live_bytes: 32, peak_bytes: 32, depth_msgs: 4 };
        a.observe_stats(&chatter);
        assert_eq!(a.observe_stats(&chatter), ScaleDecision::Shrink { remove: 2 });
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_band_is_rejected() {
        let bad = AutoscalerConfig { high_queue_bytes: 10, low_queue_bytes: 10, ..cfg() };
        let _ = Autoscaler::new(bad, 4);
    }
}
