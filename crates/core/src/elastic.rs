//! Elastic redistribution: moving a field between *different-sized*
//! decompositions over a one-sided RMA window.
//!
//! The shrink path of PR 5 rebinds lossily (survivors keep what they
//! already own; dead ranks' data is gone). Growing is different: every
//! element still exists somewhere on the old members, so a grow — and a
//! *graceful* shrink, where leavers are still alive to serve reads — can
//! move data instead of zeroing it. Following the RMA reconfiguration
//! argument of Martín-Álvarez et al., the transport is one-sided: each
//! old member exposes its shard once, each new member *gets* exactly the
//! runs it needs, and a single fence completes the whole epoch. No
//! pairwise send/recv matching is required between decompositions that
//! do not know each other's schedules yet.

use std::slice;

use mxn_dad::{region_runs, Dad, LocalArray, Region};
use mxn_runtime::{Comm, RmaWindow};

use crate::error::{MxnError, Result};

/// Collectively redistributes a field from `old_dad` (held by
/// `old_members`, one comm rank per old decomposition rank) onto
/// `new_dad` (landing on `new_members`). Every rank appearing in either
/// member list must call this with identical descriptors and lists; the
/// RMA window spans the union of both.
///
/// * `my_old` — this rank's old decomposition rank and shard, when it
///   holds one (`old_members[r] == comm rank`).
/// * `my_new` — this rank's new decomposition rank, when it receives one.
///
/// Returns the freshly assembled local storage for `my_new`, or `None`
/// for a pure source (a leaver handing its data off). Membership may
/// overlap arbitrarily: grow (`new ⊇ old`), graceful shrink
/// (`new ⊆ old`), or full handoff (disjoint sets) all reduce to the same
/// window protocol.
#[allow(clippy::too_many_arguments)] // collective: every rank passes the full membership picture
pub fn redistribute_elastic(
    world: &Comm,
    win_id: u32,
    old_dad: &Dad,
    new_dad: &Dad,
    old_members: &[usize],
    new_members: &[usize],
    my_old: Option<(usize, &LocalArray<f64>)>,
    my_new: Option<usize>,
) -> Result<Option<LocalArray<f64>>> {
    if !old_dad.conforms(new_dad) {
        return Err(MxnError::ShapeMismatch {
            detail: format!(
                "elastic redistribution between extents {:?} and {:?}",
                old_dad.extents().dims(),
                new_dad.extents().dims()
            ),
        });
    }
    if old_members.len() != old_dad.nranks() || new_members.len() != new_dad.nranks() {
        return Err(MxnError::Handshake {
            detail: format!(
                "member lists must match decomposition sizes: {} old members for a {}-rank \
                 descriptor, {} new members for a {}-rank descriptor",
                old_members.len(),
                old_dad.nranks(),
                new_members.len(),
                new_dad.nranks()
            ),
        });
    }
    let me = world.rank();
    if let Some((r, local)) = my_old {
        if old_members.get(r) != Some(&me) {
            return Err(MxnError::Handshake {
                detail: format!("rank {me} claims old shard {r} but old_members says otherwise"),
            });
        }
        let expected = old_dad.local_size(r);
        if local.len() != expected {
            return Err(MxnError::Handshake {
                detail: format!(
                    "old shard {r} holds {} elements but the descriptor assigns {expected}",
                    local.len()
                ),
            });
        }
    }
    if let Some(r) = my_new {
        if new_members.get(r) != Some(&me) {
            return Err(MxnError::Handshake {
                detail: format!("rank {me} claims new shard {r} but new_members says otherwise"),
            });
        }
    }

    let mut members: Vec<usize> = old_members.iter().chain(new_members).copied().collect();
    members.sort_unstable();
    members.dedup();

    // Old members expose their shard flat (canonical patch order);
    // everyone else exposes an empty block and only serves the fence.
    let exposed = my_old.map(|(_, local)| local.to_flat()).unwrap_or_default();
    let mut win = RmaWindow::expose(world, win_id, members, exposed)?;

    // Receivers translate each (new patch ∩ old patch) intersection into
    // contiguous runs at flat offsets inside the owner's exposed shard,
    // then issue one get per contributing old owner.
    let mut plan: Vec<Vec<Region>> = Vec::new();
    if let Some(my_new_rank) = my_new {
        let my_regions = new_dad.patches(my_new_rank);
        for (o, &owner) in old_members.iter().enumerate() {
            let old_patches = old_dad.patches(o);
            let mut prefix = Vec::with_capacity(old_patches.len());
            let mut acc = 0usize;
            for p in &old_patches {
                prefix.push(acc);
                acc += p.len();
            }
            let mut runs: Vec<(usize, usize)> = Vec::new();
            let mut subs: Vec<Region> = Vec::new();
            for region in &my_regions {
                for (pi, patch) in old_patches.iter().enumerate() {
                    let Some(part) = patch.intersect(region) else { continue };
                    for run in region_runs(slice::from_ref(patch), &part) {
                        runs.push((prefix[pi] + run.patch_off, run.len));
                    }
                    subs.push(part);
                }
            }
            if !runs.is_empty() {
                win.get_runs(owner, runs)?;
                plan.push(subs);
            }
        }
    }

    let results = win.fence()?;
    debug_assert_eq!(results.len(), plan.len(), "one response per issued get");

    Ok(my_new.map(|r| {
        let mut arr = LocalArray::allocate(new_dad, r);
        for (subs, buf) in plan.iter().zip(results) {
            // Each get's response concatenates its intersections in issue
            // order, every intersection packed row-major — exactly what
            // unpack_region consumes.
            let mut cursor = 0usize;
            for sub in subs {
                arr.unpack_region(sub, &buf[cursor..cursor + sub.len()]);
                cursor += sub.len();
            }
        }
        arr
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::World;

    fn coded(idx: &[usize]) -> f64 {
        idx.iter().fold(0.0, |a, &i| a * 100.0 + i as f64) + 7.0
    }

    fn check_oracle(arr: &LocalArray<f64>) {
        for (idx, &v) in arr.iter() {
            assert_eq!(v, coded(&idx), "mismatch at {idx:?}");
        }
    }

    #[test]
    fn grow_spreads_survivor_data_onto_newcomers() {
        World::run(3, |p| {
            let c = p.world();
            let old = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
            let new = old.expand(3).unwrap();
            let mine = (c.rank() < 2).then(|| LocalArray::from_fn(&old, c.rank(), coded));
            let got = redistribute_elastic(
                c,
                1,
                &old,
                &new,
                &[0, 1],
                &[0, 1, 2],
                mine.as_ref().map(|m| (c.rank(), m)),
                Some(c.rank()),
            )
            .unwrap()
            .unwrap();
            assert_eq!(got.len(), new.local_size(c.rank()));
            assert!(got.len() < 18, "the grown decomposition spread the load");
            check_oracle(&got);
        });
    }

    #[test]
    fn graceful_shrink_carries_leaver_data() {
        // Unlike the death-shrink rebind, a graceful shrink loses nothing:
        // the leaver (rank 2) serves its shard through the window.
        World::run(3, |p| {
            let c = p.world();
            let old = Dad::block(Extents::new([6, 6]), &[3, 1]).unwrap();
            let new = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
            let mine = LocalArray::from_fn(&old, c.rank(), coded);
            let my_new = (c.rank() < 2).then(|| c.rank());
            let got = redistribute_elastic(
                c,
                2,
                &old,
                &new,
                &[0, 1, 2],
                &[0, 1],
                Some((c.rank(), &mine)),
                my_new,
            )
            .unwrap();
            match my_new {
                Some(r) => {
                    let got = got.unwrap();
                    assert_eq!(got.len(), new.local_size(r));
                    check_oracle(&got);
                }
                None => assert!(got.is_none(), "a pure source gets no new shard"),
            }
        });
    }

    #[test]
    fn disjoint_handoff_migrates_everything() {
        World::run(4, |p| {
            let c = p.world();
            let old = Dad::block(Extents::new([8]), &[2]).unwrap();
            let new = Dad::block(Extents::new([8]), &[2]).unwrap();
            let holder = c.rank() < 2;
            let mine = holder.then(|| LocalArray::from_fn(&old, c.rank(), coded));
            let got = redistribute_elastic(
                c,
                3,
                &old,
                &new,
                &[0, 1],
                &[2, 3],
                mine.as_ref().map(|m| (c.rank(), m)),
                (!holder).then(|| c.rank() - 2),
            )
            .unwrap();
            if holder {
                assert!(got.is_none());
            } else {
                check_oracle(&got.unwrap());
            }
        });
    }

    #[test]
    fn explicit_patchwork_grows_too() {
        // Round-robin-dealt explicit patches exercise the multi-patch
        // prefix-offset path (an owner's shard is several regions flat).
        World::run(3, |p| {
            let c = p.world();
            let patches: Vec<(Region, usize)> =
                (0..4).map(|i| (Region::new(vec![i * 2], vec![i * 2 + 2]), i % 2)).collect();
            let old =
                Dad::explicit(mxn_dad::ExplicitDist::new(Extents::new([8]), patches, 2).unwrap());
            let new = old.expand(3).unwrap();
            let mine = (c.rank() < 2).then(|| LocalArray::from_fn(&old, c.rank(), coded));
            let got = redistribute_elastic(
                c,
                4,
                &old,
                &new,
                &[0, 1],
                &[0, 1, 2],
                mine.as_ref().map(|m| (c.rank(), m)),
                Some(c.rank()),
            )
            .unwrap()
            .unwrap();
            check_oracle(&got);
        });
    }

    #[test]
    fn validation_rejects_inconsistent_calls() {
        World::run(1, |p| {
            let c = p.world();
            let a = Dad::block(Extents::new([4]), &[1]).unwrap();
            let b = Dad::block(Extents::new([5]), &[1]).unwrap();
            assert!(matches!(
                redistribute_elastic(c, 5, &a, &b, &[0], &[0], None, None),
                Err(MxnError::ShapeMismatch { .. })
            ));
            let a2 = Dad::block(Extents::new([4]), &[1]).unwrap();
            assert!(matches!(
                redistribute_elastic(c, 5, &a, &a2, &[0, 1], &[0], None, None),
                Err(MxnError::Handshake { .. })
            ));
            // Claiming a shard the member list assigns elsewhere.
            let mine = LocalArray::from_fn(&a, 0, |_| 0.0);
            assert!(matches!(
                redistribute_elastic(c, 5, &a, &a2, &[9], &[0], Some((0, &mine)), None),
                Err(MxnError::Handshake { .. })
            ));
        });
    }
}
