//! Particle-based data containers.
//!
//! "To support more complex data structure decompositions, a
//! 'particle-based' container solution is also under development"
//! (paper §4.1). Unlike dense arrays, particles move: ownership follows a
//! spatial decomposition of the domain, and after each step particles that
//! crossed a boundary must *migrate* to their new owner — and an M×N
//! coupling must deliver every particle to whichever remote rank owns its
//! position under the remote decomposition.
//!
//! The spatial decomposition reuses the DAD: the domain is a virtual cell
//! grid described by a [`Dad`], and a particle belongs to the rank owning
//! its cell.

use mxn_dad::Dad;
use mxn_runtime::{Comm, InterComm, MsgSize, Result};

/// One particle: a position in the unit square-ish domain plus a payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Stable identity (for tracking across migrations).
    pub id: u64,
    /// Position, one coordinate per domain axis (2-D here).
    pub pos: [f64; 2],
    /// Physical payload (mass, charge, …).
    pub value: f64,
}

impl MsgSize for Particle {
    fn msg_size(&self) -> usize {
        8 + 16 + 8
    }
}

/// Outcome counters of a migration or transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationReport {
    /// Particles that stayed on this rank.
    pub kept: usize,
    /// Particles sent away.
    pub sent: usize,
    /// Particles received.
    pub received: usize,
}

/// A rank's portion of a particle population, decomposed by cell ownership.
#[derive(Debug, Clone)]
pub struct ParticleField {
    /// Domain bounds: `[x_max, y_max]` (domain is `[0,x_max)×[0,y_max)`).
    domain: [f64; 2],
    /// Cell-grid decomposition (2-D dense descriptor over cells).
    cells: Dad,
    my_rank: usize,
    particles: Vec<Particle>,
}

impl ParticleField {
    /// Creates an empty field for `my_rank` with the given cell
    /// decomposition over the domain `[0, domain[0]) × [0, domain[1])`.
    pub fn new(domain: [f64; 2], cells: Dad, my_rank: usize) -> Self {
        assert_eq!(cells.extents().ndim(), 2, "particle domains are 2-D");
        assert!(domain[0] > 0.0 && domain[1] > 0.0);
        ParticleField { domain, cells, my_rank, particles: Vec::new() }
    }

    /// The cell a position falls into.
    pub fn cell_of(&self, pos: [f64; 2]) -> [usize; 2] {
        let nx = self.cells.extents().dim(0) as f64;
        let ny = self.cells.extents().dim(1) as f64;
        let cx = ((pos[0] / self.domain[0]) * nx).floor().clamp(0.0, nx - 1.0) as usize;
        let cy = ((pos[1] / self.domain[1]) * ny).floor().clamp(0.0, ny - 1.0) as usize;
        [cx, cy]
    }

    /// The rank owning a position under this field's decomposition.
    pub fn owner_of(&self, pos: [f64; 2]) -> usize {
        let c = self.cell_of(pos);
        self.cells.owner(&c)
    }

    /// Adds a particle (must belong to this rank).
    ///
    /// # Panics
    /// If the particle's position is owned by another rank.
    pub fn insert(&mut self, p: Particle) {
        assert_eq!(
            self.owner_of(p.pos),
            self.my_rank,
            "particle {} at {:?} inserted on non-owning rank {}",
            p.id,
            p.pos,
            self.my_rank
        );
        self.particles.push(p);
    }

    /// Seeds particles deterministically across the whole domain; each
    /// rank keeps the ones it owns (collective-by-convention).
    pub fn seed_global(&mut self, count: usize) {
        for id in 0..count as u64 {
            // Low-discrepancy-ish deterministic positions.
            let x = ((id as f64 * 0.754_877_666) % 1.0) * self.domain[0];
            let y = ((id as f64 * 0.569_840_296) % 1.0) * self.domain[1];
            let p = Particle { id, pos: [x, y], value: id as f64 * 0.5 };
            if self.owner_of(p.pos) == self.my_rank {
                self.particles.push(p);
            }
        }
    }

    /// The local particles.
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Mutable access for the application's "push" phase.
    pub fn particles_mut(&mut self) -> &mut Vec<Particle> {
        &mut self.particles
    }

    /// Number of local particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether this rank currently holds no particles.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Moves every particle by `(dx, dy)` with reflecting walls — a toy
    /// "push" so tests and examples have motion to migrate.
    pub fn advect(&mut self, dx: f64, dy: f64) {
        for p in &mut self.particles {
            p.pos[0] = reflect(p.pos[0] + dx, self.domain[0]);
            p.pos[1] = reflect(p.pos[1] + dy, self.domain[1]);
        }
    }

    /// Intra-program migration after a push: every rank sends its departed
    /// particles to their new owners. Collective over `comm` (which must
    /// match the decomposition's rank count).
    pub fn migrate(&mut self, comm: &Comm) -> Result<MigrationReport> {
        assert_eq!(comm.size(), self.cells.nranks(), "comm does not match decomposition");
        let mut outgoing: Vec<Vec<Particle>> = vec![Vec::new(); comm.size()];
        let mut kept = Vec::with_capacity(self.particles.len());
        for p in self.particles.drain(..) {
            let owner = self.cells.owner(&cell(&self.domain, &self.cells, p.pos));
            if owner == self.my_rank {
                kept.push(p);
            } else {
                outgoing[owner].push(p);
            }
        }
        let mut report = MigrationReport { kept: kept.len(), ..Default::default() };
        report.sent = outgoing.iter().map(Vec::len).sum();
        let incoming = comm.alltoallv(outgoing)?;
        self.particles = kept;
        for batch in incoming {
            report.received += batch.len();
            self.particles.extend(batch);
        }
        Ok(report)
    }

    /// M×N transfer: ships *all* local particles to the remote program,
    /// delivering each to the remote rank owning its position under
    /// `remote_cells`. Call on every source rank; destinations call
    /// [`ParticleField::receive_mxn`].
    pub fn send_mxn(&self, ic: &InterComm, remote_cells: &Dad, tag: i32) -> Result<usize> {
        let mut outgoing: Vec<Vec<Particle>> = vec![Vec::new(); ic.remote_size()];
        for p in &self.particles {
            let c = cell(&self.domain, remote_cells, p.pos);
            outgoing[remote_cells.owner(&c)].push(*p);
        }
        let mut sent = 0;
        for (dst, batch) in outgoing.into_iter().enumerate() {
            sent += batch.len();
            ic.send(dst, tag, batch)?;
        }
        Ok(sent)
    }

    /// Destination side of [`ParticleField::send_mxn`]: collects one batch
    /// from every remote rank.
    pub fn receive_mxn(&mut self, ic: &InterComm, tag: i32) -> Result<usize> {
        let mut received = 0;
        for src in 0..ic.remote_size() {
            let batch: Vec<Particle> = ic.recv(src, tag)?;
            received += batch.len();
            for p in &batch {
                debug_assert_eq!(self.owner_of(p.pos), self.my_rank);
            }
            self.particles.extend(batch);
        }
        Ok(received)
    }
}

fn cell(domain: &[f64; 2], cells: &Dad, pos: [f64; 2]) -> [usize; 2] {
    let nx = cells.extents().dim(0) as f64;
    let ny = cells.extents().dim(1) as f64;
    [
        ((pos[0] / domain[0]) * nx).floor().clamp(0.0, nx - 1.0) as usize,
        ((pos[1] / domain[1]) * ny).floor().clamp(0.0, ny - 1.0) as usize,
    ]
}

fn reflect(x: f64, max: f64) -> f64 {
    let mut x = x % (2.0 * max);
    if x < 0.0 {
        x += 2.0 * max;
    }
    if x >= max {
        2.0 * max - x - f64::EPSILON * max
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::{Universe, World};

    fn cells(grid: &[usize]) -> Dad {
        Dad::block(Extents::new([8, 8]), grid).unwrap()
    }

    #[test]
    fn cell_and_owner_mapping() {
        let f = ParticleField::new([1.0, 1.0], cells(&[2, 2]), 0);
        assert_eq!(f.cell_of([0.0, 0.0]), [0, 0]);
        assert_eq!(f.cell_of([0.99, 0.99]), [7, 7]);
        assert_eq!(f.owner_of([0.1, 0.1]), 0);
        assert_eq!(f.owner_of([0.9, 0.1]), 2);
        assert_eq!(f.owner_of([0.1, 0.9]), 1);
        assert_eq!(f.owner_of([0.9, 0.9]), 3);
    }

    #[test]
    fn seeding_partitions_particles() {
        let total: usize = (0..4)
            .map(|r| {
                let mut f = ParticleField::new([1.0, 1.0], cells(&[2, 2]), r);
                f.seed_global(1000);
                // All seeded particles are locally owned.
                assert!(f.particles().iter().all(|p| f.owner_of(p.pos) == r));
                f.len()
            })
            .sum();
        assert_eq!(total, 1000, "every particle seeded exactly once");
    }

    #[test]
    #[should_panic(expected = "non-owning rank")]
    fn insert_checks_ownership() {
        let mut f = ParticleField::new([1.0, 1.0], cells(&[2, 2]), 0);
        f.insert(Particle { id: 0, pos: [0.9, 0.9], value: 0.0 });
    }

    #[test]
    fn migration_restores_ownership_and_conserves_particles() {
        World::run(4, |p| {
            let comm = p.world();
            let mut f = ParticleField::new([1.0, 1.0], cells(&[2, 2]), comm.rank());
            f.seed_global(400);
            let before: usize = comm.allreduce(f.len(), |a, b| *a += b).unwrap();
            // Push particles diagonally, then migrate.
            f.advect(0.3, 0.17);
            let report = f.migrate(comm).unwrap();
            assert_eq!(report.kept + report.sent, report.kept + report.sent);
            // Every particle is now locally owned.
            assert!(f.particles().iter().all(|q| f.owner_of(q.pos) == comm.rank()));
            // Global population conserved.
            let after: usize = comm.allreduce(f.len(), |a, b| *a += b).unwrap();
            assert_eq!(before, after);
            assert_eq!(after, 400);
        });
    }

    #[test]
    fn repeated_migration_under_flow() {
        World::run(4, |p| {
            let comm = p.world();
            let mut f = ParticleField::new([2.0, 1.0], cells(&[4, 1]), comm.rank());
            f.seed_global(200);
            let mut ids = std::collections::BTreeSet::new();
            for step in 0..6 {
                f.advect(0.23, -0.11);
                f.migrate(comm).unwrap();
                assert!(
                    f.particles().iter().all(|q| f.owner_of(q.pos) == comm.rank()),
                    "step {step}: stray particle"
                );
            }
            // Identities survive: gather all ids at rank 0.
            let local_ids: Vec<u64> = f.particles().iter().map(|q| q.id).collect();
            if let Some(all) = comm.gather(0, local_ids).unwrap() {
                for batch in all {
                    for id in batch {
                        assert!(ids.insert(id), "duplicate particle id {id}");
                    }
                }
                assert_eq!(ids.len(), 200);
            }
        });
    }

    #[test]
    fn mxn_particle_transfer() {
        // M = 4 source ranks (2×2 cells) → N = 3 destination ranks
        // (3 column stripes): every particle must land on the remote rank
        // owning its position.
        Universe::run(&[4, 3], |_, ctx| {
            let src_cells = Dad::block(Extents::new([8, 8]), &[2, 2]).unwrap();
            let dst_cells = Dad::block(Extents::new([9, 6]), &[3, 1]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut f = ParticleField::new([1.0, 1.0], src_cells.clone(), ctx.comm.rank());
                f.seed_global(300);
                f.send_mxn(ic, &dst_cells, 5).unwrap();
            } else {
                let ic = ctx.intercomm(0);
                let mut f = ParticleField::new([1.0, 1.0], dst_cells.clone(), ctx.comm.rank());
                let received = f.receive_mxn(ic, 5).unwrap();
                assert_eq!(received, f.len());
                assert!(f.particles().iter().all(|p| f.owner_of(p.pos) == ctx.comm.rank()));
                // Population check across the destination program.
                let total: usize = ctx.comm.allreduce(f.len(), |a, b| *a += b).unwrap();
                assert_eq!(total, 300);
            }
        });
    }

    #[test]
    fn reflect_keeps_positions_in_domain() {
        for x in [-0.4, 0.0, 0.5, 0.99, 1.3, 2.6, -1.7] {
            let r = reflect(x, 1.0);
            assert!((0.0..1.0).contains(&r), "reflect({x}) = {r}");
        }
    }
}
