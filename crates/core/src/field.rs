//! Parallel data field registration.
//!
//! "Parallel components can register their parallel data fields by
//! providing a handle to a Distributed Array Descriptor (DAD) object …
//! The M×N registration process allows a component to express the required
//! DAD information for any dense rectangular array decomposition, and also
//! indicates which access modes for M×N transfers with that data field are
//! allowed (read, write or read/write)." (paper §4.1)

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mxn_dad::{AccessMode, Dad, LocalArray};

use crate::error::{MxnError, Result};

/// Shared, lockable handle to a rank's local field storage.
pub type FieldData = Arc<RwLock<LocalArray<f64>>>;

/// A registered parallel data field on one rank.
#[derive(Clone)]
pub struct FieldEntry {
    dad: Dad,
    access: AccessMode,
    data: FieldData,
}

impl FieldEntry {
    /// The field's distribution descriptor.
    pub fn dad(&self) -> &Dad {
        &self.dad
    }

    /// The allowed transfer directions.
    pub fn access(&self) -> AccessMode {
        self.access
    }

    /// The rank-local storage handle.
    pub fn data(&self) -> &FieldData {
        &self.data
    }
}

/// One rank's registry of M×N-visible fields.
#[derive(Default)]
pub struct FieldRegistry {
    rank: usize,
    fields: HashMap<String, FieldEntry>,
}

impl FieldRegistry {
    /// Creates an empty registry for this rank.
    pub fn new(rank: usize) -> Self {
        FieldRegistry { rank, fields: HashMap::new() }
    }

    /// The rank this registry belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Registers `data` (this rank's storage of a field distributed as
    /// `dad`) under `name` with the given access mode.
    pub fn register(
        &mut self,
        name: &str,
        dad: Dad,
        access: AccessMode,
        data: FieldData,
    ) -> Result<()> {
        if self.fields.contains_key(name) {
            return Err(MxnError::FieldExists { field: name.to_string() });
        }
        {
            let local = data.read();
            let expected = dad.local_size(self.rank);
            if local.len() != expected {
                return Err(MxnError::StorageMismatch {
                    field: name.to_string(),
                    expected,
                    actual: local.len(),
                });
            }
        }
        self.fields.insert(name.to_string(), FieldEntry { dad, access, data });
        Ok(())
    }

    /// Registers a freshly allocated (zeroed) field — the usual receiving
    /// side pattern. Returns the storage handle.
    pub fn register_allocated(
        &mut self,
        name: &str,
        dad: Dad,
        access: AccessMode,
    ) -> Result<FieldData> {
        let data: FieldData = Arc::new(RwLock::new(LocalArray::allocate(&dad, self.rank)));
        self.register(name, dad, access, data.clone())?;
        Ok(data)
    }

    /// Rebinds `name` to a post-shrink descriptor: reallocates this rank's
    /// storage for `new_dad` at `new_rank`, carrying over every element the
    /// rank owned under the old descriptor (as `old_rank`) and zeroing the
    /// rest. Elements owned only by ranks that did not survive are the data
    /// lost to the failure. The `FieldData` handle itself is preserved —
    /// the new storage is swapped in under the same `Arc`, so every clone
    /// held by application code observes the rebound field.
    pub fn rebind(
        &mut self,
        name: &str,
        new_dad: Dad,
        old_rank: usize,
        new_rank: usize,
    ) -> Result<()> {
        let entry = self
            .fields
            .get_mut(name)
            .ok_or_else(|| MxnError::FieldNotFound { field: name.to_string() })?;
        let fresh = {
            let old = entry.data.read();
            let old_dad = &entry.dad;
            LocalArray::from_fn(&new_dad, new_rank, |idx| {
                if old_dad.owner(idx) == old_rank {
                    old.get(idx).copied().unwrap_or_default()
                } else {
                    0.0
                }
            })
        };
        *entry.data.write() = fresh;
        entry.dad = new_dad;
        Ok(())
    }

    /// Rebinds `name` after an *elastic* reconfiguration: swaps `fresh` —
    /// this rank's storage assembled by
    /// [`crate::elastic::redistribute_elastic`] for `new_rank` under
    /// `new_dad` — in under the same `Arc`, so every clone of the
    /// [`FieldData`] handle observes the new decomposition. Unlike
    /// [`FieldRegistry::rebind`] (the lossy death-shrink path), nothing is
    /// zeroed here: the caller moved every element through the RMA window
    /// before rebinding.
    pub fn rebind_elastic(
        &mut self,
        name: &str,
        new_dad: Dad,
        new_rank: usize,
        fresh: LocalArray<f64>,
    ) -> Result<()> {
        let entry = self
            .fields
            .get_mut(name)
            .ok_or_else(|| MxnError::FieldNotFound { field: name.to_string() })?;
        let expected = new_dad.local_size(new_rank);
        if fresh.len() != expected {
            return Err(MxnError::StorageMismatch {
                field: name.to_string(),
                expected,
                actual: fresh.len(),
            });
        }
        *entry.data.write() = fresh;
        entry.dad = new_dad;
        Ok(())
    }

    /// Unregisters a field (e.g. before re-decomposition).
    pub fn unregister(&mut self, name: &str) -> Result<()> {
        self.fields
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| MxnError::FieldNotFound { field: name.to_string() })
    }

    /// Looks up a field.
    pub fn get(&self, name: &str) -> Result<&FieldEntry> {
        self.fields.get(name).ok_or_else(|| MxnError::FieldNotFound { field: name.to_string() })
    }

    /// Registered field names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.fields.keys().cloned().collect();
        v.sort();
        v
    }

    /// Checks a field may serve as a transfer *source*.
    pub fn check_exportable(&self, name: &str) -> Result<&FieldEntry> {
        let f = self.get(name)?;
        if f.access.readable() {
            Ok(f)
        } else {
            Err(MxnError::AccessDenied { field: name.to_string(), needed: "read" })
        }
    }

    /// Checks a field may serve as a transfer *destination*.
    pub fn check_importable(&self, name: &str) -> Result<&FieldEntry> {
        let f = self.get(name)?;
        if f.access.writable() {
            Ok(f)
        } else {
            Err(MxnError::AccessDenied { field: name.to_string(), needed: "write" })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;

    fn dad() -> Dad {
        Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = FieldRegistry::new(0);
        let data = reg.register_allocated("temp", dad(), AccessMode::ReadWrite).unwrap();
        assert_eq!(data.read().len(), 8);
        let f = reg.get("temp").unwrap();
        assert_eq!(f.access(), AccessMode::ReadWrite);
        assert_eq!(reg.names(), vec!["temp".to_string()]);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut reg = FieldRegistry::new(0);
        reg.register_allocated("t", dad(), AccessMode::Read).unwrap();
        assert!(matches!(
            reg.register_allocated("t", dad(), AccessMode::Read),
            Err(MxnError::FieldExists { .. })
        ));
    }

    #[test]
    fn storage_size_validated() {
        let mut reg = FieldRegistry::new(0);
        // Storage allocated for rank 1 has the wrong shape for rank 0...
        // here sizes happen to be equal (8 elements), so craft a real
        // mismatch: allocate for a different descriptor.
        let wrong = Arc::new(RwLock::new(LocalArray::allocate(
            &Dad::block(Extents::new([2, 2]), &[1, 1]).unwrap(),
            0,
        )));
        assert!(matches!(
            reg.register("t", dad(), AccessMode::Read, wrong),
            Err(MxnError::StorageMismatch { expected: 8, actual: 4, .. })
        ));
    }

    #[test]
    fn access_mode_enforcement() {
        let mut reg = FieldRegistry::new(0);
        reg.register_allocated("ro", dad(), AccessMode::Read).unwrap();
        reg.register_allocated("wo", dad(), AccessMode::Write).unwrap();
        assert!(reg.check_exportable("ro").is_ok());
        assert!(matches!(
            reg.check_importable("ro"),
            Err(MxnError::AccessDenied { needed: "write", .. })
        ));
        assert!(reg.check_importable("wo").is_ok());
        assert!(matches!(
            reg.check_exportable("wo"),
            Err(MxnError::AccessDenied { needed: "read", .. })
        ));
    }

    #[test]
    fn rebind_carries_over_surviving_data() {
        // 4×4 over 2 row-block ranks; rank 0 owns rows 0..2. After rank 1
        // dies the survivor descriptor gives everything to (new) rank 0.
        let old = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
        let mut reg = FieldRegistry::new(0);
        let data = reg.register_allocated("t", old.clone(), AccessMode::ReadWrite).unwrap();
        {
            let mut d = data.write();
            for r in 0..2 {
                for c in 0..4 {
                    *d.get_mut(&[r, c]).unwrap() = (r * 4 + c) as f64 + 1.0;
                }
            }
        }
        let shrunk = old.shrink(&[0]).unwrap();
        reg.rebind("t", shrunk.clone(), 0, 0).unwrap();
        assert_eq!(reg.get("t").unwrap().dad().fingerprint(), shrunk.fingerprint());
        let local = data.read();
        assert_eq!(local.len(), 16, "same Arc now holds the full array");
        assert_eq!(*local.get(&[0, 0]).unwrap(), 1.0, "owned-before data carried over");
        assert_eq!(*local.get(&[1, 3]).unwrap(), 8.0);
        assert_eq!(*local.get(&[3, 3]).unwrap(), 0.0, "dead rank's data is zeroed");
    }

    #[test]
    fn rebind_elastic_swaps_storage_under_the_same_arc() {
        let old = Dad::block(Extents::new([6]), &[2]).unwrap();
        let new = old.expand(3).unwrap();
        let mut reg = FieldRegistry::new(0);
        let handle = reg.register_allocated("t", old.clone(), AccessMode::ReadWrite).unwrap();
        let fresh = LocalArray::from_fn(&new, 0, |idx| idx[0] as f64 + 1.0);
        reg.rebind_elastic("t", new.clone(), 0, fresh).unwrap();
        assert_eq!(reg.get("t").unwrap().dad().fingerprint(), new.fingerprint());
        let d = handle.read();
        assert_eq!(d.len(), new.local_size(0), "old clones see the rebound storage");
        for (idx, &v) in d.iter() {
            assert_eq!(v, idx[0] as f64 + 1.0);
        }
        // A wrong-sized shard is rejected before anything is swapped.
        let wrong = LocalArray::from_fn(&old, 1, |_| 0.0);
        assert!(matches!(
            reg.rebind_elastic("t", new, 0, wrong),
            Err(MxnError::StorageMismatch { .. })
        ));
    }

    #[test]
    fn rebind_missing_field_errors() {
        let mut reg = FieldRegistry::new(0);
        assert!(matches!(reg.rebind("nope", dad(), 0, 0), Err(MxnError::FieldNotFound { .. })));
    }

    #[test]
    fn unregister_then_missing() {
        let mut reg = FieldRegistry::new(0);
        reg.register_allocated("t", dad(), AccessMode::Read).unwrap();
        reg.unregister("t").unwrap();
        assert!(matches!(reg.get("t"), Err(MxnError::FieldNotFound { .. })));
        assert!(matches!(reg.unregister("t"), Err(MxnError::FieldNotFound { .. })));
    }
}
