//! Sorted disjoint segment lists over a linearization.
//!
//! A [`SegmentList`] is the abstract intermediate representation at the
//! heart of Meta-Chaos-style coupling (paper §2.2.1): the set of positions
//! of the 1-D linearization that some rank owns or needs, stored as sorted,
//! non-overlapping, maximally merged `(start, len)` runs. Intersecting two
//! such lists is a single merge sweep — this is how communication schedules
//! are computed without materializing any per-element tables.

/// A sorted, disjoint, merged list of `(start, len)` runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentList {
    runs: Vec<(usize, usize)>,
}

impl SegmentList {
    /// An empty list.
    pub fn new() -> Self {
        SegmentList::default()
    }

    /// Builds from arbitrary runs: sorts, checks disjointness, merges
    /// adjacent runs, drops empty ones.
    ///
    /// # Panics
    /// If two input runs overlap (ownership would be ambiguous).
    pub fn from_runs(mut runs: Vec<(usize, usize)>) -> Self {
        runs.retain(|&(_, l)| l > 0);
        runs.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(runs.len());
        for (s, l) in runs {
            match merged.last_mut() {
                Some((ps, pl)) => {
                    assert!(*ps + *pl <= s, "overlapping runs in segment list");
                    if *ps + *pl == s {
                        *pl += l;
                    } else {
                        merged.push((s, l));
                    }
                }
                None => merged.push((s, l)),
            }
        }
        SegmentList { runs: merged }
    }

    /// The merged runs.
    pub fn runs(&self) -> &[(usize, usize)] {
        &self.runs
    }

    /// Total number of covered positions.
    pub fn total_len(&self) -> usize {
        self.runs.iter().map(|&(_, l)| l).sum()
    }

    /// True when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Is position `p` covered? (binary search)
    pub fn contains(&self, p: usize) -> bool {
        match self.runs.binary_search_by(|&(s, _)| s.cmp(&p)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => {
                let (s, l) = self.runs[i - 1];
                p < s + l
            }
        }
    }

    /// Intersection by merge sweep — the schedule-computation kernel.
    pub fn intersect(&self, other: &SegmentList) -> SegmentList {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a_s, a_l) = self.runs[i];
            let (b_s, b_l) = other.runs[j];
            let (a_e, b_e) = (a_s + a_l, b_s + b_l);
            let s = a_s.max(b_s);
            let e = a_e.min(b_e);
            if s < e {
                out.push((s, e - s));
            }
            if a_e <= b_e {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Runs are produced sorted and disjoint; adjacent merging can still
        // apply when inputs abut.
        SegmentList::from_runs(out)
    }

    /// Iterates every covered position in ascending order.
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs.iter().flat_map(|&(s, l)| s..s + l)
    }

    /// Memory footprint of the list itself (descriptor-size metric).
    pub fn descriptor_bytes(&self) -> usize {
        self.runs.len() * std::mem::size_of::<(usize, usize)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_runs_sorts_and_merges() {
        let s = SegmentList::from_runs(vec![(10, 5), (0, 3), (3, 2), (20, 0)]);
        assert_eq!(s.runs(), &[(0, 5), (10, 5)]);
        assert_eq!(s.total_len(), 10);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        SegmentList::from_runs(vec![(0, 5), (4, 2)]);
    }

    #[test]
    fn contains_with_binary_search() {
        let s = SegmentList::from_runs(vec![(2, 3), (10, 1)]);
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert!(s.contains(10));
        assert!(!s.contains(11));
    }

    #[test]
    fn intersect_basic() {
        let a = SegmentList::from_runs(vec![(0, 10), (20, 5)]);
        let b = SegmentList::from_runs(vec![(5, 20)]);
        let i = a.intersect(&b);
        assert_eq!(i.runs(), &[(5, 5), (20, 5)]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = SegmentList::from_runs(vec![(0, 5)]);
        let b = SegmentList::from_runs(vec![(5, 5)]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_is_commutative_and_subset() {
        let a = SegmentList::from_runs(vec![(0, 4), (8, 4), (16, 2)]);
        let b = SegmentList::from_runs(vec![(2, 8), (17, 5)]);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        assert_eq!(ab, ba);
        for p in ab.positions() {
            assert!(a.contains(p) && b.contains(p));
        }
        for p in 0..30 {
            assert_eq!(ab.contains(p), a.contains(p) && b.contains(p));
        }
    }

    #[test]
    fn positions_iterate_in_order() {
        let s = SegmentList::from_runs(vec![(3, 2), (7, 1)]);
        assert_eq!(s.positions().collect::<Vec<_>>(), vec![3, 4, 7]);
    }

    #[test]
    fn empty_list_properties() {
        let e = SegmentList::new();
        assert!(e.is_empty());
        assert_eq!(e.total_len(), 0);
        assert!(!e.contains(0));
        assert!(e.intersect(&SegmentList::from_runs(vec![(0, 10)])).is_empty());
    }
}
