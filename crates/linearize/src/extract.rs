//! Moving values between local patch storage and linear segments.
//!
//! These are the de/serialization kernels of linearization-based transfer:
//! given a rank's [`LocalArray`] and an [`ArrayOrder`], extract the values
//! at a linear segment, or insert received values at a segment. Positions
//! are translated element-by-element through the linearization — the
//! "structureless" cost the paper contrasts with compact descriptors
//! (§2.2.2): correctness is easy, but every element pays an O(ndim) index
//! translation.

use mxn_dad::{Extents, LocalArray};

use crate::order::ArrayOrder;
use crate::segments::SegmentList;

/// Extracts the values at linear run `(start, len)` from local storage.
///
/// # Panics
/// If any position in the run is not locally stored.
pub fn extract_run<T: Copy>(
    local: &LocalArray<T>,
    extents: &Extents,
    order: ArrayOrder,
    run: (usize, usize),
) -> Vec<T> {
    let (start, len) = run;
    let mut out = Vec::with_capacity(len);
    // Row-major fast path: a linear run is a sequence of last-axis row
    // fragments, each contiguous in patch storage — copy them as slices
    // instead of translating every element.
    if order == ArrayOrder::RowMajor && extents.ndim() > 0 {
        let nd = extents.ndim();
        let row_len = extents.dim(nd - 1);
        let mut p = start;
        while p < start + len {
            let idx = order.index(extents, p);
            let room_in_row = row_len - idx[nd - 1];
            let take = room_in_row.min(start + len - p);
            let mut hi: Vec<usize> = idx.iter().map(|&i| i + 1).collect();
            hi[nd - 1] = idx[nd - 1] + take;
            let region = mxn_dad::Region::new(idx, hi);
            out.extend(local.pack_region(&region));
            p += take;
        }
        return out;
    }
    for p in start..start + len {
        let idx = order.index(extents, p);
        let v = local
            .get(&idx)
            .unwrap_or_else(|| panic!("linear position {p} (index {idx:?}) not local"));
        out.push(*v);
    }
    out
}

/// Extracts the values at every run of `segs`, concatenated in order.
pub fn extract_segments<T: Copy>(
    local: &LocalArray<T>,
    extents: &Extents,
    order: ArrayOrder,
    segs: &SegmentList,
) -> Vec<T> {
    let mut out = Vec::with_capacity(segs.total_len());
    for &run in segs.runs() {
        out.extend(extract_run(local, extents, order, run));
    }
    out
}

/// Writes `data` into local storage at linear run `(start, len)`.
///
/// # Panics
/// If lengths mismatch or any position is not locally stored.
pub fn insert_run<T: Copy>(
    local: &mut LocalArray<T>,
    extents: &Extents,
    order: ArrayOrder,
    run: (usize, usize),
    data: &[T],
) {
    let (start, len) = run;
    assert_eq!(data.len(), len, "insert length mismatch");
    // Mirror of the extract fast path: write whole row fragments.
    if order == ArrayOrder::RowMajor && extents.ndim() > 0 {
        let nd = extents.ndim();
        let row_len = extents.dim(nd - 1);
        let mut p = start;
        let mut cursor = 0;
        while p < start + len {
            let idx = order.index(extents, p);
            let room_in_row = row_len - idx[nd - 1];
            let take = room_in_row.min(start + len - p);
            let mut hi: Vec<usize> = idx.iter().map(|&i| i + 1).collect();
            hi[nd - 1] = idx[nd - 1] + take;
            let region = mxn_dad::Region::new(idx, hi);
            local.unpack_region(&region, &data[cursor..cursor + take]);
            p += take;
            cursor += take;
        }
        return;
    }
    for (k, p) in (start..start + len).enumerate() {
        let idx = order.index(extents, p);
        let slot = local
            .get_mut(&idx)
            .unwrap_or_else(|| panic!("linear position {p} (index {idx:?}) not local"));
        *slot = data[k];
    }
}

/// Writes concatenated `data` into local storage at every run of `segs`.
pub fn insert_segments<T: Copy>(
    local: &mut LocalArray<T>,
    extents: &Extents,
    order: ArrayOrder,
    segs: &SegmentList,
    data: &[T],
) {
    assert_eq!(data.len(), segs.total_len(), "insert length mismatch");
    let mut cursor = 0;
    for &(s, l) in segs.runs() {
        insert_run(local, extents, order, (s, l), &data[cursor..cursor + l]);
        cursor += l;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Dad;

    fn setup() -> (Dad, LocalArray<i64>) {
        let dad = Dad::block(Extents::new([4, 4]), &[2, 2]).unwrap();
        // Rank 0 owns rows 0..2, cols 0..2 with values 10*i + j.
        let local = LocalArray::from_fn(&dad, 0, |idx| (idx[0] * 10 + idx[1]) as i64);
        (dad, local)
    }

    #[test]
    fn extract_row_major_run() {
        let (dad, local) = setup();
        // Linear positions 0..2 are (0,0), (0,1).
        let v = extract_run(&local, dad.extents(), ArrayOrder::RowMajor, (0, 2));
        assert_eq!(v, vec![0, 1]);
        // Positions 4..6 are (1,0), (1,1).
        let v = extract_run(&local, dad.extents(), ArrayOrder::RowMajor, (4, 2));
        assert_eq!(v, vec![10, 11]);
    }

    #[test]
    fn extract_col_major_run() {
        let (dad, local) = setup();
        // Col-major position p = j*4 + i; positions 0..2 = (0,0), (1,0).
        let v = extract_run(&local, dad.extents(), ArrayOrder::ColMajor, (0, 2));
        assert_eq!(v, vec![0, 10]);
    }

    #[test]
    #[should_panic(expected = "not local")]
    fn extract_nonlocal_panics() {
        let (dad, local) = setup();
        // Position 2 is (0,2), owned by rank 1.
        extract_run(&local, dad.extents(), ArrayOrder::RowMajor, (2, 1));
    }

    #[test]
    fn roundtrip_through_segments() {
        let (dad, mut local) = setup();
        let segs = ArrayOrder::RowMajor.rank_segments(&dad, 0);
        let data = extract_segments(&local, dad.extents(), ArrayOrder::RowMajor, &segs);
        assert_eq!(data.len(), 4);
        // Zero everything, re-insert, verify restored.
        let doubled: Vec<i64> = data.iter().map(|v| v * 2).collect();
        insert_segments(&mut local, dad.extents(), ArrayOrder::RowMajor, &segs, &doubled);
        assert_eq!(*local.get(&[1, 1]).unwrap(), 22);
        assert_eq!(*local.get(&[0, 1]).unwrap(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn insert_length_checked() {
        let (dad, mut local) = setup();
        insert_run(&mut local, dad.extents(), ArrayOrder::RowMajor, (0, 2), &[1]);
    }
}
