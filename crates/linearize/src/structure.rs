//! Linearization of non-array structures (trees and graphs).
//!
//! "Linearization simplifies the task of matching a variety of data
//! structures, from multidimensional arrays to trees or graphs"
//! (paper §2.2.1). This module linearizes trees (preorder) and graphs
//! (BFS from a root), producing the same [`SegmentList`] intermediate
//! representation used for arrays — so the same schedule machinery couples
//! a tree-structured producer to an array-structured consumer.

use crate::segments::SegmentList;

/// A rooted tree over nodes `0..n`, given as a children table.
#[derive(Debug, Clone)]
pub struct Tree {
    children: Vec<Vec<usize>>,
    root: usize,
}

impl Tree {
    /// Creates a tree; `children[v]` lists v's children.
    ///
    /// # Panics
    /// If the structure is not a tree reaching all nodes from `root`
    /// (cycles or disconnected nodes).
    pub fn new(children: Vec<Vec<usize>>, root: usize) -> Self {
        let t = Tree { children, root };
        let order = t.preorder();
        assert_eq!(order.len(), t.children.len(), "tree must reach every node exactly once");
        t
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True for the empty tree (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Depth-first preorder of node ids.
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.children.len());
        let mut stack = vec![self.root];
        let mut visited = vec![false; self.children.len()];
        while let Some(v) = stack.pop() {
            assert!(!visited[v], "cycle through node {v}");
            visited[v] = true;
            out.push(v);
            // Push children reversed so the leftmost is visited first.
            for &c in self.children[v].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

/// An undirected graph over nodes `0..n` as an adjacency list.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// Creates a graph from adjacency lists.
    pub fn new(adj: Vec<Vec<usize>>) -> Self {
        Graph { adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Breadth-first order from `root`; unreachable nodes are appended in
    /// id order so the result is always a complete linearization.
    pub fn bfs_order(&self, root: usize) -> Vec<usize> {
        let n = self.adj.len();
        let mut out = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        if root < n {
            queue.push_back(root);
            seen[root] = true;
        }
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        for (v, &s) in seen.iter().enumerate().take(n) {
            if !s {
                out.push(v);
            }
        }
        out
    }
}

/// A concrete node→position linearization of any structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLinearization {
    /// `order[pos]` = node at linear position `pos`.
    order: Vec<usize>,
    /// `pos[node]` = linear position of `node`.
    pos: Vec<usize>,
}

impl StructLinearization {
    /// Builds from a complete node order (a permutation of `0..n`).
    ///
    /// # Panics
    /// If `order` is not a permutation.
    pub fn from_order(order: Vec<usize>) -> Self {
        let n = order.len();
        let mut pos = vec![usize::MAX; n];
        for (p, &v) in order.iter().enumerate() {
            assert!(v < n, "node id out of range");
            assert_eq!(pos[v], usize::MAX, "node {v} appears twice");
            pos[v] = p;
        }
        StructLinearization { order, pos }
    }

    /// Linearizes a tree by preorder.
    pub fn tree_preorder(tree: &Tree) -> Self {
        Self::from_order(tree.preorder())
    }

    /// Linearizes a graph by BFS from `root`.
    pub fn graph_bfs(graph: &Graph, root: usize) -> Self {
        Self::from_order(graph.bfs_order(root))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for an empty structure.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Linear position of `node`.
    pub fn position(&self, node: usize) -> usize {
        self.pos[node]
    }

    /// Node at linear `position`.
    pub fn node(&self, position: usize) -> usize {
        self.order[position]
    }

    /// The linear footprint of a set of nodes (e.g. one rank's partition of
    /// the tree/graph) as a segment list.
    pub fn segments_of(&self, nodes: &[usize]) -> SegmentList {
        SegmentList::from_runs(nodes.iter().map(|&v| (self.pos[v], 1)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Tree {
        //        0
        //      / | \
        //     1  2  3
        //    / \     \
        //   4   5     6
        Tree::new(vec![vec![1, 2, 3], vec![4, 5], vec![], vec![6], vec![], vec![], vec![]], 0)
    }

    #[test]
    fn preorder_visits_left_first() {
        assert_eq!(sample_tree().preorder(), vec![0, 1, 4, 5, 2, 3, 6]);
    }

    #[test]
    #[should_panic]
    fn cyclic_tree_rejected() {
        Tree::new(vec![vec![1], vec![0]], 0);
    }

    #[test]
    #[should_panic(expected = "every node")]
    fn disconnected_tree_rejected() {
        Tree::new(vec![vec![], vec![]], 0);
    }

    #[test]
    fn bfs_levels() {
        let g = Graph::new(vec![vec![1, 2], vec![0, 3], vec![0, 3], vec![1, 2]]);
        assert_eq!(g.bfs_order(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs_order(3), vec![3, 1, 2, 0]);
    }

    #[test]
    fn bfs_appends_unreachable() {
        let g = Graph::new(vec![vec![1], vec![0], vec![]]);
        assert_eq!(g.bfs_order(0), vec![0, 1, 2]);
    }

    #[test]
    fn linearization_is_bijective() {
        let lin = StructLinearization::tree_preorder(&sample_tree());
        for node in 0..lin.len() {
            assert_eq!(lin.node(lin.position(node)), node);
        }
        for pos in 0..lin.len() {
            assert_eq!(lin.position(lin.node(pos)), pos);
        }
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn non_permutation_rejected() {
        StructLinearization::from_order(vec![0, 0, 1]);
    }

    #[test]
    fn segments_merge_contiguous_nodes() {
        let lin = StructLinearization::tree_preorder(&sample_tree());
        // Nodes 1,4,5 occupy preorder positions 1,2,3 → one merged run.
        let s = lin.segments_of(&[1, 4, 5]);
        assert_eq!(s.runs(), &[(1, 3)]);
        // A scattered set produces multiple runs.
        let s2 = lin.segments_of(&[0, 2, 6]);
        assert_eq!(s2.runs(), &[(0, 1), (4, 1), (6, 1)]);
    }

    #[test]
    fn tree_and_array_share_segment_ir() {
        // The point of linearization: a tree partition and an array
        // partition are both just SegmentLists, so they can be intersected.
        let lin = StructLinearization::tree_preorder(&sample_tree());
        let tree_part = lin.segments_of(&[1, 4, 5, 2]); // positions 1..=4
        let array_part = SegmentList::from_runs(vec![(3, 4)]); // positions 3..7
        let overlap = tree_part.intersect(&array_part);
        assert_eq!(overlap.runs(), &[(3, 2)]);
    }
}
