//! The receiver-request redistribution protocol.
//!
//! This reproduces the Indiana University MPI-IO M×N device (paper §2.2.1):
//! "each process on the receiver side broadcasts to the senders which
//! chunks of data it requires, referencing them to the linearization. At
//! the expense of this small communication overhead, **no communication
//! schedule is required**." Experiment E7 compares this protocol against
//! precomputed schedules to find the reuse crossover.
//!
//! The transfer runs over an [`InterComm`] between the sender program
//! (M ranks) and the receiver program (N ranks):
//!
//! 1. every receiver sends its needed linear runs to **every** sender;
//! 2. every sender intersects each request with what it owns, extracts the
//!    values, and replies with `(runs, values)`;
//! 3. every receiver inserts each reply into its local patches.

use mxn_dad::{Dad, LocalArray};
use mxn_runtime::{InterComm, MsgSize, Result};

use crate::extract::{extract_segments, insert_segments};
use crate::order::ArrayOrder;
use crate::segments::SegmentList;

const REQ_TAG: i32 = 0x4d52; // "MR": M×N request
const DATA_TAG: i32 = 0x4d44; // "MD": M×N data

/// Counters describing one side's work in a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferReport {
    /// Messages this rank sent.
    pub messages_sent: usize,
    /// Data elements this rank sent or received (payload only).
    pub elements_moved: usize,
}

/// Sender side: answer every receiver's request from `local`.
///
/// `src_dad` must be the sender program's descriptor of the shared array,
/// and `local` this rank's storage of it.
pub fn serve_requests<T>(
    ic: &InterComm,
    src_dad: &Dad,
    order: ArrayOrder,
    local: &LocalArray<T>,
) -> Result<TransferReport>
where
    T: Copy + Send + MsgSize + 'static,
{
    let owned = order.rank_segments(src_dad, ic.local_rank());
    let mut report = TransferReport::default();
    for receiver in 0..ic.remote_size() {
        let request: Vec<(usize, usize)> = ic.recv(receiver, REQ_TAG)?;
        let wanted = SegmentList::from_runs(request);
        let overlap = owned.intersect(&wanted);
        let values = extract_segments(local, src_dad.extents(), order, &overlap);
        report.elements_moved += values.len();
        report.messages_sent += 1;
        ic.send(receiver, DATA_TAG, (overlap.runs().to_vec(), values))?;
    }
    Ok(report)
}

/// Receiver side: request what this rank needs and fill `local`.
///
/// `dst_dad` must be the receiver program's descriptor and `local` this
/// rank's (pre-allocated) storage.
pub fn request_and_fill<T>(
    ic: &InterComm,
    dst_dad: &Dad,
    order: ArrayOrder,
    local: &mut LocalArray<T>,
) -> Result<TransferReport>
where
    T: Copy + Send + MsgSize + 'static,
{
    let needed = order.rank_segments(dst_dad, ic.local_rank());
    let mut report = TransferReport::default();
    // "Broadcast" the request to every sender.
    for sender in 0..ic.remote_size() {
        ic.send(sender, REQ_TAG, needed.runs().to_vec())?;
        report.messages_sent += 1;
    }
    // Collect one reply per sender; replies are sparse subsets of `needed`.
    for sender in 0..ic.remote_size() {
        let (runs, values): (Vec<(usize, usize)>, Vec<T>) = ic.recv(sender, DATA_TAG)?;
        let segs = SegmentList::from_runs(runs);
        report.elements_moved += values.len();
        insert_segments(local, dst_dad.extents(), order, &segs, &values);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::Universe;

    /// End-to-end redistribution M block-rows → N block-cols.
    fn run_case(m: usize, n: usize, rows: usize, cols: usize) {
        Universe::run(&[m, n], move |_, ctx| {
            let src_dad = Dad::block(Extents::new([rows, cols]), &[m, 1]).unwrap();
            let dst_dad = Dad::block(Extents::new([rows, cols]), &[1, n]).unwrap();
            let order = ArrayOrder::RowMajor;
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let local = LocalArray::from_fn(&src_dad, ctx.comm.rank(), |idx| {
                    (idx[0] * cols + idx[1]) as f64
                });
                serve_requests(ic, &src_dad, order, &local).unwrap();
            } else {
                let ic = ctx.intercomm(0);
                let mut local: LocalArray<f64> = LocalArray::allocate(&dst_dad, ctx.comm.rank());
                let rep = request_and_fill(ic, &dst_dad, order, &mut local).unwrap();
                assert_eq!(rep.elements_moved, local.len());
                // Every received element must equal its global row-major id.
                for (idx, &v) in local.iter() {
                    assert_eq!(v, (idx[0] * cols + idx[1]) as f64, "at {idx:?}");
                }
            }
        });
    }

    #[test]
    fn square_transfer() {
        run_case(2, 2, 4, 4);
    }

    #[test]
    fn m_greater_than_n() {
        run_case(4, 2, 8, 6);
    }

    #[test]
    fn m_less_than_n() {
        run_case(2, 5, 10, 10);
    }

    #[test]
    fn single_sender_many_receivers() {
        run_case(1, 4, 8, 8);
    }

    #[test]
    fn many_senders_single_receiver() {
        run_case(6, 1, 12, 5);
    }

    #[test]
    fn col_major_linearization_also_works() {
        Universe::run(&[2, 3], |_, ctx| {
            let src_dad = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
            let dst_dad = Dad::block(Extents::new([6, 6]), &[1, 3]).unwrap();
            let order = ArrayOrder::ColMajor;
            if ctx.program == 0 {
                let local = LocalArray::from_fn(&src_dad, ctx.comm.rank(), |idx| {
                    (idx[0] * 6 + idx[1]) as i64
                });
                serve_requests(ctx.intercomm(1), &src_dad, order, &local).unwrap();
            } else {
                let mut local: LocalArray<i64> = LocalArray::allocate(&dst_dad, ctx.comm.rank());
                request_and_fill(ctx.intercomm(0), &dst_dad, order, &mut local).unwrap();
                for (idx, &v) in local.iter() {
                    assert_eq!(v, (idx[0] * 6 + idx[1]) as i64);
                }
            }
        });
    }

    #[test]
    fn message_counts_match_protocol_shape() {
        // 3 senders × 2 receivers: each receiver sends 3 requests, each
        // sender replies 2×.
        Universe::run(&[3, 2], |_, ctx| {
            let src_dad = Dad::block(Extents::new([6]), &[3]).unwrap();
            let dst_dad = Dad::block(Extents::new([6]), &[2]).unwrap();
            if ctx.program == 0 {
                let local = LocalArray::from_fn(&src_dad, ctx.comm.rank(), |idx| idx[0] as f64);
                let rep = serve_requests(ctx.intercomm(1), &src_dad, ArrayOrder::RowMajor, &local)
                    .unwrap();
                assert_eq!(rep.messages_sent, 2);
            } else {
                let mut local: LocalArray<f64> = LocalArray::allocate(&dst_dad, ctx.comm.rank());
                let rep =
                    request_and_fill(ctx.intercomm(0), &dst_dad, ArrayOrder::RowMajor, &mut local)
                        .unwrap();
                assert_eq!(rep.messages_sent, 3);
                assert_eq!(rep.elements_moved, 3);
            }
        });
    }
}
