//! # mxn-linearize — Meta-Chaos-style linearization
//!
//! The linearization intermediate representation of the paper's §2.2.1: map
//! every element of a distributed structure to a position in an abstract
//! 1-D sequence, express each rank's ownership as a [`SegmentList`] over
//! that sequence, and match source to destination by intersecting segment
//! lists. "It does not imply serialization — the linearization is a logical
//! process, but actual transfers can be carried out fully in parallel."
//!
//! * [`segments`] — the segment-list IR and its merge-sweep intersection.
//! * [`order`] — row-/column-major array linearizations.
//! * [`structure`] — tree (preorder) and graph (BFS) linearizations.
//! * [`extract`] — moving values between patches and linear runs.
//! * [`protocol`] — the schedule-free receiver-request transfer protocol
//!   (the Indiana MPI-IO M×N device; experiment E7's comparator).

pub mod extract;
pub mod order;
pub mod protocol;
pub mod segments;
pub mod structure;

pub use extract::{extract_run, extract_segments, insert_run, insert_segments};
pub use order::ArrayOrder;
pub use protocol::{request_and_fill, serve_requests, TransferReport};
pub use segments::SegmentList;
pub use structure::{Graph, StructLinearization, Tree};
