//! Linearization orders for dense arrays.
//!
//! A linearization maps every element of a distributed structure to a
//! position in an abstract 1-D sequence. "It is not necessary for the
//! system to arrange the actual data according to this intermediate
//! representation; it can exist only in an abstract form, as a theoretical
//! reference for the computation of the communication schedule"
//! (paper §2.3). For dense arrays we provide row- and column-major orders
//! and translate a rank's rectangular patches into [`SegmentList`]s.

use mxn_dad::{Dad, Extents, Region};

use crate::segments::SegmentList;

/// Element orderings of a dense array's linearization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayOrder {
    /// C order: last axis fastest (the DAD's native order).
    RowMajor,
    /// Fortran order: first axis fastest.
    ColMajor,
}

impl ArrayOrder {
    /// Linear position of `idx` in an array of `extents`.
    pub fn linear(&self, extents: &Extents, idx: &[usize]) -> usize {
        match self {
            ArrayOrder::RowMajor => extents.linear(idx),
            ArrayOrder::ColMajor => {
                let mut off = 0;
                for d in (0..extents.ndim()).rev() {
                    debug_assert!(idx[d] < extents.dim(d));
                    off = off * extents.dim(d) + idx[d];
                }
                off
            }
        }
    }

    /// Inverse of [`ArrayOrder::linear`].
    pub fn index(&self, extents: &Extents, mut pos: usize) -> Vec<usize> {
        match self {
            ArrayOrder::RowMajor => extents.unlinear(pos),
            ArrayOrder::ColMajor => {
                let mut idx = vec![0; extents.ndim()];
                for (d, slot) in idx.iter_mut().enumerate() {
                    *slot = pos % extents.dim(d);
                    pos /= extents.dim(d);
                }
                idx
            }
        }
    }

    /// The linear runs covered by `region` within an array of `extents`.
    ///
    /// Contiguity follows the fastest axis of the order: a row-major region
    /// yields one run per last-axis row, a column-major region one run per
    /// first-axis column.
    pub fn region_segments(&self, extents: &Extents, region: &Region) -> SegmentList {
        if region.is_empty() {
            return SegmentList::new();
        }
        let nd = extents.ndim();
        if nd == 0 {
            return SegmentList::from_runs(vec![(0, 1)]);
        }
        let fast = match self {
            ArrayOrder::RowMajor => nd - 1,
            ArrayOrder::ColMajor => 0,
        };
        let run_len = region.hi()[fast] - region.lo()[fast];
        let mut runs = Vec::new();
        // Odometer over all axes except the fastest.
        let mut idx: Vec<usize> = region.lo().to_vec();
        'outer: loop {
            runs.push((self.linear(extents, &idx), run_len));
            // Advance over the non-fast axes.
            let mut d = nd;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                if d == fast {
                    continue;
                }
                idx[d] += 1;
                if idx[d] < region.hi()[d] {
                    break;
                }
                idx[d] = region.lo()[d];
            }
        }
        SegmentList::from_runs(runs)
    }

    /// The linear runs owned by `rank` under `dad` — the rank's footprint
    /// in the intermediate representation.
    pub fn rank_segments(&self, dad: &Dad, rank: usize) -> SegmentList {
        let mut all = Vec::new();
        for patch in dad.patches(rank) {
            for &(s, l) in self.region_segments(dad.extents(), &patch).runs() {
                all.push((s, l));
            }
        }
        SegmentList::from_runs(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_matches_extents_linear() {
        let e = Extents::new([3, 4]);
        for idx in e.iter() {
            assert_eq!(ArrayOrder::RowMajor.linear(&e, &idx), e.linear(&idx));
        }
    }

    #[test]
    fn col_major_is_fortran_order() {
        let e = Extents::new([3, 4]);
        // (i, j) -> j * 3 + i
        assert_eq!(ArrayOrder::ColMajor.linear(&e, &[0, 0]), 0);
        assert_eq!(ArrayOrder::ColMajor.linear(&e, &[1, 0]), 1);
        assert_eq!(ArrayOrder::ColMajor.linear(&e, &[0, 1]), 3);
        assert_eq!(ArrayOrder::ColMajor.linear(&e, &[2, 3]), 11);
    }

    #[test]
    fn both_orders_are_bijections() {
        let e = Extents::new([4, 3, 2]);
        for order in [ArrayOrder::RowMajor, ArrayOrder::ColMajor] {
            let mut seen = [false; 24];
            for idx in e.iter() {
                let p = order.linear(&e, &idx);
                assert!(!seen[p]);
                seen[p] = true;
                assert_eq!(order.index(&e, p), idx);
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn region_segments_row_major() {
        let e = Extents::new([4, 5]);
        let r = Region::new([1, 1], [3, 4]);
        let s = ArrayOrder::RowMajor.region_segments(&e, &r);
        // Rows 1 and 2, cols 1..4 → runs at 6 and 11, each length 3.
        assert_eq!(s.runs(), &[(6, 3), (11, 3)]);
        assert_eq!(s.total_len(), r.len());
    }

    #[test]
    fn region_segments_col_major() {
        let e = Extents::new([4, 5]);
        let r = Region::new([1, 1], [3, 4]);
        let s = ArrayOrder::ColMajor.region_segments(&e, &r);
        // Cols 1..4, rows 1..3 → runs at col*4+1, each length 2.
        assert_eq!(s.runs(), &[(5, 2), (9, 2), (13, 2)]);
    }

    #[test]
    fn full_region_is_one_run_row_major() {
        let e = Extents::new([4, 5]);
        let s = ArrayOrder::RowMajor.region_segments(&e, &e.full_region());
        assert_eq!(s.runs(), &[(0, 20)], "adjacent rows merge");
    }

    #[test]
    fn rank_segments_partition_linearization() {
        let dad = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
        for order in [ArrayOrder::RowMajor, ArrayOrder::ColMajor] {
            let mut covered = [false; 36];
            for r in 0..4 {
                for p in order.rank_segments(&dad, r).positions() {
                    assert!(!covered[p], "position {p} owned twice");
                    covered[p] = true;
                }
            }
            assert!(covered.iter().all(|&b| b));
        }
    }

    #[test]
    fn empty_region_yields_empty_segments() {
        let e = Extents::new([4, 5]);
        let r = Region::new([2, 2], [2, 5]);
        assert!(ArrayOrder::RowMajor.region_segments(&e, &r).is_empty());
    }
}
