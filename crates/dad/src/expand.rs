//! Grow-direction re-decomposition: rebuilding a descriptor over a larger
//! rank set.
//!
//! The inverse of [`crate::shrink`]: when the runtime admits `k` newcomer
//! ranks, the array keeps its global extents but ownership must *spread*
//! onto the enlarged set so the newcomers carry real work. [`Dad::expand`]
//! derives the new ownership deterministically from the old descriptor and
//! the new rank count alone, so every participant (incumbent or newcomer)
//! computes the identical descriptor without exchanging a byte:
//!
//! * **Regular** templates are re-decomposed as a balanced *block*
//!   distribution over the new count, exactly like a shrink — collapsed
//!   axes stay collapsed, and the new count is factored across the
//!   originally-distributed axes. Expansion is a full redistribution
//!   anyway, so the rebuilt descriptor uses the layout that packs and
//!   transfers best.
//! * **Explicit** distributions keep their patch geometry and deal patches
//!   round-robin over the new rank count (`patch index % new_n`), which
//!   hands newcomers a proportional share instead of leaving them idle.

use crate::descriptor::{Dad, Distribution};
use crate::explicit::ExplicitDist;
use crate::shrink::balanced_grid;
use crate::template::Template;

impl Dad {
    /// Rebuilds this descriptor over `new_n > nranks()` ranks.
    ///
    /// The global extents are unchanged; ownership is re-derived as
    /// described in the module docs. Pure and deterministic: every
    /// participant computes the same result, and the fingerprint changes,
    /// so epoch-salted schedule and route caches rebuild cleanly.
    pub fn expand(&self, new_n: usize) -> Result<Dad, String> {
        if new_n <= self.nranks() {
            return Err(format!(
                "expand requires more ranks than the current {} (got {new_n})",
                self.nranks()
            ));
        }
        match self.distribution() {
            Distribution::Regular(t) => {
                let grid = balanced_grid(new_n, &t.grid());
                Template::block(t.extents().clone(), &grid).map(Dad::regular)
            }
            Distribution::Explicit(e) => {
                let patches = e
                    .all_patches()
                    .iter()
                    .enumerate()
                    .map(|(i, (patch, _))| (patch.clone(), i % new_n))
                    .collect();
                ExplicitDist::new(e.extents().clone(), patches, new_n).map(Dad::explicit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::AxisDist;
    use crate::shape::{Extents, Region};

    fn cover_once(d: &Dad) {
        let mut per_rank = vec![0usize; d.nranks()];
        for idx in d.extents().iter() {
            per_rank[d.owner(&idx)] += 1;
        }
        assert_eq!(per_rank.iter().sum::<usize>(), d.extents().total());
        for (r, &n) in per_rank.iter().enumerate() {
            assert_eq!(d.local_size(r), n, "rank {r}");
        }
    }

    #[test]
    fn regular_expand_balances_over_distributed_axes() {
        let d = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
        let g = d.expand(6).unwrap();
        assert_eq!(g.nranks(), 6);
        assert_eq!(g.extents(), d.extents());
        match g.distribution() {
            // 6 = 3 · 2 factored across both distributed axes.
            Distribution::Regular(t) => assert_eq!(t.grid(), vec![3, 2]),
            _ => panic!("regular stays regular"),
        }
        cover_once(&g);
    }

    #[test]
    fn collapsed_axes_stay_collapsed() {
        let d = Dad::block(Extents::new([8, 4]), &[2, 1]).unwrap();
        let g = d.expand(4).unwrap();
        match g.distribution() {
            Distribution::Regular(t) => assert_eq!(t.grid(), vec![4, 1]),
            _ => panic!("regular stays regular"),
        }
        cover_once(&g);
    }

    #[test]
    fn cyclic_rebuilds_as_block() {
        let t = Template::new(Extents::new([12]), vec![AxisDist::Cyclic { nprocs: 2 }]).unwrap();
        let g = Dad::regular(t).expand(3).unwrap();
        match g.distribution() {
            Distribution::Regular(t) => {
                assert_eq!(t.grid(), vec![3]);
                assert_eq!(t.patches(0), vec![Region::new([0], [4])], "block, not cyclic");
            }
            _ => panic!("regular stays regular"),
        }
        cover_once(&g);
    }

    #[test]
    fn explicit_deals_patches_onto_newcomers() {
        let e = ExplicitDist::new(
            Extents::new([4, 4]),
            vec![
                (Region::new([0, 0], [4, 2]), 0),
                (Region::new([0, 2], [4, 3]), 0),
                (Region::new([0, 3], [4, 4]), 1),
            ],
            2,
        )
        .unwrap();
        let g = Dad::explicit(e).expand(3).unwrap();
        assert_eq!(g.nranks(), 3);
        // Patches dealt round-robin: patch 0 → rank 0, 1 → 1, 2 → 2.
        assert_eq!(g.owner(&[0, 0]), 0);
        assert_eq!(g.owner(&[0, 2]), 1);
        assert_eq!(g.owner(&[0, 3]), 2, "the newcomer owns real data");
        cover_once(&g);
    }

    #[test]
    fn expand_is_deterministic_and_refingerprinted() {
        let d = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
        let a = d.expand(6).unwrap();
        let b = d.expand(6).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn expand_then_shrink_round_trips_the_rank_count() {
        let d = Dad::block(Extents::new([8, 8]), &[2, 2]).unwrap();
        let g = d.expand(6).unwrap();
        let s = g.shrink(&[0, 1, 2, 3]).unwrap();
        assert_eq!(s.nranks(), 4);
        cover_once(&s);
    }

    #[test]
    fn expand_from_a_single_rank_spreads_again() {
        // A coupling funneled down to one rank (all axes collapsed) must
        // still be able to grow: the count factors across every axis.
        let d = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
        let one = d.shrink(&[3]).unwrap();
        let g = one.expand(6).unwrap();
        assert_eq!(g.nranks(), 6);
        match g.distribution() {
            Distribution::Regular(t) => assert_eq!(t.grid(), vec![3, 2]),
            _ => panic!("regular stays regular"),
        }
        cover_once(&g);
    }

    #[test]
    fn non_growing_counts_are_rejected() {
        let d = Dad::block(Extents::new([4]), &[4]).unwrap();
        assert!(d.expand(4).is_err());
        assert!(d.expand(3).is_err());
    }
}
