//! Explicit (whole-array) distributions.
//!
//! The one distribution type in the CCA DAD that is global to the entire
//! array rather than per-axis: "completely arbitrary distributions …
//! specified as a collection of (multidimensional) rectangular patches, each
//! assigned to a particular process. The patches must not overlap and must
//! completely cover the template." (paper §2.2.2)

use crate::shape::{Extents, Region};

/// An explicit patchwise distribution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExplicitDist {
    extents: Extents,
    /// `(patch, owner)` pairs, in insertion order.
    patches: Vec<(Region, usize)>,
    nranks: usize,
}

impl ExplicitDist {
    /// Creates and validates an explicit distribution over `nranks` ranks.
    ///
    /// Validation enforces the paper's two invariants — no overlap, full
    /// cover — plus owner-range checks.
    pub fn new(
        extents: Extents,
        patches: Vec<(Region, usize)>,
        nranks: usize,
    ) -> Result<ExplicitDist, String> {
        if nranks == 0 {
            return Err("explicit distribution needs at least one rank".into());
        }
        let full = extents.full_region();
        let mut covered = 0usize;
        for (k, (patch, owner)) in patches.iter().enumerate() {
            if patch.ndim() != extents.ndim() {
                return Err(format!(
                    "patch {k} has rank {} (template rank {})",
                    patch.ndim(),
                    extents.ndim()
                ));
            }
            if *owner >= nranks {
                return Err(format!("patch {k} owner {owner} out of range ({nranks} ranks)"));
            }
            if !patch.is_empty() {
                let inside = full.intersect(patch).is_some_and(|i| i == *patch);
                if !inside {
                    return Err(format!("patch {k} exceeds the template bounds"));
                }
            }
            for (j, (other, _)) in patches.iter().enumerate().take(k) {
                if patch.overlaps(other) {
                    return Err(format!("patches {j} and {k} overlap"));
                }
            }
            covered += patch.len();
        }
        if covered != extents.total() {
            return Err(format!(
                "patches cover {covered} of {} template elements",
                extents.total()
            ));
        }
        Ok(ExplicitDist { extents, patches, nranks })
    }

    /// Template extents.
    pub fn extents(&self) -> &Extents {
        &self.extents
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// All `(patch, owner)` pairs.
    pub fn all_patches(&self) -> &[(Region, usize)] {
        &self.patches
    }

    /// Rank owning `idx` (linear scan over patches; explicit distributions
    /// trade query cost for total flexibility — exactly the E8 trade-off).
    pub fn owner(&self, idx: &[usize]) -> usize {
        self.patches
            .iter()
            .find(|(p, _)| p.contains(idx))
            .map(|&(_, o)| o)
            .expect("validated cover owns every index")
    }

    /// The patches owned by `rank`, in insertion order.
    pub fn patches(&self, rank: usize) -> Vec<Region> {
        self.patches.iter().filter(|&&(_, o)| o == rank).map(|(p, _)| p.clone()).collect()
    }

    /// Number of elements owned by `rank`.
    pub fn local_size(&self, rank: usize) -> usize {
        self.patches.iter().filter(|&&(_, o)| o == rank).map(|(p, _)| p.len()).sum()
    }

    /// Descriptor size in bytes: two corners plus an owner per patch.
    pub fn descriptor_bytes(&self) -> usize {
        let per_patch = (2 * self.extents.ndim() + 1) * std::mem::size_of::<usize>();
        self.patches.len() * per_patch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> ExplicitDist {
        // 4×4 split into four unequal boxes over 3 ranks.
        ExplicitDist::new(
            Extents::new([4, 4]),
            vec![
                (Region::new([0, 0], [2, 3]), 0),
                (Region::new([0, 3], [2, 4]), 1),
                (Region::new([2, 0], [4, 1]), 2),
                (Region::new([2, 1], [4, 4]), 0),
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn owner_and_patches_agree() {
        let d = quad();
        let mut counts = vec![0usize; 3];
        for idx in d.extents().iter() {
            counts[d.owner(&idx)] += 1;
        }
        assert_eq!(counts, vec![12, 2, 2]);
        for (r, &count) in counts.iter().enumerate() {
            assert_eq!(d.local_size(r), count);
            for p in d.patches(r) {
                for idx in p.iter() {
                    assert_eq!(d.owner(&idx), r);
                }
            }
        }
    }

    #[test]
    fn rank_may_own_multiple_disjoint_patches() {
        let d = quad();
        assert_eq!(d.patches(0).len(), 2);
    }

    #[test]
    fn overlap_rejected() {
        let r = ExplicitDist::new(
            Extents::new([2, 2]),
            vec![(Region::new([0, 0], [2, 2]), 0), (Region::new([1, 1], [2, 2]), 1)],
            2,
        );
        assert!(r.unwrap_err().contains("overlap"));
    }

    #[test]
    fn gap_rejected() {
        let r = ExplicitDist::new(Extents::new([2, 2]), vec![(Region::new([0, 0], [1, 2]), 0)], 1);
        assert!(r.unwrap_err().contains("cover"));
    }

    #[test]
    fn out_of_bounds_patch_rejected() {
        let r = ExplicitDist::new(Extents::new([2, 2]), vec![(Region::new([0, 0], [2, 3]), 0)], 1);
        assert!(r.unwrap_err().contains("bounds"));
    }

    #[test]
    fn bad_owner_rejected() {
        let r = ExplicitDist::new(Extents::new([1, 1]), vec![(Region::new([0, 0], [1, 1]), 5)], 2);
        assert!(r.unwrap_err().contains("out of range"));
    }

    #[test]
    fn descriptor_grows_with_patch_count() {
        let d = quad();
        let single =
            ExplicitDist::new(Extents::new([4, 4]), vec![(Region::new([0, 0], [4, 4]), 0)], 1)
                .unwrap();
        assert!(d.descriptor_bytes() > single.descriptor_bytes());
    }
}
