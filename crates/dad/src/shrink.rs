//! Survivor re-decomposition: rebuilding a descriptor over the ranks that
//! outlived a failure.
//!
//! After a rank death the recovery plane shrinks the communicator to a
//! dense survivor set (old ranks in ascending order, renumbered `0..s`).
//! The array the dead rank co-owned still has its full global extents; what
//! changes is *who owns what*. [`Dad::shrink`] derives the new ownership
//! deterministically from the old descriptor and the survivor list alone,
//! so every survivor computes the identical descriptor without exchanging
//! a byte:
//!
//! * **Regular** templates are re-decomposed as a balanced *block*
//!   distribution over the survivor count — collapsed axes stay collapsed,
//!   and the survivor count is factored across the originally-distributed
//!   axes. The original flavor (cyclic, block-cyclic, …) is not preserved:
//!   a shrink is a full redistribution anyway, so the rebuilt descriptor
//!   uses the layout that packs and transfers best.
//! * **Explicit** distributions keep their patch geometry. A patch whose
//!   owner survived follows its owner to the owner's new dense index; a
//!   dead owner's patches are reassigned to survivor index
//!   `old_owner % survivor_count`, spreading orphaned patches instead of
//!   piling them on rank 0.

use crate::descriptor::{Dad, Distribution};
use crate::explicit::ExplicitDist;
use crate::template::Template;

/// Factors `n` across the originally-distributed axes of `old_grid` (those
/// with more than one process), balancing the products: each prime factor
/// of `n`, largest first, multiplies the currently-smallest new dimension.
/// Collapsed axes stay 1. Deterministic for a given `(n, old_grid)`.
pub(crate) fn balanced_grid(n: usize, old_grid: &[usize]) -> Vec<usize> {
    let mut grid = vec![1usize; old_grid.len()];
    let mut spread: Vec<usize> = (0..old_grid.len()).filter(|&d| old_grid[d] > 1).collect();
    if spread.is_empty() {
        if n == 1 {
            // Nothing was distributed and nothing needs to be.
            return grid;
        }
        // Nothing *was* distributed but the new count demands spreading —
        // an elastic grow from a single-rank descriptor. Factor across
        // every axis so the newcomers carry real work.
        spread = (0..old_grid.len()).collect();
    }
    let mut factors = Vec::new();
    let mut m = n;
    let mut p = 2;
    while p * p <= m {
        while m.is_multiple_of(p) {
            factors.push(p);
            m /= p;
        }
        p += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let &axis = spread.iter().min_by_key(|&&d| (grid[d], d)).expect("spread is non-empty");
        grid[axis] *= f;
    }
    grid
}

/// Checks that `survivors` is a valid dense survivor list for `nranks` old
/// ranks: non-empty, strictly ascending, all in range.
fn check_survivors(survivors: &[usize], nranks: usize) -> Result<(), String> {
    if survivors.is_empty() {
        return Err("survivor set is empty".into());
    }
    for (i, &r) in survivors.iter().enumerate() {
        if r >= nranks {
            return Err(format!("survivor {r} out of range ({nranks} old ranks)"));
        }
        if i > 0 && survivors[i - 1] >= r {
            return Err("survivors must be strictly ascending".into());
        }
    }
    Ok(())
}

impl Dad {
    /// Rebuilds this descriptor over a survivor set.
    ///
    /// `survivors` lists the old ranks that remain, strictly ascending —
    /// exactly the renumbering a communicator shrink produces (old rank
    /// `survivors[k]` becomes new rank `k`). The global extents are
    /// unchanged; ownership is re-derived as described in the module docs.
    /// Pure and deterministic: every survivor computes the same result.
    pub fn shrink(&self, survivors: &[usize]) -> Result<Dad, String> {
        check_survivors(survivors, self.nranks())?;
        let s = survivors.len();
        match self.distribution() {
            Distribution::Regular(t) => {
                let grid = balanced_grid(s, &t.grid());
                Template::block(t.extents().clone(), &grid).map(Dad::regular)
            }
            Distribution::Explicit(e) => {
                // Old rank -> new dense index (None = dead).
                let mut new_index = vec![None; e.nranks()];
                for (k, &r) in survivors.iter().enumerate() {
                    new_index[r] = Some(k);
                }
                let patches = e
                    .all_patches()
                    .iter()
                    .map(|(patch, owner)| {
                        let new_owner = new_index[*owner].unwrap_or(*owner % s);
                        (patch.clone(), new_owner)
                    })
                    .collect();
                ExplicitDist::new(e.extents().clone(), patches, s).map(Dad::explicit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::AxisDist;
    use crate::shape::{Extents, Region};

    fn cover_once(d: &Dad) {
        let mut per_rank = vec![0usize; d.nranks()];
        for idx in d.extents().iter() {
            per_rank[d.owner(&idx)] += 1;
        }
        assert_eq!(per_rank.iter().sum::<usize>(), d.extents().total());
        for (r, &n) in per_rank.iter().enumerate() {
            assert_eq!(d.local_size(r), n, "rank {r}");
        }
    }

    #[test]
    fn regular_shrink_balances_over_distributed_axes() {
        let d = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
        let s = d.shrink(&[0, 2, 3]).unwrap();
        assert_eq!(s.nranks(), 3);
        assert_eq!(s.extents(), d.extents());
        match s.distribution() {
            Distribution::Regular(t) => assert_eq!(t.grid(), vec![3, 1]),
            _ => panic!("regular stays regular"),
        }
        cover_once(&s);
    }

    #[test]
    fn collapsed_axes_stay_collapsed() {
        let d = Dad::block(Extents::new([8, 4]), &[4, 1]).unwrap();
        let s = d.shrink(&[1, 3]).unwrap();
        match s.distribution() {
            Distribution::Regular(t) => assert_eq!(t.grid(), vec![2, 1]),
            _ => panic!("regular stays regular"),
        }
        cover_once(&s);
    }

    #[test]
    fn composite_survivor_count_factors_across_axes() {
        let d = Dad::block(Extents::new([8, 8]), &[4, 2]).unwrap();
        let s = d.shrink(&[0, 1, 2, 3, 4, 6]).unwrap();
        match s.distribution() {
            // 6 = 3 · 2: largest factor to the first axis, 2 to the second.
            Distribution::Regular(t) => assert_eq!(t.grid(), vec![3, 2]),
            _ => panic!("regular stays regular"),
        }
        cover_once(&s);
    }

    #[test]
    fn cyclic_rebuilds_as_block() {
        let t = Template::new(Extents::new([12]), vec![AxisDist::Cyclic { nprocs: 3 }]).unwrap();
        let s = Dad::regular(t).shrink(&[0, 2]).unwrap();
        match s.distribution() {
            Distribution::Regular(t) => {
                assert_eq!(t.grid(), vec![2]);
                assert_eq!(t.patches(0), vec![Region::new([0], [6])], "block, not cyclic");
            }
            _ => panic!("regular stays regular"),
        }
        cover_once(&s);
    }

    #[test]
    fn explicit_keeps_patches_and_remaps_owners() {
        let e = ExplicitDist::new(
            Extents::new([4, 4]),
            vec![
                (Region::new([0, 0], [4, 2]), 0),
                (Region::new([0, 2], [4, 3]), 1),
                (Region::new([0, 3], [4, 4]), 2),
            ],
            3,
        )
        .unwrap();
        let d = Dad::explicit(e);
        // Rank 1 dies; survivors are old ranks {0, 2}.
        let s = d.shrink(&[0, 2]).unwrap();
        assert_eq!(s.nranks(), 2);
        assert_eq!(s.owner(&[0, 0]), 0, "live owner 0 keeps its patch");
        assert_eq!(s.owner(&[0, 3]), 1, "live owner 2 becomes new rank 1");
        assert_eq!(s.owner(&[0, 2]), 1, "dead owner 1 -> 1 % 2 = survivor index 1");
        cover_once(&s);
    }

    #[test]
    fn shrink_to_one_rank_owns_everything() {
        let d = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
        let s = d.shrink(&[3]).unwrap();
        assert_eq!(s.nranks(), 1);
        assert_eq!(s.local_size(0), 36);
    }

    #[test]
    fn shrink_is_deterministic_and_fingerprinted() {
        let d = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
        let a = d.shrink(&[0, 1, 3]).unwrap();
        let b = d.shrink(&[0, 1, 3]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
        let c = d.shrink(&[0, 1, 2]).unwrap();
        assert_eq!(
            a.fingerprint(),
            c.fingerprint(),
            "regular shrink depends only on the survivor count"
        );
    }

    #[test]
    fn invalid_survivor_lists_are_rejected() {
        let d = Dad::block(Extents::new([4]), &[4]).unwrap();
        assert!(d.shrink(&[]).is_err());
        assert!(d.shrink(&[0, 4]).is_err(), "out of range");
        assert!(d.shrink(&[1, 0]).is_err(), "not ascending");
        assert!(d.shrink(&[1, 1]).is_err(), "duplicate");
    }
}
