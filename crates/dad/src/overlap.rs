//! Ownership overlap queries: "which ranks own part of this region, and
//! which parts?" answered without probing every rank.
//!
//! This is the first layer of the sublinear schedule pipeline. For regular
//! (per-axis) distributions the candidate grid positions on each axis come
//! from [`crate::axis::AxisDist::overlaps`] — closed-form for the block
//! family, interval scans bounded by the query for the irregular kinds —
//! and the overlapping peers are the cross-product of the per-axis
//! candidates. For explicit distributions a one-time axis-0 slab index
//! (sorted cut points, per-slab patch lists) narrows the candidate patches
//! to those sharing an axis-0 interval with the query.
//!
//! In both cases the work is proportional to the number of *actually
//! overlapping* peers (plus, for explicit, axis-0 false positives), never
//! to the total rank count — the pruning that the interval-algebra
//! redistribution literature shows is necessary for schedule construction
//! to amortize at scale.

use std::collections::BTreeMap;

use crate::descriptor::{Dad, Distribution};
use crate::explicit::ExplicitDist;
use crate::shape::Region;
use crate::template::Template;

/// One axis's overlap candidates: `(grid position, clipped segments)` as
/// returned by [`crate::axis::AxisDist::overlaps`].
type AxisCandidates = Vec<(usize, Vec<(usize, usize)>)>;

/// Result of an overlap query: the peers found and the candidate count
/// examined to find them (the observable pruning metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapHits {
    /// `(peer rank, overlap pieces clipped to the query)`, ascending by
    /// rank; every entry holds at least one non-empty region, and within a
    /// rank the regions are sorted by lower corner.
    pub hits: Vec<(usize, Vec<Region>)>,
    /// How many candidate peers (regular) or patches (explicit) the index
    /// examined. Sublinearity means this tracks the overlap, not `nranks`.
    pub probes: usize,
}

/// A borrowed view of a [`Dad`]'s ownership structure supporting overlap
/// queries. Build once per schedule construction via
/// [`Dad::overlap_index`]; queries are then independent of the rank count.
pub enum OverlapIndex<'a> {
    /// Regular template: per-axis closed-form candidate sets.
    Regular(&'a Template),
    /// Explicit patch list behind an axis-0 slab index.
    Explicit {
        /// The indexed distribution.
        dist: &'a ExplicitDist,
        /// Sorted distinct axis-0 cut points; slab `s` spans
        /// `[cuts[s], cuts[s+1])`.
        cuts: Vec<usize>,
        /// Patch indices whose axis-0 interval covers each slab.
        slabs: Vec<Vec<usize>>,
    },
}

impl<'a> OverlapIndex<'a> {
    /// Builds the index. O(1) for regular distributions; O(P log P + S·P̄)
    /// for explicit ones (P patches over S slabs).
    pub fn new(dad: &'a Dad) -> OverlapIndex<'a> {
        match dad.distribution() {
            Distribution::Regular(t) => OverlapIndex::Regular(t),
            Distribution::Explicit(e) => {
                let mut cuts: Vec<usize> = Vec::new();
                if e.extents().ndim() > 0 {
                    for (p, _) in e.all_patches() {
                        if !p.is_empty() {
                            cuts.push(p.lo()[0]);
                            cuts.push(p.hi()[0]);
                        }
                    }
                    cuts.sort_unstable();
                    cuts.dedup();
                }
                let mut slabs = vec![Vec::new(); cuts.len().saturating_sub(1)];
                if e.extents().ndim() > 0 {
                    for (k, (p, _)) in e.all_patches().iter().enumerate() {
                        if p.is_empty() {
                            continue;
                        }
                        let s_lo = cuts.partition_point(|&c| c < p.lo()[0]);
                        let s_hi = cuts.partition_point(|&c| c < p.hi()[0]);
                        for slab in slabs.iter_mut().take(s_hi).skip(s_lo) {
                            slab.push(k);
                        }
                    }
                }
                OverlapIndex::Explicit { dist: e, cuts, slabs }
            }
        }
    }

    /// The ranks whose patches overlap `region`, with the overlap pieces.
    pub fn query(&self, region: &Region) -> OverlapHits {
        if region.ndim() > 0 && region.is_empty() {
            return OverlapHits { hits: Vec::new(), probes: 0 };
        }
        match self {
            OverlapIndex::Regular(t) => Self::query_regular(t, region),
            OverlapIndex::Explicit { dist, cuts, slabs } => {
                Self::query_explicit(dist, cuts, slabs, region)
            }
        }
    }

    fn query_regular(t: &Template, region: &Region) -> OverlapHits {
        let nd = region.ndim();
        // Candidate grid positions per axis, each with its clipped segments.
        let per_axis: Vec<AxisCandidates> = t
            .axes()
            .iter()
            .enumerate()
            .map(|(d, ax)| ax.overlaps(region.lo()[d], region.hi()[d], t.extents().dim(d)))
            .collect();
        if per_axis.iter().any(|v| v.is_empty()) && nd > 0 {
            return OverlapHits { hits: Vec::new(), probes: 0 };
        }

        let mut hits = Vec::new();
        let mut probes = 0;
        // Odometer over per-axis candidates, last axis fastest: with the
        // row-major grid→rank fold this emits peers in ascending order.
        let mut pick = vec![0usize; nd];
        let mut coord = vec![0usize; nd];
        'peers: loop {
            for d in 0..nd {
                coord[d] = per_axis[d][pick[d]].0;
            }
            let peer = t.grid_to_rank(&coord);
            probes += 1;

            // Overlap pieces: cross-product of the clipped segment lists.
            let seglists: Vec<&[(usize, usize)]> =
                (0..nd).map(|d| per_axis[d][pick[d]].1.as_slice()).collect();
            let mut regions = Vec::new();
            let mut spick = vec![0usize; nd];
            'pieces: loop {
                let lo: Vec<usize> = (0..nd).map(|d| seglists[d][spick[d]].0).collect();
                let hi: Vec<usize> =
                    (0..nd).map(|d| seglists[d][spick[d]].0 + seglists[d][spick[d]].1).collect();
                regions.push(Region::new(lo, hi));
                let mut d = nd;
                loop {
                    if d == 0 {
                        break 'pieces;
                    }
                    d -= 1;
                    spick[d] += 1;
                    if spick[d] < seglists[d].len() {
                        break;
                    }
                    spick[d] = 0;
                }
            }
            hits.push((peer, regions));

            let mut d = nd;
            loop {
                if d == 0 {
                    break 'peers;
                }
                d -= 1;
                pick[d] += 1;
                if pick[d] < per_axis[d].len() {
                    break;
                }
                pick[d] = 0;
            }
        }
        OverlapHits { hits, probes }
    }

    fn query_explicit(
        dist: &ExplicitDist,
        cuts: &[usize],
        slabs: &[Vec<usize>],
        region: &Region,
    ) -> OverlapHits {
        let all = dist.all_patches();
        let mut seen = vec![false; all.len()];
        let mut per_rank: BTreeMap<usize, Vec<Region>> = BTreeMap::new();
        let mut probes = 0;

        let mut probe =
            |k: usize, probes: &mut usize, per_rank: &mut BTreeMap<usize, Vec<Region>>| {
                if seen[k] {
                    return;
                }
                seen[k] = true;
                *probes += 1;
                let (patch, owner) = &all[k];
                if let Some(part) = patch.intersect(region) {
                    per_rank.entry(*owner).or_default().push(part);
                }
            };

        if region.ndim() == 0 || cuts.len() < 2 {
            // Degenerate: no axis-0 structure to index on.
            for k in 0..all.len() {
                probe(k, &mut probes, &mut per_rank);
            }
        } else {
            let lo0 = region.lo()[0];
            let hi0 = region.hi()[0];
            // Slabs overlapping [lo0, hi0): slab s spans [cuts[s], cuts[s+1]).
            let s_lo = cuts.partition_point(|&c| c <= lo0).saturating_sub(1);
            let s_hi = cuts.partition_point(|&c| c < hi0).min(slabs.len());
            for slab in slabs.iter().take(s_hi).skip(s_lo) {
                for &k in slab {
                    probe(k, &mut probes, &mut per_rank);
                }
            }
        }

        let mut hits: Vec<(usize, Vec<Region>)> = per_rank.into_iter().collect();
        for (_, regions) in &mut hits {
            regions.sort_by(|a, b| a.lo().cmp(b.lo()));
        }
        OverlapHits { hits, probes }
    }
}

impl Dad {
    /// A borrowed overlap index over this descriptor's ownership structure
    /// (the sublinear-schedule query interface).
    pub fn overlap_index(&self) -> OverlapIndex<'_> {
        OverlapIndex::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::AxisDist;
    use crate::shape::Extents;

    /// Oracle: probe every rank, intersect every patch.
    fn query_naive(dad: &Dad, region: &Region) -> Vec<(usize, Vec<Region>)> {
        let mut out = Vec::new();
        for peer in 0..dad.nranks() {
            let mut regions: Vec<Region> =
                dad.patches(peer).iter().filter_map(|p| p.intersect(region)).collect();
            if !regions.is_empty() {
                regions.sort_by(|a, b| a.lo().cmp(b.lo()));
                out.push((peer, regions));
            }
        }
        out
    }

    fn check_all_windows(dad: &Dad) {
        let index = dad.overlap_index();
        let full = dad.extents().full_region();
        // Every sub-window of the whole array (kept small by test shapes).
        for lo0 in 0..dad.extents().dim(0) {
            for hi0 in lo0 + 1..=dad.extents().dim(0) {
                let (mut lo, mut hi) = (full.lo().to_vec(), full.hi().to_vec());
                lo[0] = lo0;
                hi[0] = hi0;
                let q = Region::new(lo, hi);
                let got = index.query(&q);
                assert_eq!(got.hits, query_naive(dad, &q), "window {q:?}");
            }
        }
    }

    #[test]
    fn regular_block_2d_matches_naive() {
        check_all_windows(&Dad::block(Extents::new([8, 6]), &[4, 2]).unwrap());
    }

    #[test]
    fn regular_mixed_axes_match_naive() {
        let t = Template::new(
            Extents::new([12, 10]),
            vec![
                AxisDist::BlockCyclic { block: 2, nprocs: 3 },
                AxisDist::GenBlock { sizes: vec![3, 0, 7] },
            ],
        )
        .unwrap();
        check_all_windows(&Dad::regular(t));
    }

    #[test]
    fn regular_cyclic_implicit_match_naive() {
        let t = Template::new(
            Extents::new([9, 6]),
            vec![
                AxisDist::Cyclic { nprocs: 4 },
                AxisDist::Implicit { owners: vec![1, 0, 0, 1, 2, 2], nprocs: 3 },
            ],
        )
        .unwrap();
        check_all_windows(&Dad::regular(t));
    }

    #[test]
    fn explicit_matches_naive() {
        let d = Dad::explicit(
            ExplicitDist::new(
                Extents::new([4, 4]),
                vec![
                    (Region::new([0, 0], [2, 3]), 0),
                    (Region::new([0, 3], [2, 4]), 1),
                    (Region::new([2, 0], [4, 1]), 2),
                    (Region::new([2, 1], [4, 4]), 0),
                ],
                3,
            )
            .unwrap(),
        );
        check_all_windows(&d);
    }

    #[test]
    fn probe_count_tracks_overlap_not_nranks() {
        // 1024 ranks along axis 0; a window touching 2 blocks probes 2.
        let dad = Dad::block(Extents::new([4096, 4]), &[1024, 1]).unwrap();
        let hits = dad.overlap_index().query(&Region::new([6, 0], [10, 4]));
        assert_eq!(hits.probes, 2);
        assert_eq!(hits.hits.len(), 2);
    }

    #[test]
    fn zero_dim_array_single_owner() {
        let t = Template::new(Extents::new(Vec::<usize>::new()), vec![]).unwrap();
        let dad = Dad::regular(t);
        let q = Region::new(Vec::<usize>::new(), Vec::<usize>::new());
        let hits = dad.overlap_index().query(&q);
        assert_eq!(hits.hits, vec![(0, vec![q])]);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let dad = Dad::block(Extents::new([8]), &[4]).unwrap();
        let hits = dad.overlap_index().query(&Region::new([3], [3]));
        assert!(hits.hits.is_empty());
        assert_eq!(hits.probes, 0);
    }
}
