//! Multidimensional extents, indices and rectangular regions.
//!
//! All arrays in the DAD model are dense, rectangular and row-major
//! (C order): the *last* axis varies fastest in the linearized order. A
//! [`Region`] is a half-open axis-aligned box `[lo, hi)` — the "rectangular
//! patch" of the paper's explicit distributions and of per-rank local
//! storage.

/// The shape of an n-dimensional array: one extent per axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Extents(Vec<usize>);

impl Extents {
    /// Creates extents from per-axis sizes. Zero-size axes are allowed
    /// (the array is then empty).
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Extents(dims.into())
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Extent of axis `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Per-axis extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements.
    pub fn total(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major linear offset of `idx` within the full array.
    ///
    /// # Panics
    /// If `idx` has the wrong rank or is out of bounds.
    pub fn linear(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &ext)) in idx.iter().zip(&self.0).enumerate() {
            assert!(i < ext, "index {i} out of bounds for axis {d} (extent {ext})");
            off = off * ext + i;
        }
        off
    }

    /// Inverse of [`Extents::linear`].
    pub fn unlinear(&self, mut off: usize) -> Vec<usize> {
        assert!(off < self.total().max(1), "offset out of bounds");
        let mut idx = vec![0; self.ndim()];
        for d in (0..self.ndim()).rev() {
            let ext = self.0[d];
            idx[d] = off % ext;
            off /= ext;
        }
        idx
    }

    /// Iterates all indices in row-major order.
    pub fn iter(&self) -> IndexIter {
        IndexIter::new(self.0.clone())
    }

    /// The region covering the whole array.
    pub fn full_region(&self) -> Region {
        Region::new(vec![0; self.ndim()], self.0.clone())
    }
}

/// Row-major iterator over all indices of a box shape.
pub struct IndexIter {
    dims: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl IndexIter {
    fn new(dims: Vec<usize>) -> Self {
        let next = if dims.iter().all(|&d| d > 0) { Some(vec![0; dims.len()]) } else { None };
        IndexIter { dims, next }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance like an odometer, last axis fastest.
        let mut idx = current.clone();
        let mut d = self.dims.len();
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < self.dims[d] {
                self.next = Some(idx);
                break;
            }
            idx[d] = 0;
        }
        Some(current)
    }
}

/// A half-open axis-aligned box `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl Region {
    /// Creates a region; `lo[d] <= hi[d]` must hold on every axis.
    ///
    /// # Panics
    /// On rank mismatch or inverted bounds.
    pub fn new(lo: impl Into<Vec<usize>>, hi: impl Into<Vec<usize>>) -> Self {
        let (lo, hi) = (lo.into(), hi.into());
        assert_eq!(lo.len(), hi.len(), "region bound rank mismatch");
        for d in 0..lo.len() {
            assert!(lo[d] <= hi[d], "inverted region bounds on axis {d}");
        }
        Region { lo, hi }
    }

    /// Lower (inclusive) corner.
    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    /// Upper (exclusive) corner.
    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.lo.len()
    }

    /// Per-axis sizes.
    pub fn shape(&self) -> Vec<usize> {
        (0..self.ndim()).map(|d| self.hi[d] - self.lo[d]).collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        (0..self.ndim()).map(|d| self.hi[d] - self.lo[d]).product()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        (0..self.ndim()).any(|d| self.lo[d] == self.hi[d])
    }

    /// Does the region contain `idx`?
    pub fn contains(&self, idx: &[usize]) -> bool {
        idx.len() == self.ndim()
            && (0..self.ndim()).all(|d| self.lo[d] <= idx[d] && idx[d] < self.hi[d])
    }

    /// Intersection with `other`; `None` when empty.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        assert_eq!(self.ndim(), other.ndim(), "region rank mismatch");
        let mut lo = Vec::with_capacity(self.ndim());
        let mut hi = Vec::with_capacity(self.ndim());
        for d in 0..self.ndim() {
            let l = self.lo[d].max(other.lo[d]);
            let h = self.hi[d].min(other.hi[d]);
            if l >= h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(Region { lo, hi })
    }

    /// Do the two regions share any element?
    pub fn overlaps(&self, other: &Region) -> bool {
        self.intersect(other).is_some()
    }

    /// Iterates global indices inside the region, row-major.
    pub fn iter(&self) -> RegionIter {
        RegionIter { base: self.lo.clone(), inner: IndexIter::new(self.shape()) }
    }

    /// Row-major offset of `idx` *within* this region (for local storage).
    ///
    /// # Panics
    /// If `idx` is not inside the region.
    pub fn local_offset(&self, idx: &[usize]) -> usize {
        assert!(self.contains(idx), "index {idx:?} outside region");
        let mut off = 0;
        for (d, &i) in idx.iter().enumerate().take(self.ndim()) {
            off = off * (self.hi[d] - self.lo[d]) + (i - self.lo[d]);
        }
        off
    }

    /// Inverse of [`Region::local_offset`].
    pub fn index_at(&self, mut off: usize) -> Vec<usize> {
        assert!(off < self.len(), "offset out of bounds");
        let mut idx = vec![0; self.ndim()];
        for d in (0..self.ndim()).rev() {
            let ext = self.hi[d] - self.lo[d];
            idx[d] = self.lo[d] + off % ext;
            off /= ext;
        }
        idx
    }
}

/// Row-major iterator over a region's global indices.
pub struct RegionIter {
    base: Vec<usize>,
    inner: IndexIter,
}

impl Iterator for RegionIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        self.inner.next().map(|rel| rel.iter().zip(&self.base).map(|(r, b)| r + b).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_roundtrip_3d() {
        let e = Extents::new([3, 4, 5]);
        assert_eq!(e.total(), 60);
        for (k, idx) in e.iter().enumerate() {
            assert_eq!(e.linear(&idx), k, "row-major order");
            assert_eq!(e.unlinear(k), idx);
        }
    }

    #[test]
    fn last_axis_fastest() {
        let e = Extents::new([2, 3]);
        let order: Vec<Vec<usize>> = e.iter().collect();
        assert_eq!(order[0], vec![0, 0]);
        assert_eq!(order[1], vec![0, 1]);
        assert_eq!(order[3], vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn linear_checks_bounds() {
        Extents::new([2, 2]).linear(&[0, 2]);
    }

    #[test]
    fn empty_extents_iterate_nothing() {
        let e = Extents::new([3, 0]);
        assert_eq!(e.total(), 0);
        assert_eq!(e.iter().count(), 0);
    }

    #[test]
    fn zero_dim_array_has_one_element() {
        let e = Extents::new(Vec::<usize>::new());
        assert_eq!(e.total(), 1);
        assert_eq!(e.iter().count(), 1);
        assert_eq!(e.linear(&[]), 0);
    }

    #[test]
    fn region_basics() {
        let r = Region::new([1, 2], [4, 5]);
        assert_eq!(r.shape(), vec![3, 3]);
        assert_eq!(r.len(), 9);
        assert!(!r.is_empty());
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[3, 4]));
        assert!(!r.contains(&[4, 4]), "hi is exclusive");
        assert!(!r.contains(&[0, 3]));
    }

    #[test]
    fn region_intersection() {
        let a = Region::new([0, 0], [4, 4]);
        let b = Region::new([2, 3], [6, 8]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Region::new([2, 3], [4, 4]));
        let c = Region::new([4, 0], [5, 4]);
        assert!(a.intersect(&c).is_none(), "touching boxes do not overlap");
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn region_iteration_and_local_offsets() {
        let r = Region::new([10, 20], [12, 23]);
        let idxs: Vec<Vec<usize>> = r.iter().collect();
        assert_eq!(idxs.len(), 6);
        assert_eq!(idxs[0], vec![10, 20]);
        assert_eq!(idxs[5], vec![11, 22]);
        for (k, idx) in idxs.iter().enumerate() {
            assert_eq!(r.local_offset(idx), k);
            assert_eq!(r.index_at(k), *idx);
        }
    }

    #[test]
    fn empty_region() {
        let r = Region::new([3, 3], [3, 5]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_region_rejected() {
        Region::new([2], [1]);
    }

    #[test]
    fn full_region_covers_extents() {
        let e = Extents::new([4, 6]);
        let r = e.full_region();
        assert_eq!(r.len(), 24);
        assert!(e.iter().all(|i| r.contains(&i)));
    }
}
