//! The unified Distributed Array Descriptor.
//!
//! A [`Dad`] is what components hand to the M×N layer when registering a
//! parallel data field: it provides "global data distribution information
//! and … access to the local storage of each process's patch(es) of the
//! distributed array" (paper §2.2.2). It unifies the per-axis regular
//! distributions ([`Template`]) with the whole-array [`ExplicitDist`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::explicit::ExplicitDist;
use crate::shape::{Extents, Region};
use crate::template::Template;

/// Which M×N transfer modes a registered field allows (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// The field may only be read (exported).
    Read,
    /// The field may only be written (imported).
    Write,
    /// Both directions allowed.
    ReadWrite,
}

impl AccessMode {
    /// May data be pulled *out* of the field?
    pub fn readable(&self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// May data be pushed *into* the field?
    pub fn writable(&self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// The distribution payload of a descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// HPF-style per-axis distribution over a process grid.
    Regular(Template),
    /// Arbitrary rectangular patches, each assigned to a rank.
    Explicit(ExplicitDist),
}

/// A Distributed Array Descriptor: everything another component (or the
/// framework) needs to know to move this array's elements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dad {
    dist: Distribution,
    /// 128-bit content fingerprint, precomputed at construction so schedule
    /// caches can key on descriptors without cloning or re-hashing them on
    /// every lookup.
    fingerprint: u128,
}

/// Two independently-seeded 64-bit hashes of the distribution, concatenated.
/// Caches treat fingerprint equality as descriptor equality; at 128 bits a
/// collision between distinct descriptors is never expected in practice.
fn fingerprint_of(dist: &Distribution) -> u128 {
    let mut h1 = DefaultHasher::new();
    1u64.hash(&mut h1);
    dist.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    2u64.hash(&mut h2);
    dist.hash(&mut h2);
    ((h1.finish() as u128) << 64) | (h2.finish() as u128)
}

impl Dad {
    /// Wraps a regular template.
    pub fn regular(t: Template) -> Dad {
        let dist = Distribution::Regular(t);
        let fingerprint = fingerprint_of(&dist);
        Dad { dist, fingerprint }
    }

    /// Wraps an explicit patch distribution.
    pub fn explicit(e: ExplicitDist) -> Dad {
        let dist = Distribution::Explicit(e);
        let fingerprint = fingerprint_of(&dist);
        Dad { dist, fingerprint }
    }

    /// The precomputed content fingerprint (equal descriptors have equal
    /// fingerprints; distinct descriptors collide with probability ~2⁻¹²⁸).
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// Convenience: uniform block distribution over a process grid.
    pub fn block(extents: Extents, grid: &[usize]) -> Result<Dad, String> {
        Template::block(extents, grid).map(Dad::regular)
    }

    /// The underlying distribution.
    pub fn distribution(&self) -> &Distribution {
        &self.dist
    }

    /// Global array extents.
    pub fn extents(&self) -> &Extents {
        match &self.dist {
            Distribution::Regular(t) => t.extents(),
            Distribution::Explicit(e) => e.extents(),
        }
    }

    /// Number of ranks the array is distributed over.
    pub fn nranks(&self) -> usize {
        match &self.dist {
            Distribution::Regular(t) => t.nranks(),
            Distribution::Explicit(e) => e.nranks(),
        }
    }

    /// Rank owning global index `idx`.
    pub fn owner(&self, idx: &[usize]) -> usize {
        match &self.dist {
            Distribution::Regular(t) => t.owner(idx),
            Distribution::Explicit(e) => e.owner(idx),
        }
    }

    /// The rectangular patches owned by `rank`.
    pub fn patches(&self, rank: usize) -> Vec<Region> {
        match &self.dist {
            Distribution::Regular(t) => t.patches(rank),
            Distribution::Explicit(e) => e.patches(rank),
        }
    }

    /// Number of elements owned by `rank`.
    pub fn local_size(&self, rank: usize) -> usize {
        match &self.dist {
            Distribution::Regular(t) => t.local_size(rank),
            Distribution::Explicit(e) => e.local_size(rank),
        }
    }

    /// Descriptor size in bytes — the E8 compactness metric.
    pub fn descriptor_bytes(&self) -> usize {
        match &self.dist {
            Distribution::Regular(t) => t.descriptor_bytes(),
            Distribution::Explicit(e) => e.descriptor_bytes(),
        }
    }

    /// Do two descriptors describe the same global array shape (a transfer
    /// precondition)?
    pub fn conforms(&self, other: &Dad) -> bool {
        self.extents() == other.extents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::AxisDist;

    fn regular() -> Dad {
        Dad::block(Extents::new([4, 4]), &[2, 2]).unwrap()
    }

    fn explicit() -> Dad {
        Dad::explicit(
            ExplicitDist::new(
                Extents::new([4, 4]),
                vec![(Region::new([0, 0], [4, 2]), 0), (Region::new([0, 2], [4, 4]), 1)],
                2,
            )
            .unwrap(),
        )
    }

    #[test]
    fn unified_queries_agree_with_inner() {
        let d = regular();
        assert_eq!(d.nranks(), 4);
        assert_eq!(d.extents().total(), 16);
        assert_eq!(d.owner(&[0, 0]), 0);
        assert_eq!(d.owner(&[3, 3]), 3);
        assert_eq!(d.local_size(2), 4);
        assert_eq!(d.patches(1).len(), 1);

        let e = explicit();
        assert_eq!(e.nranks(), 2);
        assert_eq!(e.owner(&[1, 3]), 1);
        assert_eq!(e.local_size(0), 8);
    }

    #[test]
    fn conformance_is_shape_based() {
        assert!(regular().conforms(&explicit()));
        let other = Dad::block(Extents::new([8, 2]), &[2, 1]).unwrap();
        assert!(!regular().conforms(&other));
    }

    #[test]
    fn access_modes() {
        assert!(AccessMode::Read.readable());
        assert!(!AccessMode::Read.writable());
        assert!(AccessMode::Write.writable());
        assert!(!AccessMode::Write.readable());
        assert!(AccessMode::ReadWrite.readable() && AccessMode::ReadWrite.writable());
    }

    #[test]
    fn every_element_owned_once_regular_vs_explicit() {
        for d in [regular(), explicit()] {
            let mut per_rank = vec![0usize; d.nranks()];
            for idx in d.extents().iter() {
                per_rank[d.owner(&idx)] += 1;
            }
            let total: usize = per_rank.iter().sum();
            assert_eq!(total, d.extents().total());
            for (r, &size) in per_rank.iter().enumerate() {
                assert_eq!(d.local_size(r), size);
            }
        }
    }

    #[test]
    fn fingerprint_tracks_content() {
        assert_eq!(regular().fingerprint(), regular().fingerprint());
        assert_eq!(explicit().fingerprint(), explicit().fingerprint());
        assert_ne!(regular().fingerprint(), explicit().fingerprint());
        let other = Dad::block(Extents::new([4, 4]), &[4, 1]).unwrap();
        assert_ne!(regular().fingerprint(), other.fingerprint());
        assert_eq!(regular().clone().fingerprint(), regular().fingerprint());
    }

    #[test]
    fn cyclic_descriptor_patch_count() {
        let t = Template::new(Extents::new([8]), vec![AxisDist::Cyclic { nprocs: 2 }]).unwrap();
        let d = Dad::regular(t);
        assert_eq!(d.patches(0).len(), 4, "one patch per cyclic element run");
    }
}
