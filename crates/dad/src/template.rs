//! Templates: virtual arrays specifying logical data distribution.
//!
//! Following HPF (and the CCA DAD), a *template* is a virtual array whose
//! axes are each distributed over one dimension of a process grid; actual
//! arrays are then *aligned* to a template (see [`crate::align`]). The rank
//! owning element `(i₀, …, i_{k−1})` is the row-major position of
//! `(owner₀(i₀), …, owner_{k−1}(i_{k−1}))` in the process grid.

use crate::axis::AxisDist;
use crate::shape::{Extents, Region};

/// A distribution template: extents plus one [`AxisDist`] per axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Template {
    extents: Extents,
    axes: Vec<AxisDist>,
}

impl Template {
    /// Creates and validates a template.
    pub fn new(extents: Extents, axes: Vec<AxisDist>) -> Result<Template, String> {
        if axes.len() != extents.ndim() {
            return Err(format!(
                "{} axis distributions for a {}-d template",
                axes.len(),
                extents.ndim()
            ));
        }
        for (d, ax) in axes.iter().enumerate() {
            ax.validate(extents.dim(d)).map_err(|e| format!("axis {d}: {e}"))?;
        }
        Ok(Template { extents, axes })
    }

    /// Uniform block distribution of `extents` over a `grid` of processes
    /// (the most common case in practice).
    pub fn block(extents: Extents, grid: &[usize]) -> Result<Template, String> {
        if grid.len() != extents.ndim() {
            return Err(format!(
                "grid rank {} does not match template rank {}",
                grid.len(),
                extents.ndim()
            ));
        }
        let axes = grid
            .iter()
            .map(|&n| if n == 1 { AxisDist::Collapsed } else { AxisDist::Block { nprocs: n } })
            .collect();
        Template::new(extents, axes)
    }

    /// Template extents.
    pub fn extents(&self) -> &Extents {
        &self.extents
    }

    /// Per-axis distributions.
    pub fn axes(&self) -> &[AxisDist] {
        &self.axes
    }

    /// Process-grid dimensions (one entry per axis).
    pub fn grid(&self) -> Vec<usize> {
        self.axes.iter().map(AxisDist::nprocs).collect()
    }

    /// Total number of ranks the template is distributed over.
    pub fn nranks(&self) -> usize {
        self.grid().iter().product()
    }

    /// Row-major rank of a process-grid coordinate.
    pub fn grid_to_rank(&self, coord: &[usize]) -> usize {
        let grid = self.grid();
        assert_eq!(coord.len(), grid.len(), "grid coordinate rank mismatch");
        let mut r = 0;
        for (d, (&c, &g)) in coord.iter().zip(&grid).enumerate() {
            assert!(c < g, "grid coordinate {c} out of bounds on axis {d}");
            r = r * g + c;
        }
        r
    }

    /// Inverse of [`Template::grid_to_rank`].
    pub fn rank_to_grid(&self, mut rank: usize) -> Vec<usize> {
        let grid = self.grid();
        assert!(rank < self.nranks(), "rank out of range");
        let mut coord = vec![0; grid.len()];
        for d in (0..grid.len()).rev() {
            coord[d] = rank % grid[d];
            rank /= grid[d];
        }
        coord
    }

    /// Rank owning global index `idx`. Allocation-free: this is the hot
    /// query of schedule construction and the E8 benchmark.
    pub fn owner(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.extents.ndim(), "index rank mismatch");
        let mut r = 0;
        for (d, (&i, ax)) in idx.iter().zip(&self.axes).enumerate() {
            r = r * ax.nprocs() + ax.owner(i, self.extents.dim(d));
        }
        r
    }

    /// The rectangular patches of the template owned by `rank`, in
    /// row-major order of their lower corners. For block-family axes this is
    /// the cartesian product of per-axis segments.
    pub fn patches(&self, rank: usize) -> Vec<Region> {
        let coord = self.rank_to_grid(rank);
        // Per-axis segment lists for this rank's grid position.
        let seglists: Vec<Vec<(usize, usize)>> = self
            .axes
            .iter()
            .enumerate()
            .map(|(d, ax)| ax.segments(coord[d], self.extents.dim(d)))
            .collect();
        if seglists.iter().any(|s| s.is_empty()) {
            return vec![];
        }
        // Cartesian product, odometer over segment indices.
        let mut out = Vec::new();
        let mut pick = vec![0usize; seglists.len()];
        loop {
            let lo: Vec<usize> = pick.iter().zip(&seglists).map(|(&k, s)| s[k].0).collect();
            let hi: Vec<usize> =
                pick.iter().zip(&seglists).map(|(&k, s)| s[k].0 + s[k].1).collect();
            out.push(Region::new(lo, hi));
            // Advance odometer (last axis fastest).
            let mut d = seglists.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                pick[d] += 1;
                if pick[d] < seglists[d].len() {
                    break;
                }
                pick[d] = 0;
            }
        }
    }

    /// Number of elements owned by `rank`.
    pub fn local_size(&self, rank: usize) -> usize {
        let coord = self.rank_to_grid(rank);
        self.axes
            .iter()
            .enumerate()
            .map(|(d, ax)| ax.local_size(coord[d], self.extents.dim(d)))
            .product()
    }

    /// Descriptor size in bytes (compactness metric, experiment E8).
    pub fn descriptor_bytes(&self) -> usize {
        self.extents.ndim() * std::mem::size_of::<usize>()
            + self.axes.iter().map(AxisDist::descriptor_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2d() -> Template {
        Template::new(
            Extents::new([6, 8]),
            vec![AxisDist::Block { nprocs: 2 }, AxisDist::Block { nprocs: 2 }],
        )
        .unwrap()
    }

    #[test]
    fn grid_rank_roundtrip() {
        let t = Template::new(
            Extents::new([4, 6, 8]),
            vec![AxisDist::Block { nprocs: 2 }, AxisDist::Block { nprocs: 3 }, AxisDist::Collapsed],
        )
        .unwrap();
        assert_eq!(t.grid(), vec![2, 3, 1]);
        assert_eq!(t.nranks(), 6);
        for r in 0..6 {
            assert_eq!(t.grid_to_rank(&t.rank_to_grid(r)), r);
        }
    }

    #[test]
    fn owner_partitions_all_elements() {
        let t = t2d();
        let mut counts = vec![0usize; t.nranks()];
        for idx in t.extents().iter() {
            counts[t.owner(&idx)] += 1;
        }
        assert_eq!(counts, vec![12, 12, 12, 12]);
    }

    #[test]
    fn patches_match_owner() {
        let t = t2d();
        for r in 0..t.nranks() {
            let patches = t.patches(r);
            assert_eq!(patches.iter().map(Region::len).sum::<usize>(), t.local_size(r));
            for patch in &patches {
                for idx in patch.iter() {
                    assert_eq!(t.owner(&idx), r, "patch content owned by its rank");
                }
            }
        }
    }

    #[test]
    fn block_cyclic_produces_multiple_patches() {
        let t = Template::new(
            Extents::new([8, 8]),
            vec![AxisDist::BlockCyclic { block: 2, nprocs: 2 }, AxisDist::Collapsed],
        )
        .unwrap();
        let p0 = t.patches(0);
        assert_eq!(p0.len(), 2, "two cyclic repetitions");
        assert_eq!(p0[0], Region::new([0, 0], [2, 8]));
        assert_eq!(p0[1], Region::new([4, 0], [6, 8]));
    }

    #[test]
    fn uneven_block_leaves_rank_empty() {
        // 3 elements over 5 ranks: block size 1, ranks 3..5 own nothing.
        let t = Template::new(Extents::new([3]), vec![AxisDist::Block { nprocs: 5 }]).unwrap();
        assert_eq!(t.local_size(3), 0);
        assert!(t.patches(4).is_empty());
        assert_eq!(t.local_size(0), 1);
    }

    #[test]
    fn block_constructor_figure1_shapes() {
        // The paper's Figure 1: M = 8 = 2×2×2 and N = 27 = 3×3×3.
        let e = Extents::new([6, 6, 6]);
        let m = Template::block(e.clone(), &[2, 2, 2]).unwrap();
        let n = Template::block(e, &[3, 3, 3]).unwrap();
        assert_eq!(m.nranks(), 8);
        assert_eq!(n.nranks(), 27);
        assert_eq!(m.local_size(0), 27); // 3×3×3 elements each
        assert_eq!(n.local_size(0), 8); // 2×2×2 elements each
    }

    #[test]
    fn mixed_axis_kinds() {
        let t = Template::new(
            Extents::new([10, 9]),
            vec![AxisDist::GenBlock { sizes: vec![7, 3] }, AxisDist::Cyclic { nprocs: 3 }],
        )
        .unwrap();
        assert_eq!(t.nranks(), 6);
        let mut total = 0;
        for r in 0..6 {
            total += t.local_size(r);
        }
        assert_eq!(total, 90);
        assert_eq!(t.owner(&[8, 4]), t.grid_to_rank(&[1, 1]));
    }

    #[test]
    fn validation_failures() {
        assert!(Template::new(Extents::new([4]), vec![]).is_err());
        assert!(Template::new(Extents::new([4]), vec![AxisDist::GenBlock { sizes: vec![1, 1] }])
            .is_err());
        assert!(Template::block(Extents::new([4, 4]), &[2]).is_err());
    }

    #[test]
    fn descriptor_bytes_grow_with_irregularity() {
        let e = Extents::new([100]);
        let b = Template::new(e.clone(), vec![AxisDist::Block { nprocs: 4 }]).unwrap();
        let g = Template::new(e.clone(), vec![AxisDist::GenBlock { sizes: vec![25; 4] }]).unwrap();
        let i = Template::new(
            e,
            vec![AxisDist::Implicit { owners: (0..100).map(|k| k % 4).collect(), nprocs: 4 }],
        )
        .unwrap();
        assert!(b.descriptor_bytes() < g.descriptor_bytes());
        assert!(g.descriptor_bytes() < i.descriptor_bytes());
    }
}
