//! Per-rank local storage of a distributed array.
//!
//! Each rank stores its patches as dense row-major buffers. The DAD's
//! promise is "direct access to the DA's local memory" (paper §2.2.2) — so
//! the buffer of every patch is exposed as a slice, and region copies move
//! whole rows with `copy_from_slice` rather than element-by-element.

use crate::descriptor::Dad;
use crate::shape::Region;

/// One contiguous copy run of a region decomposition: `len` elements at
/// offset `patch_off` inside patch number `patch`, landing at offset
/// `sub_off` of the region's row-major packed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRun {
    /// Index of the patch holding the run.
    pub patch: usize,
    /// Row-major offset of the run inside the patch buffer.
    pub patch_off: usize,
    /// Row-major offset of the run inside the packed sub-region.
    pub sub_off: usize,
    /// Run length in elements.
    pub len: usize,
}

/// Decomposes `sub` into contiguous last-axis runs against a patch list,
/// sorted by `sub_off` so that the runs tile `[0, sub.len())` exactly.
/// This is the one-time resolution step behind both the multi-patch
/// pack/unpack paths and the schedule layer's precompiled copy plans.
///
/// # Panics
/// If some element of `sub` is not covered by the patches ("not local").
pub fn region_runs<'a>(
    patches: impl IntoIterator<Item = &'a Region>,
    sub: &Region,
) -> Vec<CopyRun> {
    let mut runs = Vec::new();
    for (pi, region) in patches.into_iter().enumerate() {
        let Some(part) = region.intersect(sub) else { continue };
        let nd = part.ndim();
        if nd == 0 {
            runs.push(CopyRun { patch: pi, patch_off: 0, sub_off: 0, len: 1 });
            continue;
        }
        let run_len = part.hi()[nd - 1] - part.lo()[nd - 1];
        // Odometer over the leading nd-1 axes of the intersection; each
        // position starts one last-axis run.
        let mut idx: Vec<usize> = part.lo().to_vec();
        'runs: loop {
            runs.push(CopyRun {
                patch: pi,
                patch_off: region.local_offset(&idx),
                sub_off: sub.local_offset(&idx),
                len: run_len,
            });
            let mut d = nd - 1;
            loop {
                if d == 0 {
                    break 'runs;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < part.hi()[d] {
                    break;
                }
                idx[d] = part.lo()[d];
            }
        }
    }
    runs.sort_unstable_by_key(|r| r.sub_off);
    let mut cursor = 0;
    for r in &runs {
        assert_eq!(r.sub_off, cursor, "region {sub:?} not local (gap at offset {cursor})");
        cursor += r.len;
    }
    assert_eq!(cursor, sub.len(), "region {sub:?} not local (covered {cursor} elements)");
    runs
}

/// One rank's portion of a distributed array: a set of `(region, buffer)`
/// patches, row-major within each patch.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalArray<T> {
    rank: usize,
    patches: Vec<(Region, Vec<T>)>,
}

impl<T: Clone + Default> LocalArray<T> {
    /// Allocates zero/default-initialized storage for `rank`'s patches of
    /// `dad` (the receiving-side allocation step of an M×N transfer).
    pub fn allocate(dad: &Dad, rank: usize) -> LocalArray<T> {
        let patches = dad
            .patches(rank)
            .into_iter()
            .map(|r| (r.clone(), vec![T::default(); r.len()]))
            .collect();
        LocalArray { rank, patches }
    }
}

impl<T: Clone> LocalArray<T> {
    /// Builds storage for `rank` with every element computed from its
    /// global index (the usual way tests and examples seed source data).
    pub fn from_fn(dad: &Dad, rank: usize, mut f: impl FnMut(&[usize]) -> T) -> LocalArray<T> {
        let patches = dad
            .patches(rank)
            .into_iter()
            .map(|r| {
                let data = r.iter().map(|idx| f(&idx)).collect();
                (r, data)
            })
            .collect();
        LocalArray { rank, patches }
    }
}

impl<T> LocalArray<T> {
    /// The rank this storage belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The regions stored locally.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.patches.iter().map(|(r, _)| r)
    }

    /// Number of locally stored elements.
    pub fn len(&self) -> usize {
        self.patches.iter().map(|(r, _)| r.len()).sum()
    }

    /// True when this rank owns nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct access to patch `i`'s region and buffer.
    pub fn patch(&self, i: usize) -> (&Region, &[T]) {
        let (r, d) = &self.patches[i];
        (r, d)
    }

    /// Mutable access to patch `i`'s buffer.
    pub fn patch_mut(&mut self, i: usize) -> (&Region, &mut [T]) {
        let (r, d) = &mut self.patches[i];
        (r, d)
    }

    /// Number of patches.
    pub fn num_patches(&self) -> usize {
        self.patches.len()
    }

    fn find_patch(&self, idx: &[usize]) -> Option<usize> {
        self.patches.iter().position(|(r, _)| r.contains(idx))
    }

    /// Element at global index `idx`, if locally stored.
    pub fn get(&self, idx: &[usize]) -> Option<&T> {
        self.find_patch(idx).map(|p| {
            let (r, d) = &self.patches[p];
            &d[r.local_offset(idx)]
        })
    }

    /// Mutable element at global index `idx`, if locally stored.
    pub fn get_mut(&mut self, idx: &[usize]) -> Option<&mut T> {
        let p = self.find_patch(idx)?;
        let (r, d) = &mut self.patches[p];
        Some(&mut d[r.local_offset(idx)])
    }

    /// Iterates `(global_index, &element)` over all local elements.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<usize>, &T)> {
        self.patches.iter().flat_map(|(r, d)| r.iter().zip(d.iter()))
    }

    /// Calls `f(patch_buffer_range, run_length)` for every contiguous
    /// last-axis run of `sub` inside patch storage. `sub` must be contained
    /// in a single stored patch.
    fn for_each_run(region: &Region, sub: &Region, mut f: impl FnMut(usize, usize)) {
        if sub.is_empty() {
            return;
        }
        let nd = sub.ndim();
        if nd == 0 {
            f(region.local_offset(&[]), 1);
            return;
        }
        let run_len = sub.hi()[nd - 1] - sub.lo()[nd - 1];
        // Odometer over the leading nd-1 axes of `sub`.
        let mut idx: Vec<usize> = sub.lo().to_vec();
        loop {
            f(region.local_offset(&idx), run_len);
            // Advance leading axes.
            let mut d = nd - 1;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < sub.hi()[d] {
                    break;
                }
                idx[d] = sub.lo()[d];
            }
        }
    }
}

impl<T> LocalArray<T> {
    /// Rebuilds `rank`'s storage from a flat buffer holding its patches
    /// concatenated in canonical (descriptor) order — the inverse of
    /// [`LocalArray::to_flat`]. Collective redistribution routes use this
    /// to reconstitute a peer's shard after moving it whole (allgather)
    /// and slice out the needed regions locally.
    ///
    /// # Panics
    /// If `data.len()` differs from the rank's local size under `dad`.
    pub fn from_flat(dad: &Dad, rank: usize, data: Vec<T>) -> LocalArray<T> {
        let regions = dad.patches(rank);
        let expected: usize = regions.iter().map(|r| r.len()).sum();
        assert_eq!(data.len(), expected, "flat shard length mismatch for rank {rank}");
        let mut rest = data;
        let mut patches = Vec::with_capacity(regions.len());
        for r in regions {
            let tail = rest.split_off(r.len());
            patches.push((r, std::mem::replace(&mut rest, tail)));
        }
        LocalArray { rank, patches }
    }
}

impl<T: Clone> LocalArray<T> {
    /// Concatenates the patch buffers in canonical (descriptor) order into
    /// one flat shard buffer, row-major within each patch.
    pub fn to_flat(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for (_, d) in &self.patches {
            out.extend_from_slice(d);
        }
        out
    }
}

impl<T: Copy> LocalArray<T> {
    /// Copies the elements of `sub` (which must be covered by local
    /// patches) out into a row-major buffer ordered like `sub.iter()`.
    ///
    /// # Panics
    /// If any element of `sub` is not locally stored.
    pub fn pack_region(&self, sub: &Region) -> Vec<T> {
        let mut out = Vec::with_capacity(sub.len());
        self.pack_region_into(sub, &mut out);
        out
    }

    /// Appends the elements of `sub` to `out` in row-major `sub` order —
    /// the allocation-free variant of [`LocalArray::pack_region`] used by
    /// pooled transfer execution.
    pub fn pack_region_into(&self, sub: &Region, out: &mut Vec<T>) {
        for (region, data) in &self.patches {
            if let Some(part) = region.intersect(sub) {
                // Fast path: `sub` fully inside this patch keeps row order.
                if part == *sub {
                    Self::for_each_run(region, sub, |off, len| {
                        out.extend_from_slice(&data[off..off + len]);
                    });
                    return;
                }
            }
        }
        // General path: per-patch intersection decomposed into contiguous
        // runs, copied in packed order (never element-at-a-time).
        for run in region_runs(self.patches.iter().map(|(r, _)| r), sub) {
            let (_, data) = &self.patches[run.patch];
            out.extend_from_slice(&data[run.patch_off..run.patch_off + run.len]);
        }
    }

    /// Writes `data` (row-major in `sub` order) into the local storage.
    ///
    /// # Panics
    /// If lengths mismatch or any element of `sub` is not locally stored.
    pub fn unpack_region(&mut self, sub: &Region, data: &[T]) {
        assert_eq!(data.len(), sub.len(), "unpack length mismatch");
        // Fast path when a single patch contains sub.
        let single =
            self.patches.iter().position(|(r, _)| r.intersect(sub).is_some_and(|i| i == *sub));
        if let Some(p) = single {
            let (region, buf) = &mut self.patches[p];
            let mut cursor = 0;
            Self::for_each_run(region, sub, |off, len| {
                buf[off..off + len].copy_from_slice(&data[cursor..cursor + len]);
                cursor += len;
            });
            return;
        }
        // General path: run decomposition, then whole-run writes per patch.
        for run in region_runs(self.patches.iter().map(|(r, _)| r), sub) {
            let (_, buf) = &mut self.patches[run.patch];
            buf[run.patch_off..run.patch_off + run.len]
                .copy_from_slice(&data[run.sub_off..run.sub_off + run.len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::AxisDist;
    use crate::shape::Extents;
    use crate::template::Template;

    fn dad_2x2() -> Dad {
        Dad::block(Extents::new([4, 6]), &[2, 2]).unwrap()
    }

    #[test]
    fn allocate_matches_descriptor() {
        let d = dad_2x2();
        for r in 0..4 {
            let a: LocalArray<f64> = LocalArray::allocate(&d, r);
            assert_eq!(a.len(), d.local_size(r));
            assert_eq!(a.rank(), r);
            assert!(a.iter().all(|(_, &v)| v == 0.0));
        }
    }

    #[test]
    fn from_fn_and_get() {
        let d = dad_2x2();
        let a = LocalArray::from_fn(&d, 3, |idx| (idx[0] * 10 + idx[1]) as i64);
        assert_eq!(*a.get(&[2, 3]).unwrap(), 23);
        assert_eq!(*a.get(&[3, 5]).unwrap(), 35);
        assert!(a.get(&[0, 0]).is_none(), "not owned by rank 3");
    }

    #[test]
    fn get_mut_writes_through() {
        let d = dad_2x2();
        let mut a: LocalArray<i32> = LocalArray::allocate(&d, 0);
        *a.get_mut(&[1, 2]).unwrap() = 42;
        assert_eq!(*a.get(&[1, 2]).unwrap(), 42);
    }

    #[test]
    fn pack_row_major_order() {
        let d = dad_2x2();
        let a = LocalArray::from_fn(&d, 0, |idx| (idx[0] * 10 + idx[1]) as i64);
        // Rank 0 owns [0..2) x [0..3).
        let sub = Region::new([0, 1], [2, 3]);
        assert_eq!(a.pack_region(&sub), vec![1, 2, 11, 12]);
    }

    #[test]
    fn unpack_then_pack_roundtrip() {
        let d = dad_2x2();
        let mut a: LocalArray<i64> = LocalArray::allocate(&d, 2);
        // Rank 2 owns [2..4) x [0..3).
        let sub = Region::new([2, 0], [4, 2]);
        let data = vec![7, 8, 9, 10];
        a.unpack_region(&sub, &data);
        assert_eq!(a.pack_region(&sub), data);
        assert_eq!(*a.get(&[3, 1]).unwrap(), 10);
        assert_eq!(*a.get(&[2, 2]).unwrap(), 0, "outside sub untouched");
    }

    #[test]
    fn pack_across_multiple_patches() {
        // Cyclic rows: rank 0 owns rows 0 and 2 as separate patches.
        let t = Template::new(
            Extents::new([4, 3]),
            vec![AxisDist::Cyclic { nprocs: 2 }, AxisDist::Collapsed],
        )
        .unwrap();
        let d = Dad::regular(t);
        let a = LocalArray::from_fn(&d, 0, |idx| (idx[0] * 3 + idx[1]) as i32);
        assert_eq!(a.num_patches(), 2);
        // Pack a region covering one row of each patch separately.
        assert_eq!(a.pack_region(&Region::new([0, 0], [1, 3])), vec![0, 1, 2]);
        assert_eq!(a.pack_region(&Region::new([2, 0], [3, 3])), vec![6, 7, 8]);
    }

    #[test]
    fn pack_unpack_spanning_multiple_patches() {
        use crate::explicit::ExplicitDist;
        // Rank 0 owns two adjoining L-shaped patches of a 4×4 array.
        let d = Dad::explicit(
            ExplicitDist::new(
                Extents::new([4, 4]),
                vec![
                    (Region::new([0, 0], [2, 3]), 0),
                    (Region::new([0, 3], [2, 4]), 1),
                    (Region::new([2, 0], [4, 1]), 1),
                    (Region::new([2, 1], [4, 4]), 0),
                ],
                2,
            )
            .unwrap(),
        );
        let a = LocalArray::from_fn(&d, 0, |idx| (idx[0] * 10 + idx[1]) as i64);
        // Spans both of rank 0's patches — exercises the run-based path.
        let sub = Region::new([1, 1], [3, 3]);
        assert_eq!(a.pack_region(&sub), vec![11, 12, 21, 22]);

        let mut b: LocalArray<i64> = LocalArray::allocate(&d, 0);
        b.unpack_region(&sub, &[11, 12, 21, 22]);
        assert_eq!(*b.get(&[1, 2]).unwrap(), 12);
        assert_eq!(*b.get(&[2, 1]).unwrap(), 21);
        assert_eq!(*b.get(&[0, 0]).unwrap(), 0, "outside sub untouched");
    }

    #[test]
    fn region_runs_tile_in_packed_order() {
        let a = Region::new([0, 0], [2, 3]);
        let b = Region::new([2, 1], [4, 4]);
        let sub = Region::new([1, 1], [3, 3]);
        let runs = region_runs([&a, &b], &sub);
        assert_eq!(
            runs,
            vec![
                CopyRun { patch: 0, patch_off: 4, sub_off: 0, len: 2 },
                CopyRun { patch: 1, patch_off: 0, sub_off: 2, len: 2 },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "not local")]
    fn region_runs_reject_uncovered() {
        let a = Region::new([0, 0], [1, 2]);
        region_runs([&a], &Region::new([0, 0], [2, 2]));
    }

    #[test]
    #[should_panic(expected = "not local")]
    fn pack_nonlocal_panics() {
        let d = dad_2x2();
        let a: LocalArray<i32> = LocalArray::allocate(&d, 0);
        a.pack_region(&Region::new([2, 0], [3, 1]));
    }

    #[test]
    fn empty_rank_storage() {
        // 3 elements over 5 ranks: rank 4 owns nothing.
        let t = Template::new(Extents::new([3]), vec![AxisDist::Block { nprocs: 5 }]).unwrap();
        let d = Dad::regular(t);
        let a: LocalArray<u8> = LocalArray::allocate(&d, 4);
        assert!(a.is_empty());
        assert_eq!(a.num_patches(), 0);
    }

    #[test]
    fn flat_round_trip_preserves_patch_layout() {
        // Cyclic rows give rank 0 two disjoint patches — the flat form must
        // split back onto them in canonical order.
        let t = Template::new(
            Extents::new([4, 3]),
            vec![AxisDist::Cyclic { nprocs: 2 }, AxisDist::Collapsed],
        )
        .unwrap();
        let d = Dad::regular(t);
        let a = LocalArray::from_fn(&d, 0, |idx| (idx[0] * 3 + idx[1]) as i32);
        let flat = a.to_flat();
        assert_eq!(flat, vec![0, 1, 2, 6, 7, 8]);
        let b = LocalArray::from_flat(&d, 0, flat);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "flat shard length mismatch")]
    fn from_flat_rejects_wrong_length() {
        let d = dad_2x2();
        let _ = LocalArray::<u8>::from_flat(&d, 0, vec![0; 3]);
    }

    #[test]
    fn patch_slices_are_exposed() {
        let d = dad_2x2();
        let mut a = LocalArray::from_fn(&d, 1, |_| 1.0f32);
        let (region, buf) = a.patch_mut(0);
        assert_eq!(buf.len(), region.len());
        buf[0] = 5.0;
        let (r0, b0) = a.patch(0);
        assert_eq!(b0[0], 5.0);
        assert_eq!(r0.lo(), &[0, 3]);
    }
}
