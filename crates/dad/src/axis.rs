//! Per-axis distributions.
//!
//! The CCA DAD (version 1, after the HPF model) describes how each axis of a
//! template maps onto one dimension of a process grid. The paper's Section
//! 2.2.2 lists exactly the variants implemented here:
//!
//! * [`AxisDist::Collapsed`] — the whole axis on a single process row.
//! * [`AxisDist::Block`] / cyclic / block-cyclic — the regular family
//!   (block and cyclic are the two extremes of block-cyclic).
//! * [`AxisDist::GenBlock`] — Global-Arrays-style one block per process,
//!   blocks of different sizes.
//! * [`AxisDist::Implicit`] — HPF-style one owner entry per element:
//!   completely flexible, at the cost of O(extent) descriptor storage and
//!   expensive queries.
//!
//! (The *Explicit* whole-array patch distribution is not per-axis; see
//! [`crate::explicit`].)

/// Distribution of one template axis over `nprocs` process-grid positions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AxisDist {
    /// Entire axis owned by the single grid position of this axis.
    Collapsed,
    /// Contiguous blocks of size ⌈extent / nprocs⌉, one per position.
    Block {
        /// Number of grid positions along this axis.
        nprocs: usize,
    },
    /// Element `i` owned by position `i % nprocs`.
    Cyclic {
        /// Number of grid positions along this axis.
        nprocs: usize,
    },
    /// Blocks of `block` elements dealt round-robin: element `i` owned by
    /// `(i / block) % nprocs`.
    BlockCyclic {
        /// Block length (≥ 1).
        block: usize,
        /// Number of grid positions along this axis.
        nprocs: usize,
    },
    /// One block per position with explicitly given sizes (must sum to the
    /// axis extent).
    GenBlock {
        /// Block length per grid position.
        sizes: Vec<usize>,
    },
    /// Arbitrary owner per element (`owners[i]` = grid position of element
    /// `i`); `nprocs` grid positions in total.
    Implicit {
        /// Owner per element.
        owners: Vec<usize>,
        /// Number of grid positions along this axis.
        nprocs: usize,
    },
}

impl AxisDist {
    /// Number of process-grid positions along this axis.
    pub fn nprocs(&self) -> usize {
        match self {
            AxisDist::Collapsed => 1,
            AxisDist::Block { nprocs }
            | AxisDist::Cyclic { nprocs }
            | AxisDist::BlockCyclic { nprocs, .. }
            | AxisDist::Implicit { nprocs, .. } => *nprocs,
            AxisDist::GenBlock { sizes } => sizes.len(),
        }
    }

    /// Validates the distribution against an axis extent.
    pub fn validate(&self, extent: usize) -> Result<(), String> {
        match self {
            AxisDist::Collapsed => Ok(()),
            AxisDist::Block { nprocs } | AxisDist::Cyclic { nprocs } => {
                if *nprocs == 0 {
                    Err("nprocs must be positive".into())
                } else {
                    Ok(())
                }
            }
            AxisDist::BlockCyclic { block, nprocs } => {
                if *nprocs == 0 {
                    Err("nprocs must be positive".into())
                } else if *block == 0 {
                    Err("block length must be positive".into())
                } else {
                    Ok(())
                }
            }
            AxisDist::GenBlock { sizes } => {
                if sizes.is_empty() {
                    Err("gen-block needs at least one block".into())
                } else if sizes.iter().sum::<usize>() != extent {
                    Err(format!(
                        "gen-block sizes sum to {} but axis extent is {}",
                        sizes.iter().sum::<usize>(),
                        extent
                    ))
                } else {
                    Ok(())
                }
            }
            AxisDist::Implicit { owners, nprocs } => {
                if *nprocs == 0 {
                    Err("nprocs must be positive".into())
                } else if owners.len() != extent {
                    Err(format!(
                        "implicit map has {} entries but axis extent is {}",
                        owners.len(),
                        extent
                    ))
                } else if let Some(&bad) = owners.iter().find(|&&o| o >= *nprocs) {
                    Err(format!("implicit owner {bad} out of range (nprocs {nprocs})"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Grid position owning global element `i` (of an axis with `extent`
    /// elements).
    pub fn owner(&self, i: usize, extent: usize) -> usize {
        debug_assert!(i < extent);
        match self {
            AxisDist::Collapsed => 0,
            AxisDist::Block { nprocs } => {
                let b = extent.div_ceil(*nprocs);
                i / b
            }
            AxisDist::Cyclic { nprocs } => i % nprocs,
            AxisDist::BlockCyclic { block, nprocs } => (i / block) % nprocs,
            AxisDist::GenBlock { sizes } => {
                let mut acc = 0;
                for (q, &s) in sizes.iter().enumerate() {
                    acc += s;
                    if i < acc {
                        return q;
                    }
                }
                unreachable!("validated gen-block covers the axis")
            }
            AxisDist::Implicit { owners, .. } => owners[i],
        }
    }

    /// The contiguous global runs `(start, len)` owned by grid position `q`,
    /// in ascending order.
    pub fn segments(&self, q: usize, extent: usize) -> Vec<(usize, usize)> {
        match self {
            AxisDist::Collapsed => {
                if extent > 0 {
                    vec![(0, extent)]
                } else {
                    vec![]
                }
            }
            AxisDist::Block { nprocs } => {
                let b = extent.div_ceil(*nprocs);
                let start = q * b;
                if start >= extent {
                    vec![]
                } else {
                    vec![(start, (extent - start).min(b))]
                }
            }
            AxisDist::Cyclic { nprocs } => (q..extent).step_by(*nprocs).map(|i| (i, 1)).collect(),
            AxisDist::BlockCyclic { block, nprocs } => {
                let mut out = Vec::new();
                let mut start = q * block;
                while start < extent {
                    out.push((start, (*block).min(extent - start)));
                    start += block * nprocs;
                }
                out
            }
            AxisDist::GenBlock { sizes } => {
                let start: usize = sizes[..q].iter().sum();
                if sizes[q] > 0 {
                    vec![(start, sizes[q])]
                } else {
                    vec![]
                }
            }
            AxisDist::Implicit { owners, .. } => {
                let mut out: Vec<(usize, usize)> = Vec::new();
                for (i, &o) in owners.iter().enumerate() {
                    if o == q {
                        match out.last_mut() {
                            Some((s, l)) if *s + *l == i => *l += 1,
                            _ => out.push((i, 1)),
                        }
                    }
                }
                out
            }
        }
    }

    /// Number of elements grid position `q` owns.
    pub fn local_size(&self, q: usize, extent: usize) -> usize {
        self.segments(q, extent).iter().map(|&(_, l)| l).sum()
    }

    /// The grid positions whose owned segments overlap the half-open
    /// interval `[lo, hi)`, each paired with its overlapping segments
    /// `(start, len)` clipped to the interval, ascending by position (and
    /// by start within a position).
    ///
    /// This is the ownership structure that makes schedule construction
    /// sublinear in the grid size: the candidate set is found in closed
    /// form (block family, via cut-point arithmetic / modular arithmetic)
    /// or by scanning only the queried interval (gen-block via its sorted
    /// cut points, implicit via run-length encoding of `owners[lo..hi]`) —
    /// never by probing all `nprocs` positions.
    pub fn overlaps(
        &self,
        lo: usize,
        hi: usize,
        extent: usize,
    ) -> Vec<(usize, Vec<(usize, usize)>)> {
        let hi = hi.min(extent);
        if lo >= hi {
            return vec![];
        }
        match self {
            AxisDist::Collapsed => vec![(0, vec![(lo, hi - lo)])],
            AxisDist::Block { nprocs } => {
                let b = extent.div_ceil(*nprocs);
                let q_lo = lo / b;
                let q_hi = (hi - 1) / b;
                (q_lo..=q_hi)
                    .map(|q| {
                        let s = lo.max(q * b);
                        let e = hi.min((q + 1) * b);
                        (q, vec![(s, e - s)])
                    })
                    .collect()
            }
            AxisDist::Cyclic { nprocs } => {
                // Element i belongs to i % nprocs; group the interval's
                // unit segments by position without touching absent ones.
                let p = *nprocs;
                // Only positions (lo + k) % p for k < min(p, hi - lo) are
                // present; visiting exactly those keeps the query
                // output-bound rather than O(nprocs).
                let mut out: Vec<(usize, Vec<(usize, usize)>)> = (0..p.min(hi - lo))
                    .map(|k| {
                        let first = lo + k;
                        let q = first % p;
                        let segs: Vec<(usize, usize)> =
                            (first..hi).step_by(p).map(|i| (i, 1)).collect();
                        (q, segs)
                    })
                    .collect();
                out.sort_by_key(|&(q, _)| q);
                out
            }
            AxisDist::BlockCyclic { block, nprocs } => {
                // Walk only the blocks intersecting [lo, hi); group by the
                // owning position.
                let b = *block;
                let p = *nprocs;
                let j_lo = lo / b;
                let j_hi = (hi - 1) / b;
                let mut per_pos: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
                for j in j_lo..=j_hi {
                    let q = j % p;
                    let s = lo.max(j * b);
                    let e = hi.min((j + 1) * b);
                    if s >= e {
                        continue;
                    }
                    match per_pos.iter_mut().find(|(pos, _)| *pos == q) {
                        Some((_, segs)) => segs.push((s, e - s)),
                        None => per_pos.push((q, vec![(s, e - s)])),
                    }
                }
                per_pos.sort_by_key(|&(q, _)| q);
                per_pos
            }
            AxisDist::GenBlock { sizes } => {
                // Sorted cut points: position q owns [cuts[q], cuts[q+1]).
                let mut out = Vec::new();
                let mut start = 0;
                for (q, &s) in sizes.iter().enumerate() {
                    let end = start + s;
                    if start >= hi {
                        break;
                    }
                    let l = lo.max(start);
                    let h = hi.min(end);
                    if l < h {
                        out.push((q, vec![(l, h - l)]));
                    }
                    start = end;
                }
                out
            }
            AxisDist::Implicit { owners, .. } => {
                // Run-length encode just the queried window.
                let mut per_pos: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
                let mut i = lo;
                while i < hi {
                    let q = owners[i];
                    let mut j = i + 1;
                    while j < hi && owners[j] == q {
                        j += 1;
                    }
                    match per_pos.iter_mut().find(|(pos, _)| *pos == q) {
                        Some((_, segs)) => segs.push((i, j - i)),
                        None => per_pos.push((q, vec![(i, j - i)])),
                    }
                    i = j;
                }
                per_pos.sort_by_key(|&(q, _)| q);
                per_pos
            }
        }
    }

    /// Bytes this axis descriptor occupies — the compactness metric of
    /// experiment E8. Regular distributions are O(1); gen-block is O(P);
    /// implicit is O(extent).
    pub fn descriptor_bytes(&self) -> usize {
        use std::mem::size_of;
        match self {
            AxisDist::Collapsed => size_of::<u8>(),
            AxisDist::Block { .. } | AxisDist::Cyclic { .. } => size_of::<usize>(),
            AxisDist::BlockCyclic { .. } => 2 * size_of::<usize>(),
            AxisDist::GenBlock { sizes } => sizes.len() * size_of::<usize>(),
            AxisDist::Implicit { owners, .. } => {
                owners.len() * size_of::<usize>() + size_of::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(dist: &AxisDist, extent: usize) {
        dist.validate(extent).unwrap();
        let p = dist.nprocs();
        // Each element owned by exactly the position whose segments hold it.
        let mut seen = vec![0usize; extent];
        for q in 0..p {
            for (s, l) in dist.segments(q, extent) {
                for (i, slot) in seen.iter_mut().enumerate().skip(s).take(l) {
                    assert_eq!(dist.owner(i, extent), q);
                    *slot += 1;
                }
            }
            assert_eq!(
                dist.local_size(q, extent),
                dist.segments(q, extent).iter().map(|x| x.1).sum::<usize>()
            );
        }
        assert!(seen.iter().all(|&c| c == 1), "partition property violated: {seen:?}");
    }

    #[test]
    fn collapsed() {
        check_partition(&AxisDist::Collapsed, 10);
        assert_eq!(AxisDist::Collapsed.nprocs(), 1);
        assert_eq!(AxisDist::Collapsed.segments(0, 10), vec![(0, 10)]);
    }

    #[test]
    fn block_even_and_uneven() {
        check_partition(&AxisDist::Block { nprocs: 4 }, 12);
        check_partition(&AxisDist::Block { nprocs: 4 }, 13);
        check_partition(&AxisDist::Block { nprocs: 5 }, 3); // more procs than elems
        let d = AxisDist::Block { nprocs: 4 };
        assert_eq!(d.segments(0, 13), vec![(0, 4)]);
        assert_eq!(d.segments(3, 13), vec![(12, 1)]);
        // Overhanging position owns nothing.
        let d5 = AxisDist::Block { nprocs: 5 };
        assert_eq!(d5.segments(4, 3), vec![]);
    }

    #[test]
    fn cyclic() {
        check_partition(&AxisDist::Cyclic { nprocs: 3 }, 10);
        let d = AxisDist::Cyclic { nprocs: 3 };
        assert_eq!(d.owner(7, 10), 1);
        assert_eq!(d.segments(1, 7), vec![(1, 1), (4, 1)]);
    }

    #[test]
    fn block_cyclic_intermediate() {
        check_partition(&AxisDist::BlockCyclic { block: 2, nprocs: 3 }, 17);
        let d = AxisDist::BlockCyclic { block: 2, nprocs: 3 };
        assert_eq!(d.segments(0, 17), vec![(0, 2), (6, 2), (12, 2)]);
        assert_eq!(d.segments(2, 17), vec![(4, 2), (10, 2), (16, 1)]);
    }

    #[test]
    fn block_cyclic_reduces_to_block_and_cyclic() {
        let ext = 12;
        let b = AxisDist::Block { nprocs: 4 };
        let bc = AxisDist::BlockCyclic { block: 3, nprocs: 4 };
        for i in 0..ext {
            assert_eq!(b.owner(i, ext), bc.owner(i, ext));
        }
        let c = AxisDist::Cyclic { nprocs: 4 };
        let bc1 = AxisDist::BlockCyclic { block: 1, nprocs: 4 };
        for i in 0..ext {
            assert_eq!(c.owner(i, ext), bc1.owner(i, ext));
        }
    }

    #[test]
    fn gen_block() {
        let d = AxisDist::GenBlock { sizes: vec![5, 0, 3, 2] };
        check_partition(&d, 10);
        assert_eq!(d.segments(1, 10), vec![]);
        assert_eq!(d.segments(2, 10), vec![(5, 3)]);
        assert_eq!(d.owner(9, 10), 3);
    }

    #[test]
    fn gen_block_validation() {
        assert!(AxisDist::GenBlock { sizes: vec![3, 3] }.validate(7).is_err());
        assert!(AxisDist::GenBlock { sizes: vec![] }.validate(0).is_err());
    }

    #[test]
    fn implicit_arbitrary() {
        let d = AxisDist::Implicit { owners: vec![2, 0, 2, 1, 1, 0], nprocs: 3 };
        check_partition(&d, 6);
        assert_eq!(d.segments(1, 6), vec![(3, 2)]);
        assert_eq!(d.segments(2, 6), vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn implicit_validation() {
        assert!(AxisDist::Implicit { owners: vec![0, 3], nprocs: 2 }.validate(2).is_err());
        assert!(AxisDist::Implicit { owners: vec![0], nprocs: 2 }.validate(2).is_err());
    }

    /// Brute-force reference for `overlaps`: clip every position's segment
    /// list to the window and keep the non-empty ones.
    fn overlaps_naive(
        dist: &AxisDist,
        lo: usize,
        hi: usize,
        extent: usize,
    ) -> Vec<(usize, Vec<(usize, usize)>)> {
        let hi = hi.min(extent);
        let mut out = Vec::new();
        for q in 0..dist.nprocs() {
            let segs: Vec<(usize, usize)> = dist
                .segments(q, extent)
                .into_iter()
                .filter_map(|(s, l)| {
                    let a = s.max(lo);
                    let b = (s + l).min(hi);
                    (a < b).then(|| (a, b - a))
                })
                .collect();
            if !segs.is_empty() {
                out.push((q, segs));
            }
        }
        out
    }

    #[test]
    fn overlaps_matches_segments_clipping() {
        let cases: Vec<(AxisDist, usize)> = vec![
            (AxisDist::Collapsed, 9),
            (AxisDist::Block { nprocs: 4 }, 13),
            (AxisDist::Block { nprocs: 5 }, 3),
            (AxisDist::Cyclic { nprocs: 3 }, 11),
            (AxisDist::Cyclic { nprocs: 7 }, 4),
            (AxisDist::BlockCyclic { block: 2, nprocs: 3 }, 17),
            (AxisDist::BlockCyclic { block: 3, nprocs: 2 }, 10),
            (AxisDist::GenBlock { sizes: vec![5, 0, 3, 2] }, 10),
            (AxisDist::Implicit { owners: vec![2, 0, 2, 1, 1, 0], nprocs: 3 }, 6),
        ];
        for (dist, extent) in cases {
            for lo in 0..=extent {
                for hi in lo..=extent + 1 {
                    assert_eq!(
                        dist.overlaps(lo, hi, extent),
                        overlaps_naive(&dist, lo, hi, extent),
                        "{dist:?} window [{lo}, {hi}) extent {extent}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlaps_probes_only_candidates() {
        // A narrow window over a wide block axis returns one position,
        // regardless of nprocs.
        let d = AxisDist::Block { nprocs: 1024 };
        let hits = d.overlaps(5, 7, 4096);
        assert_eq!(hits, vec![(1, vec![(5, 2)])]);
    }

    #[test]
    fn descriptor_bytes_ordering() {
        // E8's premise: regular ≪ gen-block ≪ implicit.
        let ext = 1000;
        let bc = AxisDist::BlockCyclic { block: 4, nprocs: 8 };
        let gb = AxisDist::GenBlock { sizes: vec![125; 8] };
        let im = AxisDist::Implicit { owners: vec![0; ext], nprocs: 8 };
        assert!(bc.descriptor_bytes() < gb.descriptor_bytes());
        assert!(gb.descriptor_bytes() < im.descriptor_bytes());
    }
}
