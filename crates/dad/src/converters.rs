//! DA-package interoperability: 2N hub converters vs N² pairwise.
//!
//! The paper (§2.2.2) motivates the DAD as an intermediate representation:
//! with N distributed-array packages, converting through the DAD needs `2N`
//! converters, versus `N²` (precisely N·(N−1)) direct pairwise converters —
//! but it also warns that "the use of adapters might have serious
//! consequences for performance". This module builds a synthetic family of
//! DA packages so experiment E9 can measure exactly that trade-off:
//!
//! * every package stores a rank's local elements in its own *native
//!   order* (a package-specific permutation of the canonical DAD order);
//! * the **hub** path converts native → canonical → native (two passes,
//!   2N converters);
//! * the **direct** path composes the two permutations once and converts in
//!   a single pass (one pass, N² converters).

use std::collections::HashMap;

/// A synthetic distributed-array package, identified by `id`. Its native
/// local layout is the canonical row-major order permuted by an
/// id-dependent bijection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyntheticPackage {
    /// Package identity; packages with equal ids share a layout.
    pub id: usize,
}

impl SyntheticPackage {
    /// Native position of canonical element `i` in a buffer of length `n`.
    ///
    /// A rotation composed with a conditional reversal — a cheap bijection
    /// that still forces a genuine gather on every conversion.
    pub fn native_pos(&self, i: usize, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let rotated = (i + self.id * 13) % n;
        if self.id % 2 == 1 {
            n - 1 - rotated
        } else {
            rotated
        }
    }

    /// Converts canonical-order data to this package's native order.
    pub fn from_canonical(&self, canonical: &[f64]) -> Vec<f64> {
        let n = canonical.len();
        let mut out = vec![0.0; n];
        for (i, &v) in canonical.iter().enumerate() {
            out[self.native_pos(i, n)] = v;
        }
        out
    }

    /// Converts this package's native-order data back to canonical order.
    pub fn to_canonical(&self, native: &[f64]) -> Vec<f64> {
        let n = native.len();
        let mut out = vec![0.0; n];
        for i in 0..n {
            out[i] = native[self.native_pos(i, n)];
        }
        out
    }
}

/// How a registry converts between two packages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvertStrategy {
    /// Through the canonical DAD representation: 2 passes, 2N converters.
    Hub,
    /// Composed permutation per ordered pair: 1 pass, N·(N−1) converters.
    Direct,
}

/// A converter registry over a set of packages.
pub struct ConverterRegistry {
    packages: Vec<SyntheticPackage>,
    strategy: ConvertStrategy,
    /// Direct strategy: composed permutation per (src, dst, len).
    /// (Keyed by length because permutations are length-dependent.)
    composed: HashMap<(usize, usize, usize), Vec<usize>>,
}

impl ConverterRegistry {
    /// Builds a registry for `n` synthetic packages with the given strategy.
    pub fn new(n: usize, strategy: ConvertStrategy) -> Self {
        ConverterRegistry {
            packages: (0..n).map(|id| SyntheticPackage { id }).collect(),
            strategy,
            composed: HashMap::new(),
        }
    }

    /// The packages known to the registry.
    pub fn packages(&self) -> &[SyntheticPackage] {
        &self.packages
    }

    /// Number of converter implementations this strategy requires for the
    /// registry's package count — the paper's 2N-vs-N² argument.
    pub fn converter_count(&self) -> usize {
        let n = self.packages.len();
        match self.strategy {
            ConvertStrategy::Hub => 2 * n,
            ConvertStrategy::Direct => n * n.saturating_sub(1),
        }
    }

    /// Converts `data` from `src`'s native order to `dst`'s native order.
    ///
    /// # Panics
    /// If either package id is not in the registry.
    pub fn convert(&mut self, src: usize, dst: usize, data: &[f64]) -> Vec<f64> {
        assert!(src < self.packages.len() && dst < self.packages.len(), "unknown package");
        let (s, d) = (self.packages[src], self.packages[dst]);
        if src == dst {
            return data.to_vec();
        }
        match self.strategy {
            ConvertStrategy::Hub => {
                let canonical = s.to_canonical(data);
                d.from_canonical(&canonical)
            }
            ConvertStrategy::Direct => {
                let n = data.len();
                // The "converter" is the composed permutation
                // dst_native ∘ canonical ∘ src_native⁻¹, built once per
                // (src, dst, length) and applied in a single pass.
                let perm = self.composed.entry((src, dst, n)).or_insert_with(|| {
                    let mut inv_src = vec![0usize; n];
                    for i in 0..n {
                        inv_src[s.native_pos(i, n)] = i;
                    }
                    (0..n).map(|pos_src| d.native_pos(inv_src[pos_src], n)).collect()
                });
                let mut out = vec![0.0; n];
                for (pos_src, &v) in data.iter().enumerate() {
                    out[perm[pos_src]] = v;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 1.5).collect()
    }

    #[test]
    fn package_roundtrip_is_identity() {
        for id in 0..6 {
            let p = SyntheticPackage { id };
            let data = sample(37);
            assert_eq!(p.to_canonical(&p.from_canonical(&data)), data);
        }
    }

    #[test]
    fn native_pos_is_a_bijection() {
        for id in 0..5 {
            let p = SyntheticPackage { id };
            let n = 23;
            let mut seen = vec![false; n];
            for i in 0..n {
                let pos = p.native_pos(i, n);
                assert!(!seen[pos], "collision at {pos}");
                seen[pos] = true;
            }
        }
    }

    #[test]
    fn distinct_packages_have_distinct_layouts() {
        let a = SyntheticPackage { id: 0 };
        let b = SyntheticPackage { id: 1 };
        let data = sample(16);
        assert_ne!(a.from_canonical(&data), b.from_canonical(&data));
    }

    #[test]
    fn hub_and_direct_agree() {
        let data = sample(64);
        let mut hub = ConverterRegistry::new(4, ConvertStrategy::Hub);
        let mut direct = ConverterRegistry::new(4, ConvertStrategy::Direct);
        for src in 0..4 {
            for dst in 0..4 {
                let native_src = SyntheticPackage { id: src }.from_canonical(&data);
                let h = hub.convert(src, dst, &native_src);
                let d = direct.convert(src, dst, &native_src);
                assert_eq!(h, d, "src={src} dst={dst}");
                // Both must equal dst's native form of the canonical data.
                let expect = SyntheticPackage { id: dst }.from_canonical(&data);
                assert_eq!(h, expect);
            }
        }
    }

    #[test]
    fn converter_counts_follow_the_paper() {
        for n in 1..10 {
            let hub = ConverterRegistry::new(n, ConvertStrategy::Hub);
            let direct = ConverterRegistry::new(n, ConvertStrategy::Direct);
            assert_eq!(hub.converter_count(), 2 * n);
            assert_eq!(direct.converter_count(), n * (n - 1));
        }
        // The crossover the paper argues from: N² overtakes 2N at N = 4.
        assert!(
            ConverterRegistry::new(4, ConvertStrategy::Direct).converter_count()
                > ConverterRegistry::new(4, ConvertStrategy::Hub).converter_count()
        );
    }

    #[test]
    fn same_package_conversion_is_identity() {
        let data = sample(10);
        let mut reg = ConverterRegistry::new(3, ConvertStrategy::Hub);
        assert_eq!(reg.convert(2, 2, &data), data);
    }

    #[test]
    fn empty_buffer_handled() {
        let mut reg = ConverterRegistry::new(2, ConvertStrategy::Direct);
        assert!(reg.convert(0, 1, &[]).is_empty());
    }
}
