//! Alignment of actual arrays to templates.
//!
//! In the HPF model the DAD follows, a template is a *virtual* array; any
//! number of actual arrays are aligned (mapped) onto it, which lets several
//! arrays share one distribution — and therefore share communication
//! schedules and other pre-planning (paper §2.2.2). We support the common
//! offset alignment: array element `i` lives at template cell `i + offset`.

use crate::descriptor::Dad;
use crate::shape::{Extents, Region};

/// An actual array aligned to a template with a per-axis offset.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedArray {
    template: Dad,
    extents: Extents,
    offsets: Vec<usize>,
}

impl AlignedArray {
    /// Aligns an array of `extents` so element `idx` maps to template cell
    /// `idx + offsets`. The aligned span must fit inside the template.
    pub fn new(template: Dad, extents: Extents, offsets: Vec<usize>) -> Result<Self, String> {
        let t_ext = template.extents();
        if extents.ndim() != t_ext.ndim() || offsets.len() != t_ext.ndim() {
            return Err("alignment rank mismatch".into());
        }
        for (d, &off) in offsets.iter().enumerate() {
            if off + extents.dim(d) > t_ext.dim(d) {
                return Err(format!(
                    "axis {d}: offset {off} + extent {} exceeds template extent {}",
                    extents.dim(d),
                    t_ext.dim(d)
                ));
            }
        }
        Ok(AlignedArray { template, extents, offsets })
    }

    /// Identity alignment (array extents equal template extents).
    pub fn identity(template: Dad) -> Self {
        let extents = template.extents().clone();
        let offsets = vec![0; extents.ndim()];
        AlignedArray { template, extents, offsets }
    }

    /// The template this array is aligned to.
    pub fn template(&self) -> &Dad {
        &self.template
    }

    /// The actual array's extents.
    pub fn extents(&self) -> &Extents {
        &self.extents
    }

    /// Per-axis alignment offsets.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Maps an array index to its template cell.
    pub fn to_template(&self, idx: &[usize]) -> Vec<usize> {
        idx.iter().zip(&self.offsets).map(|(i, o)| i + o).collect()
    }

    /// Maps a template cell back to an array index, if it falls inside the
    /// aligned span.
    pub fn from_template(&self, cell: &[usize]) -> Option<Vec<usize>> {
        let mut idx = Vec::with_capacity(cell.len());
        for (d, &cv) in cell.iter().enumerate() {
            let c = cv.checked_sub(self.offsets[d])?;
            if c >= self.extents.dim(d) {
                return None;
            }
            idx.push(c);
        }
        Some(idx)
    }

    /// Rank owning array element `idx` (through the template).
    pub fn owner(&self, idx: &[usize]) -> usize {
        self.template.owner(&self.to_template(idx))
    }

    /// The array-index regions owned by `rank`: the template's patches,
    /// clipped to the aligned span and shifted into array coordinates.
    pub fn patches(&self, rank: usize) -> Vec<Region> {
        let span = Region::new(
            self.offsets.clone(),
            (0..self.extents.ndim())
                .map(|d| self.offsets[d] + self.extents.dim(d))
                .collect::<Vec<_>>(),
        );
        self.template
            .patches(rank)
            .into_iter()
            .filter_map(|p| p.intersect(&span))
            .map(|p| {
                let lo: Vec<usize> = p.lo().iter().zip(&self.offsets).map(|(l, o)| l - o).collect();
                let hi: Vec<usize> = p.hi().iter().zip(&self.offsets).map(|(h, o)| h - o).collect();
                Region::new(lo, hi)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> Dad {
        Dad::block(Extents::new([8, 8]), &[2, 2]).unwrap()
    }

    #[test]
    fn identity_alignment_matches_template() {
        let a = AlignedArray::identity(template());
        for idx in a.extents().clone().iter() {
            assert_eq!(a.owner(&idx), a.template().owner(&idx));
        }
        for r in 0..4 {
            assert_eq!(a.patches(r), a.template().patches(r));
        }
    }

    #[test]
    fn offset_alignment_shifts_ownership() {
        let a = AlignedArray::new(template(), Extents::new([4, 4]), vec![2, 2]).unwrap();
        // Array (0,0) sits at template (2,2) → owned by grid (0,0) = rank 0.
        assert_eq!(a.owner(&[0, 0]), 0);
        // Array (3,3) sits at template (5,5) → grid (1,1) = rank 3.
        assert_eq!(a.owner(&[3, 3]), 3);
    }

    #[test]
    fn patches_partition_the_array() {
        let a = AlignedArray::new(template(), Extents::new([5, 6]), vec![1, 2]).unwrap();
        let mut count = 0;
        for r in 0..4 {
            for p in a.patches(r) {
                for idx in p.iter() {
                    assert_eq!(a.owner(&idx), r);
                    count += 1;
                }
            }
        }
        assert_eq!(count, 30, "every array element in exactly one patch");
    }

    #[test]
    fn template_roundtrip() {
        let a = AlignedArray::new(template(), Extents::new([4, 4]), vec![3, 0]).unwrap();
        assert_eq!(a.to_template(&[1, 2]), vec![4, 2]);
        assert_eq!(a.from_template(&[4, 2]), Some(vec![1, 2]));
        assert_eq!(a.from_template(&[2, 2]), None, "before the span");
        assert_eq!(a.from_template(&[7, 5]), None, "past the span");
    }

    #[test]
    fn overhanging_alignment_rejected() {
        assert!(AlignedArray::new(template(), Extents::new([8, 8]), vec![1, 0]).is_err());
        assert!(AlignedArray::new(template(), Extents::new([4]), vec![0]).is_err());
    }
}
