//! # mxn-dad — the Distributed Array Descriptor
//!
//! Implements the CCA Distributed Array Descriptor of the paper's §2.2.2: a
//! uniform, package-neutral description of how a dense multidimensional
//! array is decomposed across the processes of a parallel component, plus
//! access to each process's local patches.
//!
//! * [`shape`] — extents, row-major indexing, rectangular [`Region`]s.
//! * [`axis`] — the per-axis distribution kinds (collapsed, block, cyclic,
//!   block-cyclic, generalized block, HPF-style implicit).
//! * [`template`] — HPF-style templates over process grids.
//! * [`explicit`] — the whole-array explicit patch distribution.
//! * [`descriptor`] — [`Dad`], the unified descriptor, plus access modes.
//! * [`align`] — alignment of actual arrays onto templates.
//! * [`local`] — [`LocalArray`], per-rank patch storage with fast
//!   row-run packing for transfer execution.
//! * [`overlap`] — [`OverlapIndex`], sublinear "who owns part of this
//!   region?" queries for schedule construction.
//! * [`converters`] — the 2N-vs-N² DA-package interop model (experiment E9).
//!
//! ```
//! use mxn_dad::{Dad, Extents, LocalArray};
//!
//! // A 6×6 array, block-distributed over a 2×2 process grid.
//! let dad = Dad::block(Extents::new([6, 6]), &[2, 2]).unwrap();
//! assert_eq!(dad.nranks(), 4);
//! assert_eq!(dad.owner(&[5, 0]), 2);
//!
//! // Rank 0's local storage covers rows 0..3 × cols 0..3.
//! let local = LocalArray::from_fn(&dad, 0, |idx| idx[0] * 10 + idx[1]);
//! assert_eq!(*local.get(&[2, 1]).unwrap(), 21);
//! ```

pub mod align;
pub mod axis;
pub mod converters;
pub mod descriptor;
pub mod expand;
pub mod explicit;
pub mod local;
pub mod overlap;
pub mod shape;
pub mod shrink;
pub mod template;

pub use align::AlignedArray;
pub use axis::AxisDist;
pub use converters::{ConvertStrategy, ConverterRegistry, SyntheticPackage};
pub use descriptor::{AccessMode, Dad, Distribution};
pub use explicit::ExplicitDist;
pub use local::{region_runs, CopyRun, LocalArray};
pub use overlap::{OverlapHits, OverlapIndex};
pub use shape::{Extents, Region};
pub use template::Template;
