//! Concurrency properties of the per-rank recorders: a multi-rank flood
//! loses nothing, duplicates nothing, keeps per-rank sequence numbers
//! strictly monotone, and merges in per-rank program order.

use mxn_trace::{EventId, Phase, RunTrace, TraceCollector};
use proptest::prelude::*;

/// `nranks` OS threads each record `per_rank` events as fast as they can,
/// tagging every event with `(rank, i)` so the merged trace can be checked
/// exactly. Mixing ids and phases exercises the chunk-claim path with
/// different payloads, and an occasional `std::thread::yield_now` shakes
/// the interleaving.
fn flood(nranks: usize, per_rank: usize) -> RunTrace {
    let collector = TraceCollector::new(nranks);
    std::thread::scope(|s| {
        for r in 0..nranks {
            let h = collector.handle(r);
            s.spawn(move || {
                for i in 0..per_rank {
                    let id = match i % 3 {
                        0 => EventId::MailboxPost,
                        1 => EventId::CollMsg,
                        _ => EventId::Collective,
                    };
                    let phase = if i % 3 == 2 { Phase::Begin } else { Phase::Instant };
                    h.record(id, phase, [r as u64, i as u64, 0, 0]);
                    if i % 256 == 255 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    collector.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every recorded event appears in the merged trace exactly once:
    /// nothing lost, nothing duplicated — even when `per_rank` crosses
    /// several chunk boundaries (the chunk capacity is 4096).
    #[test]
    fn flood_loses_and_duplicates_nothing(nranks in 1usize..6, per_rank in 0usize..9000) {
        let trace = flood(nranks, per_rank);
        prop_assert_eq!(trace.dropped, 0);
        prop_assert_eq!(trace.events.len(), nranks * per_rank);
        let mut seen = vec![vec![false; per_rank]; nranks];
        for ev in &trace.events {
            let (r, i) = (ev.args[0] as usize, ev.args[1] as usize);
            prop_assert_eq!(ev.rank as usize, r);
            prop_assert!(!seen[r][i], "event ({}, {}) merged twice", r, i);
            seen[r][i] = true;
        }
        prop_assert!(seen.iter().all(|row| row.iter().all(|&s| s)));
    }

    /// Per-rank sequence numbers are strictly monotone, and the merged
    /// order respects each rank's program order (`args[1]` is the loop
    /// index the recording thread stamped).
    #[test]
    fn merged_order_is_per_rank_program_order(nranks in 1usize..6, per_rank in 1usize..9000) {
        let trace = flood(nranks, per_rank);
        let mut last_seq = vec![None::<u64>; nranks];
        let mut last_i = vec![None::<u64>; nranks];
        for ev in &trace.events {
            let r = ev.rank as usize;
            if let Some(prev) = last_seq[r] {
                prop_assert!(ev.seq > prev, "rank {} seq not strictly monotone", r);
            }
            if let Some(prev) = last_i[r] {
                prop_assert!(ev.args[1] > prev, "rank {} merged out of program order", r);
            }
            last_seq[r] = Some(ev.seq);
            last_i[r] = Some(ev.args[1]);
        }
        // The merge is (rank, seq)-sorted overall.
        for w in trace.events.windows(2) {
            prop_assert!((w[0].rank, w[0].seq) < (w[1].rank, w[1].seq));
        }
    }
}
