//! Structured event tracing: per-rank lock-free recorders, merged run
//! traces, Chrome trace-event export, and canonical digests.
//!
//! The M×N pipeline — describe decompositions, build a schedule, execute
//! the transfer or PRMI — emits structured events with **stable ids** at
//! every architecturally interesting point (schedule build, `CopyPlan`
//! execution, collective algorithm selection, mailbox post/match, PRMI
//! call/serve, the DCA delivery barrier, fault injections). This crate is
//! the substrate; the recording *points* live in `mxn-runtime`,
//! `mxn-schedule`, `mxn-dca`, `mxn-prmi` and `mxn-framework`.
//!
//! Design constraints, in order:
//!
//! 1. **A disabled tracer is a branch.** Every [`emit`] first reads one
//!    process-global `AtomicBool` (relaxed) and returns; no thread-local
//!    access, no allocation, no fence. The mailbox-flood bench holds the
//!    disabled-tracer overhead under 5% (EXPERIMENTS.md E20).
//! 2. **Recording is lock-free and per-rank.** Each rank thread owns a
//!    [`RankRecorder`]: a chunked append-only buffer where a slot is
//!    claimed by `fetch_add` on the sequence counter and published with a
//!    release store on a ready flag. Claiming doubles as the rank's
//!    **logical clock**: sequence numbers are strictly monotone in
//!    program order.
//! 3. **Determinism is a test axiom.** The canonical serialization and
//!    digest cover only logical fields — `(rank, seq, id, phase, args)` —
//!    never wall time, so identical seeds ⇒ identical digests, byte for
//!    byte, across machines (the golden-trace suite).
//!
//! Rank threads find their recorder through a thread-local installed by
//! [`TraceHandle::install`] (done by `World`/`Universe` traced runs), so
//! leaf crates emit events without any API plumbing. At teardown the
//! [`TraceCollector`] drains every rank buffer into a merged [`RunTrace`]
//! ordered by `(rank, seq)`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stable event identifiers. The numeric values are part of the
/// golden-trace format: never renumber, only append.
#[repr(u16)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventId {
    /// Schedule-construction span; End args = `[peer_probes, pairs_emitted]`.
    ScheduleBuild = 1,
    /// One `CopyPlan` pack execution; args = `[elements, runs]`.
    CopyPack = 2,
    /// One `CopyPlan` unpack execution; args = `[elements, runs]`.
    CopyUnpack = 3,
    /// Transfer-pool lease; args = `[fresh]` (0 = recycled, 1 = allocated).
    BufferLease = 4,
    /// One collective operation span; Begin args =
    /// `[op, algorithm, bytes_hint, rounds]` (codes defined by the runtime).
    Collective = 5,
    /// One collective point-to-point message; args = `[op, bytes]`.
    CollMsg = 6,
    /// Payload deep-clone attributed to a collective; args = `[op, n]`.
    CollClone = 7,
    /// Payload allocation attributed to a collective; args = `[op, n]`.
    CollAlloc = 8,
    /// Envelope posted to a peer mailbox; args = `[context, tag, dst, bytes]`.
    MailboxPost = 9,
    /// Envelope matched by a receive; args = `[context, tag, src, bytes]`.
    MailboxMatch = 10,
    /// Operation failed; args = `[code, src, tag]` (codes defined by the
    /// runtime: timeout, peer-dead, corrupt, …).
    OpError = 11,
    /// PRMI collective/subset call span; args = `[method, seq]`.
    PrmiCall = 12,
    /// PRMI serve-side dispatch; args = `[method, seq]`.
    PrmiServe = 13,
    /// Serial RMI call span; args = `[method, call_id]`.
    RmiCall = 14,
    /// Serial RMI serve-side dispatch; args = `[method, src]`.
    RmiServe = 15,
    /// DCA intra-component alltoallv span; Begin args =
    /// `[algorithm, max_chunk_bytes]`.
    DcaAlltoallv = 16,
    /// DCA/PRMI delivery barrier executed before shares are sent;
    /// args = `[participants]`.
    DcaBarrier = 17,
    /// Fault-plane injection applied to a message; args =
    /// `[kind, dst, tag, bytes]`.
    FaultInject = 18,
    /// A communicator context pair was revoked; args = `[context]`.
    Revoke = 19,
    /// Fault-tolerant agreement span; End args = `[members, heard]`
    /// (`heard` = peers whose contribution arrived before the deadline).
    Agree = 20,
    /// Survivor-set shrink; args = `[old_size, new_size, new_context]`.
    Shrink = 21,
    /// Connection heal span (shrink + schedule rebuild); End args =
    /// `[epoch, survivors]`.
    Heal = 22,
    /// Transactional transfer committed; args = `[epoch, seq]`.
    Commit = 23,
    /// Transactional transfer rolled back; args = `[epoch, seq]`.
    Rollback = 24,
    /// A wire-transport link was established (or accepted); args =
    /// `[peer, attempt, resumed_frames, listener]`.
    WireConnect = 25,
    /// A wire-transport reconnect attempt span; End args =
    /// `[peer, attempt, success]`.
    WireReconnect = 26,
    /// A received frame failed its CRC (payload or header); args =
    /// `[peer, kind, bytes, header_ok]`.
    WireFrameCorrupt = 27,
    /// A peer missed its heartbeat/liveness deadline; args =
    /// `[peer, silence_micros, deadline_micros]`.
    HeartbeatMiss = 28,
    /// Serving-plane client connection lifecycle; args =
    /// `[conn, shard, opened]` (1 = accepted, 0 = closed).
    ServeConn = 29,
    /// One shard batch dispatch span; Begin args =
    /// `[shard, method, batch_len, queue_depth]`.
    ServeBatch = 30,
    /// Admission control shed a request with an `Overloaded` NACK; args =
    /// `[shard, conn, queue_depth]`.
    ServeOverload = 31,
    /// A slow client's reader was parked (cooperative backpressure);
    /// args = `[conn, inflight, budget]`.
    ServePark = 32,
    /// One budgeted redistribution under a chosen route; Begin args =
    /// `[kind, budget_bytes, planned_peak_bytes, steps]`, End args =
    /// `[kind, total_bytes, 0, 0]`.
    RoutePlan = 33,
    /// One step of a compiled redistribution route; Begin args =
    /// `[kind, step_index, step_bytes, step_peak_bytes]`.
    RouteStep = 34,
    /// An RMA window was exposed (collective epoch open); args =
    /// `[win_id, exposed_elems, members, 0]`.
    RmaExpose = 35,
    /// One-sided put issued against a window; args =
    /// `[win_id, target, dst_off, elems]`.
    RmaPut = 36,
    /// One-sided get issued against a window; args =
    /// `[win_id, target, runs, elems]`.
    RmaGet = 37,
    /// RMA fence span completing a window epoch; Begin args =
    /// `[win_id, my_puts, my_gets, 0]`, End args =
    /// `[win_id, served_puts, served_gets, 0]`.
    RmaFence = 38,
    /// An intercomm membership reconfiguration (grow or graceful contract)
    /// committed; args = `[participants, new_total, new_context, attempt]`.
    Expand = 39,
    /// Progress-fence zombie verdict transition on a wire peer; args =
    /// `[peer, transition, stalled_fences, micros_since_quarantine]` where
    /// `transition` is 1 = quarantined, 2 = re-admitted, 3 = evicted.
    WireZombie = 40,
    /// Wire-mesh join handshake outcome at the sponsor; args =
    /// `[new_rank, attempt, committed, mesh_size]`.
    WireJoin = 41,
}

/// Every id, in numeric order (drives aggregation tables).
pub const ALL_EVENT_IDS: [EventId; 41] = [
    EventId::ScheduleBuild,
    EventId::CopyPack,
    EventId::CopyUnpack,
    EventId::BufferLease,
    EventId::Collective,
    EventId::CollMsg,
    EventId::CollClone,
    EventId::CollAlloc,
    EventId::MailboxPost,
    EventId::MailboxMatch,
    EventId::OpError,
    EventId::PrmiCall,
    EventId::PrmiServe,
    EventId::RmiCall,
    EventId::RmiServe,
    EventId::DcaAlltoallv,
    EventId::DcaBarrier,
    EventId::FaultInject,
    EventId::Revoke,
    EventId::Agree,
    EventId::Shrink,
    EventId::Heal,
    EventId::Commit,
    EventId::Rollback,
    EventId::WireConnect,
    EventId::WireReconnect,
    EventId::WireFrameCorrupt,
    EventId::HeartbeatMiss,
    EventId::ServeConn,
    EventId::ServeBatch,
    EventId::ServeOverload,
    EventId::ServePark,
    EventId::RoutePlan,
    EventId::RouteStep,
    EventId::RmaExpose,
    EventId::RmaPut,
    EventId::RmaGet,
    EventId::RmaFence,
    EventId::Expand,
    EventId::WireZombie,
    EventId::WireJoin,
];

impl EventId {
    /// Stable display name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            EventId::ScheduleBuild => "ScheduleBuild",
            EventId::CopyPack => "CopyPack",
            EventId::CopyUnpack => "CopyUnpack",
            EventId::BufferLease => "BufferLease",
            EventId::Collective => "Collective",
            EventId::CollMsg => "CollMsg",
            EventId::CollClone => "CollClone",
            EventId::CollAlloc => "CollAlloc",
            EventId::MailboxPost => "MailboxPost",
            EventId::MailboxMatch => "MailboxMatch",
            EventId::OpError => "OpError",
            EventId::PrmiCall => "PrmiCall",
            EventId::PrmiServe => "PrmiServe",
            EventId::RmiCall => "RmiCall",
            EventId::RmiServe => "RmiServe",
            EventId::DcaAlltoallv => "DcaAlltoallv",
            EventId::DcaBarrier => "DcaBarrier",
            EventId::FaultInject => "FaultInject",
            EventId::Revoke => "Revoke",
            EventId::Agree => "Agree",
            EventId::Shrink => "Shrink",
            EventId::Heal => "Heal",
            EventId::Commit => "Commit",
            EventId::Rollback => "Rollback",
            EventId::WireConnect => "WireConnect",
            EventId::WireReconnect => "WireReconnect",
            EventId::WireFrameCorrupt => "WireFrameCorrupt",
            EventId::HeartbeatMiss => "HeartbeatMiss",
            EventId::ServeConn => "ServeConn",
            EventId::ServeBatch => "ServeBatch",
            EventId::ServeOverload => "ServeOverload",
            EventId::ServePark => "ServePark",
            EventId::RoutePlan => "RoutePlan",
            EventId::RouteStep => "RouteStep",
            EventId::RmaExpose => "RmaExpose",
            EventId::RmaPut => "RmaPut",
            EventId::RmaGet => "RmaGet",
            EventId::RmaFence => "RmaFence",
            EventId::Expand => "Expand",
            EventId::WireZombie => "WireZombie",
            EventId::WireJoin => "WireJoin",
        }
    }

    /// Category grouping for aggregation and the Chrome `cat` field.
    pub fn category(self) -> &'static str {
        match self {
            EventId::ScheduleBuild
            | EventId::CopyPack
            | EventId::CopyUnpack
            | EventId::BufferLease
            | EventId::RoutePlan
            | EventId::RouteStep => "schedule",
            EventId::Collective | EventId::CollMsg | EventId::CollClone | EventId::CollAlloc => {
                "collective"
            }
            EventId::MailboxPost | EventId::MailboxMatch | EventId::OpError => "mailbox",
            EventId::PrmiCall | EventId::PrmiServe | EventId::DcaBarrier => "prmi",
            EventId::RmiCall | EventId::RmiServe => "rmi",
            EventId::DcaAlltoallv => "dca",
            EventId::FaultInject => "fault",
            EventId::Revoke
            | EventId::Agree
            | EventId::Shrink
            | EventId::Heal
            | EventId::Commit
            | EventId::Rollback
            | EventId::Expand => "recovery",
            EventId::RmaExpose | EventId::RmaPut | EventId::RmaGet | EventId::RmaFence => "rma",
            EventId::WireConnect
            | EventId::WireReconnect
            | EventId::WireFrameCorrupt
            | EventId::HeartbeatMiss
            | EventId::WireZombie
            | EventId::WireJoin => "wire",
            EventId::ServeConn
            | EventId::ServeBatch
            | EventId::ServeOverload
            | EventId::ServePark => "serve",
        }
    }

    /// Reverses the stable numeric id.
    pub fn from_u16(v: u16) -> Option<EventId> {
        ALL_EVENT_IDS.iter().copied().find(|id| *id as u16 == v)
    }

    /// True if events with this id are part of the canonical serialization
    /// (and therefore the digest).
    ///
    /// Excluded ids record *physical* outcomes that legitimately differ
    /// between runs of the same seeded program: which receiver won an
    /// `Arc` refcount race ([`EventId::CollClone`], [`EventId::CollAlloc`]),
    /// which sender a wildcard receive happened to match
    /// ([`EventId::MailboxMatch`]), how many timeout polls a serve loop
    /// spun before its message arrived ([`EventId::OpError`]), how many
    /// agreement contributions beat the deadline ([`EventId::Agree`] —
    /// whether a dying rank's vote lands depends on thread interleaving),
    /// and every wire-transport event ([`EventId::WireConnect`],
    /// [`EventId::WireReconnect`], [`EventId::WireFrameCorrupt`],
    /// [`EventId::HeartbeatMiss`] — socket timing is real wall-clock
    /// physics, not seeded simulation). Serving-plane events
    /// ([`EventId::ServeConn`] … [`EventId::ServePark`]) are likewise
    /// physical: which requests share a batch and when admission sheds
    /// depend on OS thread scheduling across free-running clients.
    /// They are still recorded, merged, exported and aggregated — they just
    /// never participate in golden digests, exactly like `wall_us`.
    pub fn in_digest(self) -> bool {
        !matches!(
            self,
            EventId::CollClone
                | EventId::CollAlloc
                | EventId::MailboxMatch
                | EventId::OpError
                | EventId::Agree
                | EventId::WireConnect
                | EventId::WireReconnect
                | EventId::WireFrameCorrupt
                | EventId::HeartbeatMiss
                | EventId::ServeConn
                | EventId::ServeBatch
                | EventId::ServeOverload
                | EventId::ServePark
                | EventId::WireZombie
                | EventId::WireJoin
        )
    }
}

/// Span phase of an event.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Span open.
    Begin = 0,
    /// Span close.
    End = 1,
    /// Point event.
    Instant = 2,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Begin,
            1 => Phase::End,
            _ => Phase::Instant,
        }
    }
}

/// One recorded event, as surfaced by a merged [`RunTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Recording rank (Chrome `tid`).
    pub rank: u32,
    /// Per-rank logical clock: strictly monotone in program order.
    pub seq: u64,
    /// What happened.
    pub id: EventId,
    /// Span phase.
    pub phase: Phase,
    /// Microseconds since the collector's epoch. Display only — **never**
    /// part of the canonical serialization or digest.
    pub wall_us: u64,
    /// Event-specific payload (see [`EventId`] docs for each layout).
    pub args: [u64; 4],
}

// ---------------------------------------------------------------------------
// Global enable gate + thread-local recorder
// ---------------------------------------------------------------------------

/// The one-branch gate every [`emit`] checks first. Kept in sync with
/// `ACTIVE_COLLECTORS` so concurrent traced runs (tests) compose.
static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE_COLLECTORS: AtomicUsize = AtomicUsize::new(0);

/// True while at least one [`TraceCollector`] is live. This is the cheap
/// check: one relaxed atomic load and a branch.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    static RECORDER: RefCell<Option<Arc<RankRecorder>>> = const { RefCell::new(None) };
}

/// Records an event on the calling thread's installed recorder, if tracing
/// is enabled and a recorder is installed. The disabled path is a single
/// relaxed load + branch.
#[inline]
pub fn emit(id: EventId, phase: Phase, args: [u64; 4]) {
    if !tracing_enabled() {
        return;
    }
    emit_installed(id, phase, args);
}

#[cold]
fn emit_installed(id: EventId, phase: Phase, args: [u64; 4]) {
    RECORDER.with(|slot| {
        if let Some(rec) = slot.borrow().as_ref() {
            rec.record(id, phase, args);
        }
    });
}

/// [`emit`] with [`Phase::Instant`].
#[inline]
pub fn emit_instant(id: EventId, args: [u64; 4]) {
    emit(id, Phase::Instant, args);
}

/// Opens a span: emits `Begin(begin_args)` now and `End(end_args)` when the
/// returned guard drops (so spans close on every exit path, including `?`).
/// End args default to `[begin_args[0], 0, 0, 0]`; override with
/// [`SpanGuard::set_end`].
#[inline]
pub fn span(id: EventId, begin_args: [u64; 4]) -> SpanGuard {
    emit(id, Phase::Begin, begin_args);
    SpanGuard { id, end_args: [begin_args[0], 0, 0, 0] }
}

/// Drop guard closing a span opened by [`span`].
pub struct SpanGuard {
    id: EventId,
    end_args: [u64; 4],
}

impl SpanGuard {
    /// Overrides the End args (e.g. counts only known when the span closes).
    pub fn set_end(&mut self, args: [u64; 4]) {
        self.end_args = args;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        emit(self.id, Phase::End, self.end_args);
    }
}

// ---------------------------------------------------------------------------
// The lock-free per-rank recorder
// ---------------------------------------------------------------------------

/// Events per chunk. A chunk is allocated lazily when the sequence counter
/// first crosses into it.
const CHUNK_CAP: usize = 4096;
/// Chunks per recorder; capacity = `MAX_CHUNKS * CHUNK_CAP` events per
/// rank, after which events are counted as dropped (never lost silently).
const MAX_CHUNKS: usize = 1024;

#[derive(Clone, Copy)]
struct RawEvent {
    id: u16,
    phase: u8,
    seq: u64,
    wall_us: u64,
    args: [u64; 4],
}

struct Slot {
    /// Publication flag: set (release) after the event is fully written.
    ready: AtomicBool,
    ev: std::cell::UnsafeCell<RawEvent>,
}

struct Chunk {
    slots: Box<[Slot]>,
}

// Safety: a slot is written exactly once, by the single thread that claimed
// its sequence number via `fetch_add`; readers only dereference after
// observing `ready` with acquire ordering.
unsafe impl Sync for Chunk {}

impl Chunk {
    fn new() -> Chunk {
        let slots = (0..CHUNK_CAP)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                ev: std::cell::UnsafeCell::new(RawEvent {
                    id: 0,
                    phase: 0,
                    seq: 0,
                    wall_us: 0,
                    args: [0; 4],
                }),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Chunk { slots }
    }
}

/// One rank's lock-free event buffer. Appending claims a slot with a
/// `fetch_add` (the rank's logical clock), writes the event, and publishes
/// it with a release store — no locks anywhere on the record path, so
/// recorders may also be flooded from several threads (the concurrency
/// proptests do exactly that).
pub struct RankRecorder {
    rank: u32,
    next_seq: AtomicU64,
    chunks: Vec<AtomicPtr<Chunk>>,
    dropped: AtomicU64,
    epoch: Instant,
}

impl RankRecorder {
    fn new(rank: u32, epoch: Instant) -> RankRecorder {
        let chunks = (0..MAX_CHUNKS).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        RankRecorder {
            rank,
            next_seq: AtomicU64::new(0),
            chunks,
            dropped: AtomicU64::new(0),
            epoch,
        }
    }

    /// The rank this recorder belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Appends one event. Lock-free: claim a sequence number, write the
    /// slot, publish. Overflow past the fixed capacity increments the
    /// dropped counter instead of blocking or reallocating.
    pub fn record(&self, id: EventId, phase: Phase, args: [u64; 4]) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let idx = seq as usize;
        let ci = idx / CHUNK_CAP;
        if ci >= MAX_CHUNKS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let chunk = self.chunk(ci);
        let slot = &chunk.slots[idx % CHUNK_CAP];
        let wall_us = self.epoch.elapsed().as_micros() as u64;
        // Safety: this thread exclusively owns the slot for `seq` (unique
        // fetch_add claim); the release store below publishes the write.
        unsafe {
            *slot.ev.get() = RawEvent { id: id as u16, phase: phase as u8, seq, wall_us, args };
        }
        slot.ready.store(true, Ordering::Release);
    }

    /// Returns chunk `ci`, allocating and CAS-installing it if this is the
    /// first claim to land there. The loser of the race frees its copy.
    fn chunk(&self, ci: usize) -> &Chunk {
        let cell = &self.chunks[ci];
        let ptr = cell.load(Ordering::Acquire);
        if !ptr.is_null() {
            return unsafe { &*ptr };
        }
        let fresh = Box::into_raw(Box::new(Chunk::new()));
        match cell.compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => unsafe { &*fresh },
            Err(existing) => {
                // Safety: `fresh` was never published.
                unsafe { drop(Box::from_raw(fresh)) };
                unsafe { &*existing }
            }
        }
    }

    /// Events recorded so far (claimed sequence numbers, including any
    /// dropped past capacity).
    pub fn len(&self) -> u64 {
        self.next_seq.load(Ordering::Acquire)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every published event in sequence order. Slots claimed but
    /// not yet published (a writer preempted mid-record) are counted as
    /// dropped rather than returned half-written.
    fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let claimed = self.next_seq.load(Ordering::Acquire);
        let readable = claimed.min((MAX_CHUNKS * CHUNK_CAP) as u64);
        let mut out = Vec::with_capacity(readable as usize);
        let mut unpublished = 0u64;
        for seq in 0..readable {
            let idx = seq as usize;
            let ptr = self.chunks[idx / CHUNK_CAP].load(Ordering::Acquire);
            if ptr.is_null() {
                unpublished += 1;
                continue;
            }
            let slot = unsafe { &(*ptr).slots[idx % CHUNK_CAP] };
            if !slot.ready.load(Ordering::Acquire) {
                unpublished += 1;
                continue;
            }
            // Safety: `ready` observed with acquire — the write is complete.
            let raw = unsafe { *slot.ev.get() };
            let id = EventId::from_u16(raw.id).expect("recorder only stores known event ids");
            out.push(TraceEvent {
                rank: self.rank,
                seq: raw.seq,
                id,
                phase: Phase::from_u8(raw.phase),
                wall_us: raw.wall_us,
                args: raw.args,
            });
        }
        (out, self.dropped.load(Ordering::Acquire) + unpublished)
    }
}

impl Drop for RankRecorder {
    fn drop(&mut self) {
        for cell in &self.chunks {
            let ptr = cell.load(Ordering::Acquire);
            if !ptr.is_null() {
                unsafe { drop(Box::from_raw(ptr)) };
            }
        }
    }
}

/// Cheap cloneable handle to one rank's recorder.
#[derive(Clone)]
pub struct TraceHandle {
    rec: Arc<RankRecorder>,
}

impl TraceHandle {
    /// The rank this handle records for.
    pub fn rank(&self) -> u32 {
        self.rec.rank()
    }

    /// Installs this recorder as the calling thread's emit target until the
    /// guard drops (restoring whatever was installed before).
    pub fn install(&self) -> InstallGuard {
        let prev = RECORDER.with(|slot| slot.borrow_mut().replace(Arc::clone(&self.rec)));
        InstallGuard { prev }
    }

    /// Records directly on this handle's recorder, bypassing the global
    /// gate and the thread-local — the concurrency tests flood a single
    /// recorder from many threads through this.
    pub fn record(&self, id: EventId, phase: Phase, args: [u64; 4]) {
        self.rec.record(id, phase, args);
    }
}

/// Restores the previously installed recorder on drop.
pub struct InstallGuard {
    prev: Option<Arc<RankRecorder>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        RECORDER.with(|slot| *slot.borrow_mut() = self.prev.take());
    }
}

/// Keeps the global gate up while at least one collector is live.
struct EnableGuard;

impl EnableGuard {
    fn new() -> EnableGuard {
        if ACTIVE_COLLECTORS.fetch_add(1, Ordering::SeqCst) == 0 {
            TRACING_ENABLED.store(true, Ordering::SeqCst);
        }
        EnableGuard
    }
}

impl Drop for EnableGuard {
    fn drop(&mut self) {
        if ACTIVE_COLLECTORS.fetch_sub(1, Ordering::SeqCst) == 1 {
            TRACING_ENABLED.store(false, Ordering::SeqCst);
        }
    }
}

/// Owns the per-rank recorders for one traced run. Creating a collector
/// raises the global enable gate; [`TraceCollector::finish`] (or drop)
/// lowers it. `World`/`Universe` hand each rank thread its
/// [`TraceHandle`] and call `finish` after the join.
pub struct TraceCollector {
    recorders: Vec<Arc<RankRecorder>>,
    _enable: EnableGuard,
}

impl TraceCollector {
    /// A collector with one recorder per rank, sharing one wall-clock
    /// epoch so timestamps are comparable across ranks.
    pub fn new(nranks: usize) -> TraceCollector {
        let epoch = Instant::now();
        let recorders = (0..nranks).map(|r| Arc::new(RankRecorder::new(r as u32, epoch))).collect();
        TraceCollector { recorders, _enable: EnableGuard::new() }
    }

    /// Number of ranks this collector records.
    pub fn nranks(&self) -> usize {
        self.recorders.len()
    }

    /// The handle for `rank`'s recorder.
    pub fn handle(&self, rank: usize) -> TraceHandle {
        TraceHandle { rec: Arc::clone(&self.recorders[rank]) }
    }

    /// Drains every rank buffer into a merged [`RunTrace`] ordered by
    /// `(rank, seq)` and lowers the enable gate.
    pub fn finish(self) -> RunTrace {
        let mut events = Vec::new();
        let mut dropped = 0;
        for rec in &self.recorders {
            let (mut evs, d) = rec.drain();
            events.append(&mut evs);
            dropped += d;
        }
        RunTrace { nranks: self.recorders.len(), events, dropped }
    }
}

// ---------------------------------------------------------------------------
// Merged run traces: canonical bytes, digest, Chrome export, aggregation
// ---------------------------------------------------------------------------

/// The merged trace of one run: every rank's events, ordered by
/// `(rank, seq)` — i.e. per-rank program order, ranks concatenated.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Ranks that recorded.
    pub nranks: usize,
    /// Merged events.
    pub events: Vec<TraceEvent>,
    /// Events lost to buffer overflow (0 in any healthy run).
    pub dropped: u64,
}

impl RunTrace {
    /// Events recorded by one rank, in program order.
    pub fn events_for(&self, rank: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank as usize == rank)
    }

    /// Canonical byte serialization. Covers **logical content only**: the
    /// [`EventId::in_digest`] subset of events, in merged `(rank, seq)`
    /// order, each as `(rank, id, phase, args)` little-endian fixed width.
    /// Neither `wall_us` nor the raw `seq` is serialized — per-rank order
    /// is carried by position, so physically-raced events (clone
    /// attribution, wildcard matches, timeout polls) can neither appear in
    /// the bytes nor shift the logical clocks of the events that do.
    /// Identical seeds therefore produce identical bytes on any machine.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 39);
        out.extend_from_slice(b"MXNTRACE1");
        out.extend_from_slice(&(self.nranks as u32).to_le_bytes());
        let digested = self.events.iter().filter(|e| e.id.in_digest());
        out.extend_from_slice(&(digested.clone().count() as u64).to_le_bytes());
        for ev in digested {
            out.extend_from_slice(&ev.rank.to_le_bytes());
            out.extend_from_slice(&(ev.id as u16).to_le_bytes());
            out.push(ev.phase as u8);
            for a in ev.args {
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
        out
    }

    /// FNV-1a digest of [`Self::canonical_bytes`]. Deterministic runs must
    /// produce identical digests — the golden-trace axiom.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// [`Self::digest`] as a fixed-width hex string (golden files).
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Chrome trace-event JSON (load via `chrome://tracing` or Perfetto):
    /// `pid` 0, `tid` = rank, `ts` in microseconds from the run epoch.
    pub fn chrome_json(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            let ph = match ev.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            let scope = if ev.phase == Phase::Instant { ",\"s\":\"t\"" } else { "" };
            let _ = write!(
                s,
                "{}{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\"{},\"pid\":0,\"tid\":{},\"ts\":{},\"args\":{{\"seq\":{},\"a0\":{},\"a1\":{},\"a2\":{},\"a3\":{}}}}}",
                if i == 0 { "" } else { ",\n" },
                ev.id.name(),
                ev.id.category(),
                ph,
                scope,
                ev.rank,
                ev.wall_us,
                ev.seq,
                ev.args[0],
                ev.args[1],
                ev.args[2],
                ev.args[3],
            );
        }
        s.push_str("\n]}\n");
        s
    }

    /// Per-category aggregation tables.
    pub fn aggregate(&self) -> TraceAggregate {
        let mut agg = TraceAggregate::default();
        for ev in &self.events {
            if ev.phase != Phase::End {
                *agg.counts.entry(ev.id).or_insert(0) += 1;
            }
            match ev.id {
                EventId::CollMsg => {
                    let t = agg.coll.entry(ev.args[0]).or_default();
                    t.messages += 1;
                    t.bytes += ev.args[1];
                }
                EventId::CollClone => agg.coll.entry(ev.args[0]).or_default().clones += ev.args[1],
                EventId::CollAlloc => agg.coll.entry(ev.args[0]).or_default().allocs += ev.args[1],
                EventId::OpError if ev.phase != Phase::End => {
                    *agg.errors.entry(ev.args[0]).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        agg
    }

    /// Human-readable aggregation summary (the example prints this).
    pub fn summary_table(&self) -> String {
        let agg = self.aggregate();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} events across {} ranks ({} dropped)",
            self.events.len(),
            self.nranks,
            self.dropped
        );
        let _ = writeln!(s, "{:<16} {:<12} {:>10}", "event", "category", "count");
        for (id, n) in &agg.counts {
            let _ = writeln!(s, "{:<16} {:<12} {:>10}", id.name(), id.category(), n);
        }
        if !agg.coll.is_empty() {
            let _ = writeln!(
                s,
                "{:<8} {:>10} {:>12} {:>8} {:>8}",
                "coll op", "msgs", "bytes", "clones", "allocs"
            );
            for (op, t) in &agg.coll {
                let _ = writeln!(
                    s,
                    "{:<8} {:>10} {:>12} {:>8} {:>8}",
                    op, t.messages, t.bytes, t.clones, t.allocs
                );
            }
        }
        s
    }
}

/// Per-collective-op totals reconstructed from trace events — compared
/// against `WorldStats` counters by the cross-check tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollTotals {
    /// Point-to-point messages ([`EventId::CollMsg`] count).
    pub messages: u64,
    /// Payload bytes moved (sum of `CollMsg` args\[1\]).
    pub bytes: u64,
    /// Payload deep-clones (sum of `CollClone` args\[1\]).
    pub clones: u64,
    /// Payload allocations (sum of `CollAlloc` args\[1\]).
    pub allocs: u64,
}

/// Aggregation tables over a [`RunTrace`].
#[derive(Debug, Clone, Default)]
pub struct TraceAggregate {
    /// Occurrences per event id (Begin + Instant; End phases not counted).
    pub counts: BTreeMap<EventId, u64>,
    /// Per-collective-op totals, keyed by the runtime's op code (args\[0\]).
    pub coll: BTreeMap<u64, CollTotals>,
    /// OpError occurrences keyed by error code (args\[0\]).
    pub errors: BTreeMap<u64, u64>,
}

impl TraceAggregate {
    /// Occurrences of `id` (0 if absent).
    pub fn count(&self, id: EventId) -> u64 {
        self.counts.get(&id).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        assert!(!tracing_enabled());
        emit_instant(EventId::MailboxPost, [1, 2, 3, 4]); // must not panic or record
    }

    #[test]
    fn record_merge_digest_roundtrip() {
        let collector = TraceCollector::new(2);
        assert!(tracing_enabled());
        for r in 0..2 {
            let h = collector.handle(r);
            let _g = h.install();
            emit_instant(EventId::MailboxPost, [r as u64, 7, 0, 0]);
            let mut sp = span(EventId::Collective, [1, 2, 1024, 4]);
            sp.set_end([1, 4, 0, 0]);
            drop(sp);
        }
        let trace = collector.finish();
        assert_eq!(trace.events.len(), 6);
        // Merged order is (rank, seq).
        for w in trace.events.windows(2) {
            assert!((w[0].rank, w[0].seq) < (w[1].rank, w[1].seq));
        }
        let agg = trace.aggregate();
        assert_eq!(agg.count(EventId::MailboxPost), 2);
        assert_eq!(agg.count(EventId::Collective), 2);
        // Digest is stable and ignores wall time.
        let mut other = trace.clone();
        for ev in &mut other.events {
            ev.wall_us += 12345;
        }
        assert_eq!(trace.digest_hex(), other.digest_hex());
        // …and ignores physically-raced events (clone attribution, wildcard
        // matches, timeout polls) plus the seq shifts they cause.
        other.events.insert(
            0,
            TraceEvent {
                rank: 0,
                seq: 0,
                id: EventId::CollClone,
                phase: Phase::Instant,
                wall_us: 0,
                args: [4, 1, 0, 0],
            },
        );
        for (i, ev) in other.events.iter_mut().enumerate() {
            ev.seq = 1000 + i as u64;
        }
        assert_eq!(trace.digest_hex(), other.digest_hex());
        // The Chrome export parses as the right shape.
        let json = trace.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn span_guard_closes_on_early_exit() {
        let collector = TraceCollector::new(1);
        let h = collector.handle(0);
        let _g = h.install();
        fn body() -> Result<(), ()> {
            let _sp = span(EventId::ScheduleBuild, [0; 4]);
            Err(())? // early return: the guard must still emit End
        }
        let _ = body();
        let trace = collector.finish();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[1].phase, Phase::End);
    }

    #[test]
    fn event_ids_are_stable() {
        // These values are the golden-trace wire format: a change here
        // invalidates every committed digest on purpose.
        assert_eq!(EventId::ScheduleBuild as u16, 1);
        assert_eq!(EventId::FaultInject as u16, 18);
        assert_eq!(EventId::Revoke as u16, 19);
        assert_eq!(EventId::Rollback as u16, 24);
        assert_eq!(EventId::RmaExpose as u16, 35);
        assert_eq!(EventId::Expand as u16, 39);
        assert_eq!(EventId::WireZombie as u16, 40);
        assert_eq!(EventId::WireJoin as u16, 41);
        for id in ALL_EVENT_IDS {
            assert_eq!(EventId::from_u16(id as u16), Some(id));
        }
        assert_eq!(EventId::from_u16(999), None);
    }
}
