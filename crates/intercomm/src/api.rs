//! The import/export coupling API.
//!
//! "Programs only express potential data transfers with import and export
//! calls, thereby freeing each program (component) developer from having to
//! know in advance the communication patterns of its potential partners.
//! The actual data transfers take place based on coordination rules …
//! separation of control issues from data transfers enables InterComm to
//! potentially hide the cost of data transfers behind other program
//! activities." (paper §4.4)
//!
//! * The **exporter** calls [`Exporter::export`] each time-step: the
//!   version is buffered (bounded window) and any queued import requests
//!   that have become decidable are answered — so transfers overlap the
//!   exporter's simulation instead of blocking it.
//! * The **importer** calls [`Importer::import`] with a request timestamp;
//!   the shared [`MatchRule`] decides which exported version it receives.

use std::collections::VecDeque;

use mxn_dad::{Dad, LocalArray};
use mxn_runtime::{InterComm, MsgSize, Result, Src};
use mxn_schedule::RegionSchedule;

use crate::rules::{MatchDecision, MatchRule};

const IMP_REQ_TAG: i32 = 0x4943; // "IC"
const IMP_RESP_TAG: i32 = 0x4944;
const IMP_DATA_TAG: i32 = 0x4945;

/// Importer → exporter: "I want the version matching time `t`".
struct ImportReq {
    t: f64,
}

impl MsgSize for ImportReq {
    fn msg_size(&self) -> usize {
        8
    }
}

/// Exporter → importer: the decision header (data follows separately when
/// matched and this exporter rank is a schedule partner).
struct ImportResp {
    /// `Some(version)` when matched; `None` for a final no-match.
    matched: Option<f64>,
}

impl MsgSize for ImportResp {
    fn msg_size(&self) -> usize {
        9
    }
}

/// What an import call produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImportOutcome {
    /// Data arrived; it is the exported version with this timestamp.
    Fulfilled {
        /// Timestamp of the version received.
        version: f64,
    },
    /// The rule decided no exported version satisfies the request.
    NoMatch,
}

/// Counters describing an exporter rank's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExportStats {
    /// Versions exported (buffered).
    pub exports: u64,
    /// Import requests answered with data.
    pub transfers: u64,
    /// Import requests answered with a final no-match.
    pub no_matches: u64,
    /// Versions dropped by the bounded buffer.
    pub evictions: u64,
}

struct PendingRequest {
    importer: usize,
    t: f64,
}

/// The exporting side of one coupled field, per rank.
pub struct Exporter {
    dad: Dad,
    rule: MatchRule,
    /// `(timestamp, snapshot)`, ascending time, bounded length.
    buffer: VecDeque<(f64, LocalArray<f64>)>,
    capacity: usize,
    frontier: f64,
    pending: Vec<PendingRequest>,
    schedule: Option<RegionSchedule>,
    peer_dad: Dad,
    my_rank: usize,
    stats: ExportStats,
}

impl Exporter {
    /// Creates an exporter for a field distributed as `dad` on this side
    /// and as `peer_dad` on the importing side, keeping at most `capacity`
    /// buffered versions. The `rule` must equal the importers' rule.
    pub fn new(dad: Dad, peer_dad: Dad, my_rank: usize, rule: MatchRule, capacity: usize) -> Self {
        assert!(capacity > 0, "version buffer needs capacity");
        assert!(dad.conforms(&peer_dad), "export/import descriptors must conform");
        Exporter {
            schedule: Some(RegionSchedule::for_sender(&dad, &peer_dad, my_rank)),
            dad,
            peer_dad,
            rule,
            buffer: VecDeque::new(),
            capacity,
            frontier: f64::NEG_INFINITY,
            pending: Vec::new(),
            my_rank,
            stats: ExportStats::default(),
        }
    }

    /// This rank's activity counters.
    pub fn stats(&self) -> ExportStats {
        self.stats
    }

    /// Timestamps currently buffered, ascending.
    pub fn buffered_versions(&self) -> Vec<f64> {
        self.buffer.iter().map(|(t, _)| *t).collect()
    }

    /// Exports the field at time `t` (strictly increasing across calls):
    /// snapshots the data, then answers every queued request that has
    /// become decidable.
    pub fn export(&mut self, ic: &InterComm, t: f64, data: &LocalArray<f64>) -> Result<()> {
        assert!(t > self.frontier, "export times must be strictly increasing");
        self.frontier = t;
        self.buffer.push_back((t, data.clone()));
        self.stats.exports += 1;
        if self.buffer.len() > self.capacity {
            self.buffer.pop_front();
            self.stats.evictions += 1;
        }
        self.drain_requests(ic)?;
        self.answer_decidable(ic)
    }

    /// Declares the export stream finished: all remaining and future
    /// requests are decided against the final buffer.
    pub fn close(&mut self, ic: &InterComm) -> Result<()> {
        self.frontier = f64::INFINITY;
        self.drain_requests(ic)?;
        self.answer_decidable(ic)
    }

    /// Services requests until `total` of them (over the exporter's whole
    /// lifetime) have been answered — the post-`close` serving loop.
    /// Returns immediately if that many were already answered.
    pub fn serve_until_answered(&mut self, ic: &InterComm, total: u64) -> Result<()> {
        assert!(self.frontier.is_infinite(), "close the exporter before the serving loop");
        while self.stats.transfers + self.stats.no_matches < total {
            let (req, info) = ic.recv_with_info::<ImportReq>(Src::Any, IMP_REQ_TAG)?;
            self.pending.push(PendingRequest { importer: info.src, t: req.t });
            self.answer_decidable(ic)?;
        }
        Ok(())
    }

    fn drain_requests(&mut self, ic: &InterComm) -> Result<()> {
        while let Some((req, info)) = ic.try_recv::<ImportReq>(Src::Any, IMP_REQ_TAG)? {
            self.pending.push(PendingRequest { importer: info.src, t: req.t });
        }
        Ok(())
    }

    fn answer_decidable(&mut self, ic: &InterComm) -> Result<()> {
        let versions: Vec<f64> = self.buffer.iter().map(|(t, _)| *t).collect();
        let mut remaining = Vec::new();
        for req in self.pending.drain(..) {
            match self.rule.decide(&versions, self.frontier, req.t) {
                MatchDecision::Pending => remaining.push(req),
                MatchDecision::NoMatch => {
                    self.stats.no_matches += 1;
                    ic.send(req.importer, IMP_RESP_TAG, ImportResp { matched: None })?;
                }
                MatchDecision::Matched { version } => {
                    // Decisions are made over the *buffered* versions, so a
                    // match always has its snapshot (evicted versions were
                    // never candidates — they surface as NoMatch instead).
                    let data = self
                        .buffer
                        .iter()
                        .find(|(t, _)| *t == version)
                        .map(|(_, d)| d.clone())
                        .expect("matched version is buffered");
                    self.stats.transfers += 1;
                    ic.send(req.importer, IMP_RESP_TAG, ImportResp { matched: Some(version) })?;
                    // Pairwise data only to this importer, per the
                    // precomputed schedule.
                    let sched = self.schedule.as_ref().expect("schedule built at new");
                    for pair in sched.pairs() {
                        if pair.peer == req.importer {
                            let mut buf = Vec::with_capacity(pair.elements());
                            for region in &pair.regions {
                                buf.extend(data.pack_region(region));
                            }
                            ic.send(req.importer, IMP_DATA_TAG, buf)?;
                        }
                    }
                }
            }
        }
        self.pending = remaining;
        Ok(())
    }

    /// The export-side descriptor.
    pub fn dad(&self) -> &Dad {
        &self.dad
    }

    /// The import-side descriptor.
    pub fn peer_dad(&self) -> &Dad {
        &self.peer_dad
    }

    /// The rank this exporter serves.
    pub fn rank(&self) -> usize {
        self.my_rank
    }
}

/// The importing side of one coupled field, per rank.
pub struct Importer {
    schedule: RegionSchedule,
    rule: MatchRule,
    imports: u64,
}

impl Importer {
    /// Creates an importer; `peer_dad` is the exporting side's descriptor.
    pub fn new(dad: &Dad, peer_dad: &Dad, my_rank: usize, rule: MatchRule) -> Self {
        Importer {
            schedule: RegionSchedule::for_receiver(peer_dad, dad, my_rank),
            rule,
            imports: 0,
        }
    }

    /// The matching rule in force.
    pub fn rule(&self) -> MatchRule {
        self.rule
    }

    /// Number of import calls made.
    pub fn imports(&self) -> u64 {
        self.imports
    }

    /// Requests the version matching time `t`; blocks until the rule
    /// decides, then fills `dst` if matched.
    pub fn import(
        &mut self,
        ic: &InterComm,
        t: f64,
        dst: &mut LocalArray<f64>,
    ) -> Result<ImportOutcome> {
        self.imports += 1;
        // Ask every exporter rank (each buffers only its own portion).
        for x in 0..ic.remote_size() {
            ic.send(x, IMP_REQ_TAG, ImportReq { t })?;
        }
        // Every exporter answers with a header; schedule partners attach
        // data. All headers carry the same decision (same rule, same
        // collective version history).
        let mut outcome = None;
        for x in 0..ic.remote_size() {
            let resp: ImportResp = ic.recv(x, IMP_RESP_TAG)?;
            let this = match resp.matched {
                Some(v) => ImportOutcome::Fulfilled { version: v },
                None => ImportOutcome::NoMatch,
            };
            if let Some(prev) = outcome {
                debug_assert_eq!(prev, this, "exporters agree on the decision");
            }
            outcome = Some(this);
            if resp.matched.is_some() {
                // Receive pairwise data if exporter x is a partner.
                for pair in self.schedule.pairs() {
                    if pair.peer == x {
                        let data: Vec<f64> = ic.recv(x, IMP_DATA_TAG)?;
                        let mut cursor = 0;
                        for region in &pair.regions {
                            dst.unpack_region(region, &data[cursor..cursor + region.len()]);
                            cursor += region.len();
                        }
                    }
                }
            }
        }
        Ok(outcome.expect("at least one exporter rank"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::Universe;

    fn dads() -> (Dad, Dad) {
        (
            Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap(),
            Dad::block(Extents::new([4, 4]), &[1, 2]).unwrap(),
        )
    }

    fn field(dad: &Dad, rank: usize, t: f64) -> LocalArray<f64> {
        LocalArray::from_fn(dad, rank, |idx| (idx[0] * 4 + idx[1]) as f64 + t * 1000.0)
    }

    #[test]
    fn lower_bound_coupling_over_time() {
        Universe::run(&[2, 2], |_, ctx| {
            let (xd, md) = dads();
            let rule = MatchRule::LowerBound;
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let rank = ctx.comm.rank();
                let mut ex = Exporter::new(xd.clone(), md.clone(), rank, rule, 16);
                for step in 0..5 {
                    let t = step as f64;
                    ex.export(ic, t, &field(&xd, rank, t)).unwrap();
                }
                ex.close(ic).unwrap();
                // 2 importer ranks × 2 imports each = 4 answers owed.
                ex.serve_until_answered(ic, 4).unwrap();
                assert_eq!(ex.stats().exports, 5);
            } else {
                let ic = ctx.intercomm(0);
                let rank = ctx.comm.rank();
                let mut im = Importer::new(&md, &xd, rank, rule);
                let mut dst: LocalArray<f64> = LocalArray::allocate(&md, rank);
                // Request 2.5 → version 2.0.
                let out = im.import(ic, 2.5, &mut dst).unwrap();
                assert_eq!(out, ImportOutcome::Fulfilled { version: 2.0 });
                for (idx, &v) in dst.iter() {
                    assert_eq!(v, (idx[0] * 4 + idx[1]) as f64 + 2000.0);
                }
                // Request 100 after close → newest = 4.0.
                let out = im.import(ic, 100.0, &mut dst).unwrap();
                assert_eq!(out, ImportOutcome::Fulfilled { version: 4.0 });
            }
        });
    }

    #[test]
    fn exact_rule_no_match_is_final() {
        Universe::run(&[1, 1], |_, ctx| {
            let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ex = Exporter::new(dad.clone(), dad.clone(), 0, MatchRule::Exact, 8);
                for step in [0.0, 2.0, 4.0] {
                    ex.export(ic, step, &field2(&dad, step)).unwrap();
                }
                ex.close(ic).unwrap();
                ex.serve_until_answered(ic, 2).unwrap();
                assert_eq!(ex.stats().no_matches, 1);
                assert_eq!(ex.stats().transfers, 1);
            } else {
                let ic = ctx.intercomm(0);
                let mut im = Importer::new(&dad, &dad, 0, MatchRule::Exact);
                let mut dst: LocalArray<f64> = LocalArray::allocate(&dad, 0);
                assert_eq!(
                    im.import(ic, 2.0, &mut dst).unwrap(),
                    ImportOutcome::Fulfilled { version: 2.0 }
                );
                assert_eq!(im.import(ic, 3.0, &mut dst).unwrap(), ImportOutcome::NoMatch);
            }
            fn field2(dad: &Dad, t: f64) -> LocalArray<f64> {
                LocalArray::from_fn(dad, 0, |idx| idx[0] as f64 + t)
            }
        });
    }

    #[test]
    fn pending_request_fulfilled_by_later_export() {
        // The importer asks for a time the exporter hasn't reached yet; the
        // answer arrives when the exporter's frontier passes it — transfers
        // overlap the exporter's stepping.
        Universe::run(&[1, 1], |_, ctx| {
            let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
            let rule = MatchRule::UpperBound;
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ex = Exporter::new(dad.clone(), dad.clone(), 0, rule, 8);
                for step in 0..6 {
                    // Simulate compute time so the request queues mid-run.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    let t = step as f64;
                    let data = LocalArray::from_fn(&dad, 0, |idx| idx[0] as f64 * t);
                    ex.export(ic, t, &data).unwrap();
                }
                ex.close(ic).unwrap();
                // Covers the (unlikely) case where the request arrives
                // after close's drain; no-op when already answered.
                ex.serve_until_answered(ic, 1).unwrap();
            } else {
                let ic = ctx.intercomm(0);
                let mut im = Importer::new(&dad, &dad, 0, rule);
                let mut dst: LocalArray<f64> = LocalArray::allocate(&dad, 0);
                let out = im.import(ic, 3.0, &mut dst).unwrap();
                assert_eq!(out, ImportOutcome::Fulfilled { version: 3.0 });
                assert_eq!(*dst.get(&[2]).unwrap(), 6.0);
            }
        });
    }

    #[test]
    fn eviction_turns_match_into_no_match() {
        Universe::run(&[1, 1], |_, ctx| {
            let dad = Dad::block(Extents::new([2]), &[1]).unwrap();
            let rule = MatchRule::LowerBound;
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                // Tiny buffer: only the 2 newest versions survive.
                let mut ex = Exporter::new(dad.clone(), dad.clone(), 0, rule, 2);
                for step in 0..5 {
                    let data = LocalArray::from_fn(&dad, 0, |_| step as f64);
                    ex.export(ic, step as f64, &data).unwrap();
                }
                ex.close(ic).unwrap();
                // Only now let the importer ask, so version 1.0 is
                // deterministically evicted before the request arrives.
                ic.send(0, 0x70, ()).unwrap();
                ex.serve_until_answered(ic, 1).unwrap();
                assert!(ex.stats().evictions >= 3);
            } else {
                let ic = ctx.intercomm(0);
                let mut im = Importer::new(&dad, &dad, 0, rule);
                let mut dst: LocalArray<f64> = LocalArray::allocate(&dad, 0);
                ic.recv::<()>(0, 0x70).unwrap();
                // Version 1.0 was evicted (buffer holds 3.0, 4.0).
                assert_eq!(im.import(ic, 1.0, &mut dst).unwrap(), ImportOutcome::NoMatch);
            }
        });
    }

    #[test]
    fn regular_interval_coupling_frequency() {
        // Components "coupled at a frequency of multiple time-steps".
        Universe::run(&[1, 1], |_, ctx| {
            let dad = Dad::block(Extents::new([2]), &[1]).unwrap();
            let rule = MatchRule::RegularInterval { start: 0.0, every: 2.0 };
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ex = Exporter::new(dad.clone(), dad.clone(), 0, rule, 16);
                for step in 0..6 {
                    let data = LocalArray::from_fn(&dad, 0, |_| step as f64);
                    ex.export(ic, step as f64, &data).unwrap();
                }
                ex.close(ic).unwrap();
                ex.serve_until_answered(ic, 3).unwrap();
            } else {
                let ic = ctx.intercomm(0);
                let mut im = Importer::new(&dad, &dad, 0, rule);
                let mut dst: LocalArray<f64> = LocalArray::allocate(&dad, 0);
                for (treq, want) in [(1.0, 0.0), (3.7, 2.0), (5.9, 4.0)] {
                    let out = im.import(ic, treq, &mut dst).unwrap();
                    assert_eq!(out, ImportOutcome::Fulfilled { version: want });
                    assert_eq!(*dst.get(&[0]).unwrap(), want);
                }
            }
        });
    }
}
