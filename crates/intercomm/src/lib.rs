//! # mxn-intercomm — the InterComm coupling framework
//!
//! The University of Maryland InterComm system of the paper's §4.4
//! (descendant of Meta-Chaos): efficient communication between coupled
//! parallel programs with complex array distributions, plus a *separate
//! coordination layer* deciding **when** transfers happen.
//!
//! * [`descriptor`] — replicated descriptors for block distributions vs
//!   **partitioned** elementwise owner tables for explicit distributions,
//!   with collective owner resolution.
//! * [`rules`] — timestamp matching criteria (exact, lower/upper bound,
//!   nearest-within-tolerance, regular-interval), as pure decidable logic.
//! * [`api`] — the import/export programming model: exporters publish
//!   versioned snapshots into a bounded buffer and answer requests as the
//!   rules become decidable, hiding transfer cost behind the exporting
//!   program's own stepping; importers block only until their rule decides.
//!
//! Reusable communication schedules come from `mxn-schedule` (shared with
//! the M×N component), reflecting that InterComm's transfer layer and the
//! CCA M×N component solve the same §2.3 problem.

pub mod api;
pub mod descriptor;
pub mod rules;

pub use api::{ExportStats, Exporter, ImportOutcome, Importer};
pub use descriptor::{ICDescriptor, PartitionedDescriptor};
pub use rules::{MatchDecision, MatchRule};
