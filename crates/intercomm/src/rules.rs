//! Timestamp matching rules.
//!
//! "The key idea for the coordination specification is the use of
//! timestamps to determine when a data transfer will occur, via various
//! types of matching criteria" (paper §4.4, after Wu & Sussman [41]).
//!
//! A rule decides, given the exporter's buffered version timestamps and an
//! import request timestamp, *which* exported version (if any) satisfies
//! the request — and, crucially for a live coupling, *when* that decision
//! becomes final (no later export could change it). The decision logic is
//! pure, so it is testable exhaustively and both sides of a coupling can
//! evaluate it independently and agree.

/// A timestamp matching criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchRule {
    /// The request time must exactly equal an exported version's time.
    Exact,
    /// Match the newest version at or before the request time.
    LowerBound,
    /// Match the oldest version at or after the request time.
    UpperBound,
    /// Match the version closest to the request time within `tol`.
    Nearest {
        /// Maximum |version − request| accepted.
        tol: f64,
    },
    /// Match the newest version at or before the request that falls on the
    /// regular grid `start + k·every` — the cadence used when components
    /// couple every few time-steps.
    RegularInterval {
        /// First grid point.
        start: f64,
        /// Grid spacing (> 0).
        every: f64,
    },
}

/// The outcome of evaluating a rule against the version buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchDecision {
    /// Cannot be decided yet: a future export could still produce (or
    /// improve) the match. The importer must wait.
    Pending,
    /// Final: this version satisfies the request.
    Matched {
        /// Timestamp of the matched version.
        version: f64,
    },
    /// Final: no version satisfies the request (and none ever will).
    NoMatch,
}

impl MatchRule {
    fn on_grid(&self, t: f64) -> bool {
        match *self {
            MatchRule::RegularInterval { start, every } => {
                let k = ((t - start) / every).round();
                (start + k * every - t).abs() < 1e-9 && t >= start - 1e-9
            }
            _ => true,
        }
    }

    /// Evaluates the rule. `versions` are the buffered export timestamps in
    /// ascending order; `frontier` is the newest time the exporter has
    /// reached (`f64::INFINITY` once the exporter has closed its stream).
    pub fn decide(&self, versions: &[f64], frontier: f64, request: f64) -> MatchDecision {
        debug_assert!(versions.windows(2).all(|w| w[0] < w[1]), "versions ascending");
        match *self {
            MatchRule::Exact => {
                if versions.contains(&request) {
                    MatchDecision::Matched { version: request }
                } else if frontier >= request {
                    MatchDecision::NoMatch
                } else {
                    MatchDecision::Pending
                }
            }
            MatchRule::LowerBound => {
                if frontier < request {
                    // A better (newer ≤ request) version may still arrive.
                    MatchDecision::Pending
                } else {
                    match versions.iter().rev().find(|&&v| v <= request) {
                        Some(&v) => MatchDecision::Matched { version: v },
                        None => MatchDecision::NoMatch,
                    }
                }
            }
            MatchRule::UpperBound => {
                // The first version ≥ request is final the moment it exists.
                match versions.iter().find(|&&v| v >= request) {
                    Some(&v) => MatchDecision::Matched { version: v },
                    None if frontier.is_infinite() => MatchDecision::NoMatch,
                    None => MatchDecision::Pending,
                }
            }
            MatchRule::Nearest { tol } => {
                let best =
                    versions.iter().copied().filter(|v| (v - request).abs() <= tol).min_by(
                        |a, b| (a - request).abs().partial_cmp(&(b - request).abs()).unwrap(),
                    );
                match best {
                    // An exact hit cannot be improved.
                    Some(v) if v == request => MatchDecision::Matched { version: v },
                    // Otherwise final only once no closer version can arrive.
                    Some(v) if frontier >= request + tol => MatchDecision::Matched { version: v },
                    None if frontier >= request + tol => MatchDecision::NoMatch,
                    _ => MatchDecision::Pending,
                }
            }
            MatchRule::RegularInterval { .. } => {
                if frontier < request {
                    MatchDecision::Pending
                } else {
                    match versions.iter().rev().find(|&&v| v <= request && self.on_grid(v)) {
                        Some(&v) => MatchDecision::Matched { version: v },
                        None => MatchDecision::NoMatch,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: &[f64] = &[0.0, 1.0, 2.0, 3.0];

    #[test]
    fn exact_matches_and_rejects() {
        assert_eq!(MatchRule::Exact.decide(V, 3.0, 2.0), MatchDecision::Matched { version: 2.0 });
        assert_eq!(MatchRule::Exact.decide(V, 3.0, 2.5), MatchDecision::NoMatch);
        assert_eq!(MatchRule::Exact.decide(V, 3.0, 4.0), MatchDecision::Pending);
        assert_eq!(MatchRule::Exact.decide(V, f64::INFINITY, 4.0), MatchDecision::NoMatch);
    }

    #[test]
    fn lower_bound_waits_for_frontier() {
        let r = MatchRule::LowerBound;
        // Frontier hasn't reached the request: a newer v ≤ 2.5 could come.
        assert_eq!(r.decide(V, 2.0, 2.5), MatchDecision::Pending);
        assert_eq!(r.decide(V, 2.5, 2.5), MatchDecision::Matched { version: 2.0 });
        assert_eq!(r.decide(V, 3.0, 10.0), MatchDecision::Pending);
        assert_eq!(r.decide(V, f64::INFINITY, 10.0), MatchDecision::Matched { version: 3.0 });
        assert_eq!(r.decide(&[2.0], 5.0, 1.0), MatchDecision::NoMatch);
    }

    #[test]
    fn upper_bound_matches_as_soon_as_available() {
        let r = MatchRule::UpperBound;
        assert_eq!(r.decide(V, 3.0, 1.5), MatchDecision::Matched { version: 2.0 });
        assert_eq!(r.decide(V, 3.0, 3.5), MatchDecision::Pending);
        assert_eq!(r.decide(V, f64::INFINITY, 3.5), MatchDecision::NoMatch);
        // Exact frontier hit.
        assert_eq!(r.decide(V, 3.0, 3.0), MatchDecision::Matched { version: 3.0 });
    }

    #[test]
    fn nearest_respects_tolerance_and_finality() {
        let r = MatchRule::Nearest { tol: 0.4 };
        // 2.3 → nearest in [1.9, 2.7] is 2.0, final once frontier ≥ 2.7.
        assert_eq!(r.decide(V, 2.5, 2.3), MatchDecision::Pending);
        assert_eq!(r.decide(V, 2.7, 2.3), MatchDecision::Matched { version: 2.0 });
        // Exact hit decides immediately.
        assert_eq!(r.decide(V, 2.0, 2.0), MatchDecision::Matched { version: 2.0 });
        // Outside tolerance everywhere.
        assert_eq!(r.decide(&[0.0], 10.0, 5.0), MatchDecision::NoMatch);
    }

    #[test]
    fn nearest_prefers_closest_side() {
        let r = MatchRule::Nearest { tol: 1.0 };
        assert_eq!(r.decide(V, 10.0, 2.4), MatchDecision::Matched { version: 2.0 });
        assert_eq!(r.decide(V, 10.0, 2.6), MatchDecision::Matched { version: 3.0 });
    }

    #[test]
    fn regular_interval_snaps_to_grid() {
        let r = MatchRule::RegularInterval { start: 0.0, every: 2.0 };
        let v = &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        // Request 5.0 → newest grid version ≤ 5.0 is 4.0.
        assert_eq!(r.decide(v, 5.0, 5.0), MatchDecision::Matched { version: 4.0 });
        // Off-grid versions are ignored even when newer.
        assert_eq!(r.decide(&[0.0, 3.0], 5.0, 5.0), MatchDecision::Matched { version: 0.0 });
        assert_eq!(r.decide(&[1.0, 3.0], 5.0, 5.0), MatchDecision::NoMatch);
        assert_eq!(r.decide(v, 4.0, 5.0), MatchDecision::Pending);
    }

    #[test]
    fn empty_buffer_cases() {
        assert_eq!(MatchRule::Exact.decide(&[], 0.0, 1.0), MatchDecision::Pending);
        assert_eq!(MatchRule::LowerBound.decide(&[], f64::INFINITY, 1.0), MatchDecision::NoMatch);
        assert_eq!(MatchRule::UpperBound.decide(&[], 5.0, 1.0), MatchDecision::Pending);
    }
}
