//! Replicated vs partitioned array descriptors.
//!
//! "For block distributions, the data structure required to describe the
//! distribution is relatively small, so can be replicated on each of the
//! processes … For explicit distributions, there is a one-to-one
//! correspondence between the elements of the array and the number of
//! entries in the data descriptor, therefore, the descriptor itself is
//! rather large and **must be partitioned** across the participating
//! processes." (paper §4.4)
//!
//! [`PartitionedDescriptor`] shards the element→owner table over the
//! program's ranks by linearized index range; non-local ownership queries
//! are resolved collectively with an all-to-all exchange.

use mxn_dad::{Dad, Extents};
use mxn_runtime::{Comm, Result, RuntimeError};

/// A descriptor in InterComm's two flavours.
pub enum ICDescriptor {
    /// Small block-family descriptor, replicated everywhere.
    Replicated(Dad),
    /// Elementwise owner table, sharded across ranks.
    Partitioned(PartitionedDescriptor),
}

impl ICDescriptor {
    /// Bytes of descriptor storage held by *this* rank.
    pub fn local_bytes(&self) -> usize {
        match self {
            ICDescriptor::Replicated(d) => d.descriptor_bytes(),
            ICDescriptor::Partitioned(p) => p.shard_bytes(),
        }
    }
}

/// One rank's shard of an elementwise owner table.
pub struct PartitionedDescriptor {
    extents: Extents,
    nranks: usize,
    chunk: usize,
    shard_start: usize,
    /// Owners of linear positions `shard_start .. shard_start+shard.len()`.
    shard: Vec<usize>,
}

impl PartitionedDescriptor {
    /// Builds this rank's shard from an owner function over linear
    /// positions (row-major). `owner_of` must be identical on all ranks.
    pub fn build(
        extents: Extents,
        nranks: usize,
        my_rank: usize,
        owner_of: impl Fn(usize) -> usize,
    ) -> Self {
        assert!(nranks > 0 && my_rank < nranks);
        let total = extents.total();
        let chunk = total.div_ceil(nranks).max(1);
        let shard_start = (my_rank * chunk).min(total);
        let shard_end = ((my_rank + 1) * chunk).min(total);
        let shard = (shard_start..shard_end).map(&owner_of).collect();
        PartitionedDescriptor { extents, nranks, chunk, shard_start, shard }
    }

    /// The global array extents.
    pub fn extents(&self) -> &Extents {
        &self.extents
    }

    /// Rank holding the table entry for linear position `pos`.
    pub fn table_home(&self, pos: usize) -> usize {
        (pos / self.chunk).min(self.nranks - 1)
    }

    /// Owner of `pos` if its table entry lives on this rank.
    pub fn local_owner(&self, pos: usize) -> Option<usize> {
        pos.checked_sub(self.shard_start).and_then(|off| self.shard.get(off).copied())
    }

    /// Bytes of table shard held by this rank — ≈ `total / nranks`
    /// entries, versus `total` entries for a replicated elementwise table.
    pub fn shard_bytes(&self) -> usize {
        self.shard.len() * std::mem::size_of::<usize>()
    }

    /// Collectively resolves the owners of arbitrary linear positions.
    /// Every rank of `comm` must participate (it may pass an empty query
    /// list). Returns owners in query order.
    pub fn resolve_owners(&self, comm: &Comm, queries: &[usize]) -> Result<Vec<usize>> {
        let p = comm.size();
        if p != self.nranks {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("descriptor sharded over {} ranks, comm has {p}", self.nranks),
            });
        }
        // Route each query to its table home, remembering positions.
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); p];
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (i, &q) in queries.iter().enumerate() {
            let home = self.table_home(q);
            outgoing[home].push(q);
            slots[home].push(i);
        }
        let received = comm.alltoallv(outgoing)?;
        // Answer what we were asked.
        let answers: Vec<Vec<usize>> = received
            .into_iter()
            .map(|qs| {
                qs.into_iter()
                    .map(|q| self.local_owner(q).expect("query routed to its table home"))
                    .collect()
            })
            .collect();
        let replies = comm.alltoallv(answers)?;
        // Scatter replies back into query order.
        let mut out = vec![0usize; queries.len()];
        for (home, reply) in replies.into_iter().enumerate() {
            for (k, owner) in reply.into_iter().enumerate() {
                out[slots[home][k]] = owner;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Region;
    use mxn_runtime::World;

    /// A scattered explicit-style ownership: owner = (pos * 7 + 3) % nranks.
    fn owner_fn(nranks: usize) -> impl Fn(usize) -> usize {
        move |pos| (pos * 7 + 3) % nranks
    }

    #[test]
    fn shards_partition_the_table() {
        let e = Extents::new([10, 10]);
        let nranks = 4;
        let mut covered = [false; 100];
        let mut total_bytes = 0;
        for r in 0..nranks {
            let d = PartitionedDescriptor::build(e.clone(), nranks, r, owner_fn(nranks));
            total_bytes += d.shard_bytes();
            for (pos, cov) in covered.iter_mut().enumerate() {
                if let Some(o) = d.local_owner(pos) {
                    assert!(!*cov, "entry {pos} sharded twice");
                    *cov = true;
                    assert_eq!(o, owner_fn(nranks)(pos));
                    assert_eq!(d.table_home(pos), r);
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
        // Sharded total equals one replicated table.
        assert_eq!(total_bytes, 100 * std::mem::size_of::<usize>());
    }

    #[test]
    fn partitioned_is_cheaper_per_rank_than_replicated_explicit() {
        let e = Extents::new([32, 32]);
        let nranks = 8;
        let part = PartitionedDescriptor::build(e.clone(), nranks, 0, owner_fn(nranks));
        // A replicated explicit descriptor stores one patch per element in
        // the worst (fully scattered) case.
        let scattered: Vec<(Region, usize)> = e
            .iter()
            .map(|idx| {
                let hi: Vec<usize> = idx.iter().map(|&i| i + 1).collect();
                (Region::new(idx.clone(), hi), owner_fn(nranks)(e.linear(&idx)))
            })
            .collect();
        let replicated = Dad::explicit(mxn_dad::ExplicitDist::new(e, scattered, nranks).unwrap());
        let rep = ICDescriptor::Replicated(replicated);
        let part = ICDescriptor::Partitioned(part);
        assert!(
            part.local_bytes() * 4 < rep.local_bytes(),
            "sharded table ({}) ≪ replicated table ({})",
            part.local_bytes(),
            rep.local_bytes()
        );
    }

    #[test]
    fn collective_owner_resolution() {
        World::run(4, |p| {
            let comm = p.world();
            let e = Extents::new([8, 8]);
            let d = PartitionedDescriptor::build(e, 4, comm.rank(), owner_fn(4));
            // Each rank asks about a strided set of positions.
            let queries: Vec<usize> = (comm.rank()..64).step_by(5).collect();
            let owners = d.resolve_owners(comm, &queries).unwrap();
            for (q, o) in queries.iter().zip(&owners) {
                assert_eq!(*o, owner_fn(4)(*q), "position {q}");
            }
        });
    }

    #[test]
    fn empty_queries_still_participate() {
        World::run(3, |p| {
            let comm = p.world();
            let d = PartitionedDescriptor::build(Extents::new([9]), 3, comm.rank(), owner_fn(3));
            let queries: Vec<usize> = if comm.rank() == 0 { vec![0, 8, 4] } else { vec![] };
            let owners = d.resolve_owners(comm, &queries).unwrap();
            if comm.rank() == 0 {
                assert_eq!(owners.len(), 3);
            } else {
                assert!(owners.is_empty());
            }
        });
    }

    #[test]
    fn wrong_comm_size_rejected() {
        World::run(2, |p| {
            let comm = p.world();
            let d = PartitionedDescriptor::build(Extents::new([4]), 3, 0, owner_fn(3));
            assert!(d.resolve_owners(comm, &[0]).is_err());
        });
    }
}
