//! `mxn-wire`: the Unix-domain-socket transport for the M×N runtime.
//!
//! The in-proc runtime (`mxn-runtime`) models ranks as threads in one
//! address space: envelopes move by pointer, broadcasts share one `Arc`.
//! This crate is the other side of the [`mxn_runtime::Transport`] seam —
//! ranks as *real OS processes*, envelopes as length-prefixed CRC-checked
//! frames over Unix-domain sockets, and the paper's robustness story
//! (heartbeat liveness, bounded reconnect, survivor shrink) carried across
//! a wire that can actually fail.
//!
//! Layers, bottom to top:
//!
//! * [`crc`] — CRC-32 (the IEEE polynomial, table-driven, const-built).
//! * [`codec`] — [`codec::WireCodec`], byte serialization for payloads
//!   that cross a process boundary, plus the [`codec::CodecRegistry`]
//!   mapping `TypeId` ⇄ wire tag. `Payload::Shared` deliberately has no
//!   encoding: zero-clone sharing is an address-space concept.
//! * [`frame`] — `MxN1` framing: 40-byte header (own CRC) + payload
//!   (own CRC), resync-on-damage, never trusts a length the header CRC
//!   has not vouched for.
//! * [`fault`] — seeded frame-level fault injection (drop / bit-flip /
//!   delay) driven by the same `MXN_FAULT_SEED` × `MXN_FAULT_KIND`
//!   environment as the in-proc fault matrix.
//! * [`link`] — per-peer sequencing and the resend ring behind session
//!   resume; control frames ride outside the sequence space.
//! * [`node`] — [`node::WireNode`]: the mesh endpoint. Acceptor, reader
//!   and monitor threads; heartbeats feeding a [`mxn_runtime::Liveness`]
//!   registry; reconnect with seeded exponential backoff bounded at
//!   N attempts, after which the peer is *dead* and recovery proceeds
//!   exactly as for an in-proc rank death. Progress fences catch the
//!   failure heartbeats cannot — a *zombie* whose sockets stay open while
//!   its application is frozen — quarantining it (reversible) and
//!   evicting it (final) on frozen delivery watermarks. The membership is
//!   elastic up to `max_size`: a spare OS process joins at runtime via an
//!   offer/vote/commit handshake mirroring the membership plane's §4i
//!   protocol. [`node::UdsTransport`] is the `Transport` impl.
//! * [`mux`] — connection multiplexing over *one* UDS listener: the
//!   serving plane's wire front. Any number of client connections, each
//!   with a reader/writer thread pair, requests handed to a pluggable
//!   [`mux::MuxHandler`]; blocking the handler parks exactly one client.
//! * [`process`] — self re-exec helpers for multi-process tests and
//!   examples (spawn workers and spare joiners, kill-on-drop guards,
//!   `kill -9` / SIGSTOP / SIGCONT on demand).

pub mod codec;
pub mod crc;
pub mod fault;
pub mod frame;
pub mod link;
pub mod mux;
pub mod node;
pub mod process;

pub use codec::{decode_value, encode_value, CodecError, CodecRegistry, WireCodec};
pub use crc::crc32;
pub use fault::{WireFaults, WireVerdict};
pub use frame::{Frame, FrameError, FrameKind, FrameReader, HEADER_LEN, MAX_PAYLOAD};
pub use link::{LinkSender, RING_FRAMES};
pub use mux::{
    ConnId, MuxClient, MuxHandler, MuxReplier, MuxRequest, MuxResponse, MuxServer, MuxStatus,
    MUX_REQ_CODEC, MUX_RESP_CODEC,
};
pub use node::{
    UdsTransport, WireConfig, WireNode, WireStats, JOIN_OFFER_TAG, JOIN_REQ_TAG, JOIN_STATE_TAG,
    WIRE_CTRL_CONTEXT,
};
pub use process::{
    spawn_spare, spawn_worker, spawn_worker_max, wire_role, WireRole, WorkerGuard,
};
