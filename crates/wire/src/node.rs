//! A wire-transport node: one OS process's endpoint in a UDS mesh.
//!
//! Each of the `size` participants binds `dir/rank_<r>.sock` and the mesh
//! is completed by the *higher* rank dialing the lower — every pair gets
//! exactly one bidirectional stream. On top of that sit the robustness
//! layers, bottom to top:
//!
//! * **Framing + CRC** ([`crate::frame`]): damage is detected, reported as
//!   a `WireFrameCorrupt` trace event, surfaced to the blocked receiver as
//!   [`RuntimeError::Corrupt`] when the header was routable, and the
//!   stream resyncs.
//! * **Sequencing + session resume** ([`crate::link`]): data frames carry
//!   per-link sequence numbers; a reconnecting peer announces the highest
//!   one it saw (`Hello`) and the sender replays the missing tail from its
//!   ring, while the receiver's duplicate guard drops any overlap — at
//!   the link layer, disconnects lose nothing the ring still holds.
//! * **Heartbeats** : every link is beaconed; silence past the liveness
//!   deadline is a `HeartbeatMiss` and tears the link down for reconnect.
//! * **Bounded reconnect**: the dialing side retries with deterministic
//!   seeded exponential backoff (the fault plane's RNG via
//!   [`CallPolicy::retry_pause`]); when attempts exhaust — or, on the
//!   passive side, the reconnect window passes without a new `Hello` —
//!   the peer is *reported dead* in the same [`Liveness`] registry the
//!   in-proc runtime uses, every blocked receive wakes with
//!   [`RuntimeError::PeerDead`], and recovery proceeds exactly as for an
//!   in-proc rank death: agree on survivors, shrink, go on.
//!
//! The mailbox behind `recv` *is* `mxn_runtime::mailbox::Mailbox` — the
//! wire transport changes how envelopes arrive, not how they match.

use std::any::Any;
use std::io::{self, Read};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mxn_framework::CallPolicy;
use mxn_runtime::envelope::{Envelope, Payload, Src, Tag};
use mxn_runtime::fault::Liveness;
use mxn_runtime::mailbox::{Mailbox, PeerRef};
use mxn_runtime::membership::Revocations;
use mxn_runtime::{splitmix64, Result, RuntimeError, Transport};
use mxn_trace::{emit, emit_instant, EventId, Phase, TraceHandle};

use crate::codec::CodecRegistry;
use crate::fault::WireFaults;
use crate::frame::{Frame, FrameError, FrameKind, FrameReader};
use crate::link::LinkSender;

use std::os::unix::net::{UnixListener, UnixStream};

/// Context id reserved for the node's own control protocol (survivor
/// agreement and the spare-process join handshake); application traffic
/// must stay below it.
pub const WIRE_CTRL_CONTEXT: u32 = 0xffff_fff0;

/// Join handshake: newcomer → sponsor, "I am rank `payload` and wired in".
/// The join protocol owns the *negative* tag space on the control context;
/// survivor agreement uses tags ≥ 0, so the two planes never collide.
pub const JOIN_REQ_TAG: i32 = -1;
/// Join handshake: sponsor → incumbent, a serialized
/// [`JoinOffer`](mxn_runtime::JoinOffer).
pub const JOIN_OFFER_TAG: i32 = -2;
/// Join handshake: sponsor → newcomer, `[commit_flag, attempt(u32 LE),
/// state…]` — the replayed state blob on commit, the abort notice
/// otherwise.
pub const JOIN_STATE_TAG: i32 = -6;

/// Vote tag for join `attempt` (incumbent → sponsor). Salted per attempt
/// so a straggling vote from an aborted attempt can never satisfy a later
/// one.
fn join_vote_tag(attempt: u64) -> i32 {
    -100 - attempt as i32
}

/// Commit/abort tag for join `attempt` (sponsor → incumbent).
fn join_commit_tag(attempt: u64) -> i32 {
    -200 - attempt as i32
}

/// Configuration of one wire node.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Directory holding the per-rank socket files.
    pub dir: PathBuf,
    /// This process's global rank.
    pub rank: usize,
    /// Total participants in the mesh.
    pub size: usize,
    /// Interval between heartbeat frames on every live link.
    pub heartbeat: Duration,
    /// Silence beyond this is a heartbeat miss: the link is torn down and
    /// reconnect (or the passive reconnect window) begins.
    pub liveness_deadline: Duration,
    /// Reconnect attempts after the first (total dials = attempts + 1)
    /// before the peer is declared dead.
    pub reconnect_attempts: u32,
    /// Base reconnect backoff; doubles per attempt, jittered by `seed`.
    pub reconnect_backoff: Duration,
    /// How long `connect` waits for the full mesh at startup.
    pub connect_timeout: Duration,
    /// Seed for reconnect jitter (and anything else that must replay).
    pub seed: u64,
    /// Frame-layer fault injection policy.
    pub faults: WireFaults,
    /// Upper bound on mesh size. Peer tables are preallocated to this, so
    /// spare processes can join (rank `size`, `size+1`, …) without
    /// reallocating rank-indexed state. Defaults to `size` (no spares).
    pub max_size: usize,
    /// Interval between progress fences on every live link. Fences carry
    /// the delivered-sequence watermark that distinguishes a zombie
    /// (socket open, application frozen) from a healthy peer.
    pub fence_interval: Duration,
    /// Consecutive fence ticks a peer's watermark may stall — while we
    /// hold undelivered data for it — before it is quarantined.
    pub fence_stall_fences: u32,
    /// Reconnect-churn threshold: this many heartbeat-miss teardowns with
    /// no intact frame in between quarantines the peer even when no data
    /// is outstanding (the idle-zombie case: the kernel keeps accepting
    /// our dials on the stopped process's listener backlog).
    pub zombie_churn: u32,
    /// How long a quarantined peer may stay frozen before it is evicted
    /// for good. Resuming within the grace (watermark advances again)
    /// re-admits it; past the grace the verdict is final.
    pub quarantine_grace: Duration,
}

impl WireConfig {
    /// Defaults tuned for tests: sub-second failure detection.
    pub fn new(dir: impl Into<PathBuf>, rank: usize, size: usize) -> Self {
        WireConfig {
            dir: dir.into(),
            rank,
            size,
            heartbeat: Duration::from_millis(20),
            liveness_deadline: Duration::from_millis(250),
            reconnect_attempts: 4,
            reconnect_backoff: Duration::from_millis(25),
            connect_timeout: Duration::from_secs(10),
            seed: 1,
            faults: WireFaults::none(),
            max_size: size,
            fence_interval: Duration::from_millis(25),
            fence_stall_fences: 4,
            zombie_churn: 3,
            quarantine_grace: Duration::from_millis(1500),
        }
    }

    /// Socket path of `rank` under this configuration.
    pub fn sock_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("rank_{rank}.sock"))
    }

    /// The longest a passive side waits for a dialer to come back before
    /// declaring it dead: the dialer's full (un-jittered) backoff schedule
    /// plus one liveness deadline of slack.
    pub fn reconnect_window(&self) -> Duration {
        let mut total = Duration::ZERO;
        let mut base = self.reconnect_backoff;
        for _ in 0..=self.reconnect_attempts {
            total += base;
            base = base.saturating_mul(2);
        }
        total + self.liveness_deadline * 2
    }
}

/// Monotone wire-level counters (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Data frames handed to the link layer.
    pub frames_sent: u64,
    /// Data frames delivered into the mailbox.
    pub frames_received: u64,
    /// Frames rejected by CRC/framing checks.
    pub corrupt_frames: u64,
    /// Duplicate data frames suppressed by the resume guard.
    pub duplicates_dropped: u64,
    /// Reconnect dials attempted.
    pub reconnect_dials: u64,
    /// Heartbeat misses observed.
    pub heartbeat_misses: u64,
    /// Progress fences sent.
    pub fences_sent: u64,
    /// Peers quarantined as zombies (watermark stall or reconnect churn).
    pub zombies_quarantined: u64,
    /// Quarantined peers re-admitted after their watermark resumed.
    pub zombies_readmitted: u64,
    /// Quarantined peers evicted for good after the grace expired.
    pub zombies_evicted: u64,
    /// Spare-process joins committed (as sponsor, voter, or newcomer).
    pub joins_committed: u64,
    /// Join attempts aborted and rolled back.
    pub joins_aborted: u64,
}

#[derive(Default)]
struct StatsInner {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    corrupt_frames: AtomicU64,
    duplicates_dropped: AtomicU64,
    reconnect_dials: AtomicU64,
    heartbeat_misses: AtomicU64,
    fences_sent: AtomicU64,
    zombies_quarantined: AtomicU64,
    zombies_readmitted: AtomicU64,
    zombies_evicted: AtomicU64,
    joins_committed: AtomicU64,
    joins_aborted: AtomicU64,
}

/// Per-peer connection state. The `LinkSender` (sequencing, ring) persists
/// across socket generations; everything else is per-connection.
struct Peer {
    sender: Mutex<LinkSender>,
    /// Last time any intact frame arrived from this peer.
    last_heard: Mutex<Instant>,
    /// Last time we beaconed this peer.
    last_beat: Mutex<Instant>,
    /// When the link dropped; `None` while connected or never-connected.
    disconnected_at: Mutex<Option<Instant>>,
    /// Whether the link has ever been established (gates the monitor).
    ever_connected: AtomicBool,
    /// Bumped on every (re)attach; readers use it to tell whether the
    /// stream that failed is still the current one.
    generation: AtomicU64,
    /// Highest data seq received from this peer (duplicate guard + the
    /// value announced in our `Hello`s).
    last_recv_seq: AtomicU64,
    /// The peer's session id, to detect a restarted peer process.
    session: AtomicU64,
    /// A reconnect thread is in flight.
    reconnecting: AtomicBool,
    /// Last time we fenced this peer.
    last_fence: Mutex<Instant>,
    /// Our fence counter toward this peer.
    fence_seq: AtomicU64,
    /// Highest delivered-sequence watermark the peer has reported for
    /// *our* outbound stream (via its ProgressFence frames).
    peer_watermark: AtomicU64,
    /// Consecutive fence ticks the watermark stalled with data
    /// outstanding.
    stall_fences: AtomicU64,
    /// Heartbeat-miss teardowns since the last intact frame.
    churn: AtomicU64,
    /// The peer is quarantined: provisionally dead, frames dropped,
    /// awaiting either resumed progress (readmit) or the grace expiring
    /// (evict).
    quarantined: AtomicBool,
    /// The verdict is final: no readmission, no reconnect, ever.
    evicted: AtomicBool,
    /// When quarantine began (drives the eviction grace timer).
    quarantined_at: Mutex<Option<Instant>>,
}

impl Peer {
    fn new(src: u32, dst: u32, faults: WireFaults) -> Self {
        let now = Instant::now();
        Peer {
            sender: Mutex::new(LinkSender::new(src, dst, faults)),
            last_heard: Mutex::new(now),
            last_beat: Mutex::new(now),
            disconnected_at: Mutex::new(None),
            ever_connected: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            last_recv_seq: AtomicU64::new(0),
            session: AtomicU64::new(0),
            reconnecting: AtomicBool::new(false),
            last_fence: Mutex::new(now),
            fence_seq: AtomicU64::new(0),
            peer_watermark: AtomicU64::new(0),
            stall_fences: AtomicU64::new(0),
            churn: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            evicted: AtomicBool::new(false),
            quarantined_at: Mutex::new(None),
        }
    }
}

struct NodeShared {
    cfg: WireConfig,
    /// This process incarnation's session id (announced in `Hello`).
    session: u64,
    mailbox: Mailbox,
    liveness: Arc<Liveness>,
    registry: CodecRegistry,
    /// Preallocated to `cfg.max_size`; ranks in `cur_size..max_size` are
    /// parked spare slots.
    peers: Vec<Peer>,
    /// Current mesh size. Starts at `cfg.size`, grows when a spare-process
    /// join commits, shrinks back when an attempt is rescinded.
    cur_size: AtomicUsize,
    abort: Arc<AtomicBool>,
    shutdown: AtomicBool,
    stats: StatsInner,
    /// Recorder the node's internal threads install, so wire spans
    /// (connect/reconnect/corrupt/heartbeat-miss) land in Chrome traces.
    trace: Option<TraceHandle>,
}

impl NodeShared {
    /// Installs this node's trace recorder on the calling thread (no-op
    /// without one). Every internal thread calls this at entry.
    fn install_trace(&self) -> Option<mxn_trace::InstallGuard> {
        self.trace.as_ref().map(TraceHandle::install)
    }
    fn declare_dead(&self, peer: usize) {
        if self.liveness.kill(peer) {
            self.mailbox.wake_all();
        }
    }

    fn cur_size(&self) -> usize {
        self.cur_size.load(Ordering::Acquire)
    }

    fn mark_disconnected(&self, peer: usize) {
        let mut at = self.peers[peer].disconnected_at.lock();
        if at.is_none() {
            *at = Some(Instant::now());
        }
    }

    /// One fence tick toward `peer`: sends our fence (carrying the
    /// delivered watermark of the peer's stream) and judges the peer's
    /// delivery of *our* stream. A watermark frozen across
    /// `fence_stall_fences` consecutive ticks while we hold undelivered
    /// data quarantines the peer — the socket being open proves nothing
    /// (a SIGSTOP'd process's listener backlog still accepts), only
    /// delivered sequence numbers prove the far application runs.
    fn fence_tick(&self, peer: usize) {
        let p = &self.peers[peer];
        let fence_seq = p.fence_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let outstanding = {
            let mut sender = p.sender.lock();
            let watermark = p.last_recv_seq.load(Ordering::Acquire);
            if sender.send_fence(fence_seq, watermark).is_err() {
                sender.detach();
                drop(sender);
                self.mark_disconnected(peer);
                return;
            }
            self.stats.fences_sent.fetch_add(1, Ordering::Relaxed);
            sender.last_seq() > p.peer_watermark.load(Ordering::Acquire)
        };
        if outstanding {
            let stalled = p.stall_fences.fetch_add(1, Ordering::AcqRel) + 1;
            if stalled >= u64::from(self.cfg.fence_stall_fences) {
                self.quarantine(peer, stalled);
            }
        } else {
            p.stall_fences.store(0, Ordering::Release);
        }
    }

    /// Quarantines `peer`: provisionally dead (blocked operations fail
    /// fast with `PeerDead`), inbound data dropped, but reversible — a
    /// resumed watermark before the grace expires re-admits it.
    fn quarantine(&self, peer: usize, stalled_fences: u64) {
        let p = &self.peers[peer];
        if p.evicted.load(Ordering::Acquire) || p.quarantined.swap(true, Ordering::AcqRel) {
            return;
        }
        *p.quarantined_at.lock() = Some(Instant::now());
        self.stats.zombies_quarantined.fetch_add(1, Ordering::Relaxed);
        emit_instant(EventId::WireZombie, [peer as u64, 1, stalled_fences, 0]);
        self.declare_dead(peer);
    }

    /// Re-admits a quarantined peer whose application proved it is
    /// consuming again. Sends a fresh `Hello` so the peer replays the data
    /// we dropped during quarantine (our `last_recv_seq` never advanced
    /// past them).
    fn readmit(&self, peer: usize) {
        let p = &self.peers[peer];
        if p.evicted.load(Ordering::Acquire) || !p.quarantined.swap(false, Ordering::AcqRel) {
            return;
        }
        let held = p
            .quarantined_at
            .lock()
            .take()
            .map_or(0, |at| Instant::now().duration_since(at).as_micros() as u64);
        p.stall_fences.store(0, Ordering::Release);
        p.churn.store(0, Ordering::Release);
        self.liveness.revive(peer);
        self.stats.zombies_readmitted.fetch_add(1, Ordering::Relaxed);
        emit_instant(EventId::WireZombie, [peer as u64, 2, 0, held]);
        let mut sender = p.sender.lock();
        let _ = sender.send_hello(self.session, p.last_recv_seq.load(Ordering::Acquire));
    }

    /// Makes the quarantine verdict final: the peer stays dead, its link
    /// is closed, and no readmission or reconnect will ever touch it.
    fn evict(&self, peer: usize) {
        let p = &self.peers[peer];
        if p.evicted.swap(true, Ordering::AcqRel) {
            return;
        }
        let held = p
            .quarantined_at
            .lock()
            .take()
            .map_or(0, |at| Instant::now().duration_since(at).as_micros() as u64);
        p.quarantined.store(false, Ordering::Release);
        self.stats.zombies_evicted.fetch_add(1, Ordering::Relaxed);
        emit_instant(EventId::WireZombie, [peer as u64, 3, 0, held]);
        self.declare_dead(peer);
        p.sender.lock().shutdown();
    }

    /// Opens an admission window for `new_rank` (must be the next free
    /// slot): raises the membership so the acceptor, monitor, and send
    /// path address it, and scrubs any state a previous occupant or
    /// aborted attempt left behind. A connection the newcomer already made
    /// is kept — voters admit *after* the newcomer dials the mesh.
    fn begin_admit(&self, new_rank: usize) -> Result<()> {
        let cur = self.cur_size();
        if new_rank != cur || new_rank >= self.cfg.max_size {
            return Err(RuntimeError::InvalidRank { rank: new_rank, size: self.cfg.max_size });
        }
        let p = &self.peers[new_rank];
        p.evicted.store(false, Ordering::Release);
        p.quarantined.store(false, Ordering::Release);
        *p.quarantined_at.lock() = None;
        p.stall_fences.store(0, Ordering::Release);
        p.churn.store(0, Ordering::Release);
        {
            let mut sender = p.sender.lock();
            // The joiner owes us nothing sent to a previous occupant: the
            // watermark baseline starts at today's sequence counter, so
            // only data sent *after* admission can count as outstanding.
            p.peer_watermark.store(sender.last_seq(), Ordering::Release);
            if !sender.is_connected() {
                // No live connection from the joiner yet: forget the
                // previous occupant entirely. The ring is cleared (its
                // frames belong to a dead incarnation — replaying them at
                // a fresh process would cross sessions) but the sequence
                // counter stays monotone.
                sender.clear_ring();
                p.ever_connected.store(false, Ordering::Release);
                p.session.store(0, Ordering::Release);
                p.last_recv_seq.store(0, Ordering::Release);
            }
        }
        self.liveness.revive(new_rank);
        self.cur_size.store(cur + 1, Ordering::Release);
        Ok(())
    }

    /// Rolls an admission window back after an aborted join: closes any
    /// half-made connection, scrubs the slot, and lowers the membership
    /// (only if no later admit committed on top of it).
    fn rescind_admit(&self, new_rank: usize) {
        let p = &self.peers[new_rank];
        {
            let mut sender = p.sender.lock();
            sender.shutdown();
            sender.clear_ring();
            p.peer_watermark.store(sender.last_seq(), Ordering::Release);
        }
        p.ever_connected.store(false, Ordering::Release);
        p.session.store(0, Ordering::Release);
        p.last_recv_seq.store(0, Ordering::Release);
        *p.disconnected_at.lock() = None;
        self.liveness.revive(new_rank);
        let _ = self.cur_size.compare_exchange(
            new_rank + 1,
            new_rank,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Routes one decoded frame from `peer`.
    fn handle_frame(self: &Arc<Self>, peer: usize, frame: Frame) {
        match frame.kind {
            FrameKind::Data => {
                let p = &self.peers[peer];
                // A quarantined peer's data is dropped *without* advancing
                // `last_recv_seq`: if the peer is re-admitted, the `Hello`
                // we send announces the pre-quarantine watermark and its
                // ring replays everything we refused here.
                if p.quarantined.load(Ordering::Acquire) || p.evicted.load(Ordering::Acquire) {
                    return;
                }
                // Duplicate guard: session resume may replay frames the
                // original delivery already landed.
                if frame.seq <= p.last_recv_seq.load(Ordering::Acquire) {
                    self.stats.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                p.last_recv_seq.store(frame.seq, Ordering::Release);
                let bytes = frame.payload.len();
                match self.registry.decode_any(frame.codec, &frame.payload) {
                    Ok(boxed) => {
                        self.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                        self.mailbox.push(Envelope::new(
                            peer,
                            peer,
                            frame.context,
                            frame.tag,
                            bytes,
                            None,
                            Payload::Owned(boxed),
                        ));
                    }
                    // Bytes passed CRC but no/odd codec: a registry
                    // mismatch between the two processes. Surface it as a
                    // detectable Corrupt — never a panic — so the
                    // receiver's retry/NACK machinery engages.
                    Err(_) => self.push_corrupt(peer, frame.context, frame.tag, bytes),
                }
            }
            FrameKind::Heartbeat => {} // `last_heard` already refreshed
            FrameKind::Hello => {
                if let Ok((session, last_recv)) =
                    crate::codec::decode_value::<(u64, u64)>(&frame.payload)
                {
                    self.note_peer_session(peer, session);
                    let mut sender = self.peers[peer].sender.lock();
                    let _ = sender.resend_since(last_recv);
                }
            }
            FrameKind::Bye => {
                // An orderly goodbye still marks the peer dead: blocked
                // receives must fail fast, exactly as for a crash; the
                // difference is no reconnect is attempted.
                self.declare_dead(peer);
            }
            FrameKind::ProgressFence => {
                if let Ok((_fence_seq, watermark)) =
                    crate::codec::decode_value::<(u64, u64)>(&frame.payload)
                {
                    let p = &self.peers[peer];
                    let prev = p.peer_watermark.fetch_max(watermark, Ordering::AcqRel);
                    let advanced = watermark > prev;
                    if advanced {
                        p.stall_fences.store(0, Ordering::Release);
                    }
                    // A fence *arriving at all* proves the peer's monitor
                    // thread is scheduled again — a stopped process sends
                    // nothing. Re-admit once it has either advanced or
                    // fully caught up with our stream.
                    if p.quarantined.load(Ordering::Acquire) {
                        let caught_up = watermark >= p.sender.lock().last_seq();
                        if advanced || caught_up {
                            self.readmit(peer);
                        }
                    } else if !advanced && !p.evicted.load(Ordering::Acquire) {
                        // A fence *repeating* a lagging watermark is a
                        // NACK, not a freeze: the peer is running but
                        // frames beyond the watermark were lost to bit
                        // damage or a torn connection. Repair from the
                        // resend ring — the duplicate guard on the far
                        // side keeps redelivery exact-once.
                        let mut sender = p.sender.lock();
                        if sender.is_connected() && sender.last_seq() > watermark {
                            let _ = sender.resend_since(watermark);
                        }
                    }
                }
            }
        }
    }

    /// Delivers a checksum-damaged envelope so a receiver blocked on this
    /// `(context, tag)` observes `RuntimeError::Corrupt`, mirroring the
    /// in-proc fault plane's corrupt verdict.
    fn push_corrupt(&self, peer: usize, context: u32, tag: i32, bytes: usize) {
        let mut env = Envelope::new(peer, peer, context, tag, bytes, None, Payload::owned(()));
        env.corrupt();
        self.mailbox.push(env);
    }

    /// Records the peer's session id; a changed id means the peer process
    /// restarted, so its data sequence numbers start over.
    fn note_peer_session(&self, peer: usize, session: u64) {
        let p = &self.peers[peer];
        let prev = p.session.swap(session, Ordering::AcqRel);
        if prev != 0 && prev != session {
            p.last_recv_seq.store(0, Ordering::Release);
        }
    }

    /// Attaches a fresh stream for `peer` and spawns its reader thread.
    /// `reader` carries any bytes already consumed during the handshake.
    fn attach(
        self: &Arc<Self>,
        peer: usize,
        stream: UnixStream,
        reader: FrameReader,
        via_listener: bool,
        attempt: u64,
    ) -> io::Result<()> {
        let p = &self.peers[peer];
        // A zombie peer stops draining its socket; once the kernel buffer
        // fills, a blocking `write_all` would wedge whichever thread holds
        // the sender lock (the monitor included). Bound every write so a
        // full pipe surfaces as a link failure instead.
        stream.set_write_timeout(Some(self.cfg.liveness_deadline))?;
        let read_half = stream.try_clone()?;
        let generation = {
            let mut sender = p.sender.lock();
            sender.attach(stream);
            let generation = p.generation.fetch_add(1, Ordering::AcqRel) + 1;
            *p.last_heard.lock() = Instant::now();
            *p.disconnected_at.lock() = None;
            p.ever_connected.store(true, Ordering::Release);
            // Announce our session and what we have seen, triggering the
            // peer's resume replay toward us.
            sender.send_hello(self.session, p.last_recv_seq.load(Ordering::Acquire))?;
            generation
        };
        emit_instant(
            EventId::WireConnect,
            [
                peer as u64,
                attempt,
                self.peers[peer].last_recv_seq.load(Ordering::Relaxed),
                u64::from(via_listener),
            ],
        );
        let shared = Arc::clone(self);
        std::thread::Builder::new().name(format!("wire-read-{}-{peer}", self.cfg.rank)).spawn(
            move || {
                let _trace = shared.install_trace();
                shared.reader_loop(peer, read_half, reader, generation)
            },
        )?;
        Ok(())
    }

    /// Blocking per-connection read loop: bytes → frames → mailbox.
    fn reader_loop(
        self: Arc<Self>,
        peer: usize,
        mut stream: UnixStream,
        mut frames: FrameReader,
        generation: u64,
    ) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            // Drain frames already buffered (handshake leftovers first).
            while let Some(res) = frames.next() {
                *self.peers[peer].last_heard.lock() = Instant::now();
                match res {
                    Ok(frame) => {
                        // Any intact frame resets the reconnect-churn and
                        // fence-stall counters: the peer's application
                        // demonstrably ran. A zombie sends *nothing* — a
                        // peer on a lossy wire keeps proving itself with
                        // every frame that survives, so bit damage alone
                        // can never convict it.
                        self.peers[peer].churn.store(0, Ordering::Release);
                        self.peers[peer].stall_fences.store(0, Ordering::Release);
                        self.handle_frame(peer, frame);
                    }
                    Err(FrameError::Corrupt { skipped, header, .. }) => {
                        self.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        emit_instant(
                            EventId::WireFrameCorrupt,
                            [peer as u64, u64::from(header.is_some()), skipped as u64, 0],
                        );
                        if let Some(h) = header {
                            self.push_corrupt(peer, h.context, h.tag, skipped);
                        }
                    }
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break, // EOF or failure: the link is down
                Ok(n) => frames.feed(&buf[..n]),
            }
        }
        // Only the *current* stream's reader tears the link down; a stale
        // generation means a reconnect already replaced us.
        let p = &self.peers[peer];
        if p.generation.load(Ordering::Acquire) == generation
            && !self.shutdown.load(Ordering::Acquire)
        {
            p.sender.lock().detach();
            self.mark_disconnected(peer);
        }
    }

    /// Reads the peer's opening `Hello` off a freshly accepted stream.
    fn read_hello(stream: &UnixStream) -> io::Result<(Frame, FrameReader)> {
        let mut s = stream.try_clone()?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut frames = FrameReader::new();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(res) = frames.next() {
                match res {
                    Ok(f) if f.kind == FrameKind::Hello => {
                        stream.set_read_timeout(None)?;
                        return Ok((f, frames));
                    }
                    // Anything else before Hello is a protocol violation
                    // from an unknown peer: drop the connection.
                    Ok(_) | Err(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "expected Hello as first frame",
                        ));
                    }
                }
            }
            let n = s.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before Hello"));
            }
            frames.feed(&buf[..n]);
        }
    }

    /// Accept loop: polls the nonblocking listener, handshakes inbound
    /// connections, attaches them.
    fn acceptor_loop(self: Arc<Self>, listener: UnixListener) {
        while !self.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self);
                    // Handshake off-thread so one slow dialer cannot stall
                    // the accept queue.
                    let _ = std::thread::Builder::new()
                        .name(format!("wire-hello-{}", self.cfg.rank))
                        .spawn(move || {
                            let _trace = shared.install_trace();
                            if let Ok((hello, frames)) = NodeShared::read_hello(&stream) {
                                let peer = hello.src as usize;
                                // Accept up to `max_size`: a joining spare
                                // dials the mesh before every incumbent has
                                // raised its membership.
                                if peer < shared.cfg.max_size && peer != shared.cfg.rank {
                                    if let Ok((session, last_recv)) =
                                        crate::codec::decode_value::<(u64, u64)>(&hello.payload)
                                    {
                                        shared.note_peer_session(peer, session);
                                        let _ = shared.attach(peer, stream, frames, true, 0);
                                        let mut sender = shared.peers[peer].sender.lock();
                                        let _ = sender.resend_since(last_recv);
                                    }
                                }
                            }
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }

    /// Heartbeat/liveness monitor: beacons live links, fences them for
    /// end-to-end progress, detects silence, launches reconnects, expires
    /// the passive reconnect window, and walks peers through the
    /// quarantine → readmit/evict state machine.
    fn monitor_loop(self: Arc<Self>) {
        let tick = self.cfg.heartbeat / 2;
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(tick);
            let now = Instant::now();
            for peer in 0..self.cur_size() {
                if peer == self.cfg.rank {
                    continue;
                }
                let p = &self.peers[peer];
                if p.evicted.load(Ordering::Acquire) {
                    continue; // verdict is final
                }
                if p.quarantined.load(Ordering::Acquire) {
                    // Quarantine: liveness says dead, but the link (if
                    // any) stays up so a resumed peer's fences can reach
                    // us and trigger readmission. No beacons, no silence
                    // checks, no reconnects — just the grace timer.
                    let expired = p
                        .quarantined_at
                        .lock()
                        .is_some_and(|at| now.duration_since(at) > self.cfg.quarantine_grace);
                    if expired {
                        self.evict(peer);
                    }
                    continue;
                }
                if self.liveness.is_dead(peer) {
                    continue; // dead by crash/agreement, not quarantine
                }
                if !p.ever_connected.load(Ordering::Acquire) {
                    continue; // still in startup; `connect` owns this phase
                }
                let connected = p.sender.lock().is_connected();
                if connected {
                    if now.duration_since(*p.last_beat.lock()) >= self.cfg.heartbeat {
                        *p.last_beat.lock() = now;
                        let mut sender = p.sender.lock();
                        if sender.send_control(FrameKind::Heartbeat).is_err() {
                            sender.detach();
                            drop(sender);
                            self.mark_disconnected(peer);
                            continue;
                        }
                    }
                    if now.duration_since(*p.last_fence.lock()) >= self.cfg.fence_interval {
                        *p.last_fence.lock() = now;
                        self.fence_tick(peer);
                        if p.quarantined.load(Ordering::Acquire) {
                            continue;
                        }
                    }
                    let silence = now.duration_since(*p.last_heard.lock());
                    if silence > self.cfg.liveness_deadline {
                        self.stats.heartbeat_misses.fetch_add(1, Ordering::Relaxed);
                        emit_instant(
                            EventId::HeartbeatMiss,
                            [
                                peer as u64,
                                silence.as_micros() as u64,
                                self.cfg.liveness_deadline.as_micros() as u64,
                                0,
                            ],
                        );
                        // Tear the link down; reconnect (or the passive
                        // window) decides whether the peer is dead. Count
                        // the churn: a zombie's listener backlog lets the
                        // redial "succeed", so miss → reconnect → miss
                        // cycles are themselves a detection signal.
                        let churn = p.churn.fetch_add(1, Ordering::AcqRel) + 1;
                        let mut sender = p.sender.lock();
                        sender.shutdown();
                        drop(sender);
                        self.mark_disconnected(peer);
                        if churn >= u64::from(self.cfg.zombie_churn) {
                            self.quarantine(peer, 0);
                        }
                    }
                } else {
                    let since = p.disconnected_at.lock().map(|at| now.duration_since(at));
                    let Some(since) = since else { continue };
                    if peer < self.cfg.rank {
                        // We are the dialer: bounded reconnect attempts.
                        if !p.reconnecting.swap(true, Ordering::AcqRel) {
                            let shared = Arc::clone(&self);
                            let _ = std::thread::Builder::new()
                                .name(format!("wire-redial-{}-{peer}", self.cfg.rank))
                                .spawn(move || {
                                    let _trace = shared.install_trace();
                                    shared.reconnect_loop(peer)
                                });
                        }
                    } else if since > self.cfg.reconnect_window() {
                        // Passive side: the dialer's whole backoff schedule
                        // has passed without a new Hello. It is gone.
                        self.declare_dead(peer);
                    }
                }
            }
        }
    }

    /// Dials `peer` with seeded exponential backoff; on exhaustion the
    /// peer is declared dead and heal takes over.
    fn reconnect_loop(self: Arc<Self>, peer: usize) {
        emit(EventId::WireReconnect, Phase::Begin, [peer as u64, 0, 0, 0]);
        // The jitter draws come from the same splitmix stream as the
        // in-proc retry plane, keyed so each (rank, peer) pair decorrelates.
        let policy = CallPolicy {
            backoff: self.cfg.reconnect_backoff,
            max_retries: self.cfg.reconnect_attempts,
            jitter: Some(splitmix64(self.cfg.seed ^ ((self.cfg.rank as u64) << 32 | peer as u64))),
            ..CallPolicy::default()
        };
        let mut base = self.cfg.reconnect_backoff;
        for attempt in 0..=self.cfg.reconnect_attempts {
            if self.shutdown.load(Ordering::Acquire) || self.liveness.is_dead(peer) {
                break;
            }
            self.stats.reconnect_dials.fetch_add(1, Ordering::Relaxed);
            if let Ok(stream) = UnixStream::connect(self.cfg.sock_path(peer)) {
                if self.attach(peer, stream, FrameReader::new(), false, u64::from(attempt)).is_ok()
                {
                    emit(
                        EventId::WireReconnect,
                        Phase::End,
                        [peer as u64, u64::from(attempt), 1, 0],
                    );
                    self.peers[peer].reconnecting.store(false, Ordering::Release);
                    return;
                }
            }
            // Interruptible backoff: a `Bye` (or any other death verdict)
            // that lands mid-pause must cancel the remaining attempts now,
            // not after the full schedule drains — otherwise the redial
            // races the goodbye and can resurrect a link to a peer that
            // already left on purpose.
            let wake = Instant::now() + policy.retry_pause(base, attempt);
            while Instant::now() < wake {
                if self.shutdown.load(Ordering::Acquire) || self.liveness.is_dead(peer) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            base = base.saturating_mul(2);
        }
        emit(
            EventId::WireReconnect,
            Phase::End,
            [peer as u64, u64::from(self.cfg.reconnect_attempts) + 1, 0, 0],
        );
        self.declare_dead(peer);
        self.peers[peer].reconnecting.store(false, Ordering::Release);
    }

    /// Encodes and sends one type-erased payload to `dst`. A send while
    /// the link is down still succeeds: the frame enters the resend ring
    /// and session resume redelivers it (or the peer is declared dead and
    /// later operations fail with `PeerDead`).
    fn send_encoded(
        &self,
        dst: usize,
        context: u32,
        tag: i32,
        codec: u32,
        bytes: Vec<u8>,
    ) -> Result<()> {
        let size = self.cur_size();
        if dst >= size {
            return Err(RuntimeError::InvalidRank { rank: dst, size });
        }
        if self.liveness.is_dead(dst) {
            return Err(RuntimeError::PeerDead { rank: dst });
        }
        if self.shutdown.load(Ordering::Acquire) {
            return Err(RuntimeError::Aborted);
        }
        let p = &self.peers[dst];
        let mut sender = p.sender.lock();
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        if sender.send_data(context, tag, codec, bytes).is_err() {
            // The write failed but the frame is ring-retained; the
            // reconnect/resume machinery owns redelivery from here.
            sender.detach();
            drop(sender);
            self.mark_disconnected(dst);
        }
        Ok(())
    }
}

/// A running wire-transport endpoint. See the module docs for the design.
pub struct WireNode {
    shared: Arc<NodeShared>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl WireNode {
    /// Binds this rank's socket and starts the acceptor and monitor
    /// threads. The mesh is not connected until [`WireNode::connect`].
    pub fn start(cfg: WireConfig, registry: CodecRegistry) -> io::Result<WireNode> {
        Self::start_traced(cfg, registry, None)
    }

    /// [`WireNode::start`] with a trace recorder the node's internal
    /// threads install, so wire events show up in Chrome traces.
    pub fn start_traced(
        cfg: WireConfig,
        registry: CodecRegistry,
        trace: Option<TraceHandle>,
    ) -> io::Result<WireNode> {
        assert!(cfg.max_size >= cfg.size, "max_size must admit the initial membership");
        std::fs::create_dir_all(&cfg.dir)?;
        let path = cfg.sock_path(cfg.rank);
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let abort = Arc::new(AtomicBool::new(false));
        // Rank-indexed state is sized to the ceiling once; spare slots in
        // `size..max_size` sit parked until a join admits them.
        let liveness = Arc::new(Liveness::new(cfg.max_size));
        let revocations = Arc::new(Revocations::default());
        let session = splitmix64((u64::from(std::process::id()) << 20) ^ cfg.rank as u64 | 1);
        let peers = (0..cfg.max_size)
            .map(|peer| Peer::new(cfg.rank as u32, peer as u32, cfg.faults))
            .collect();
        let shared = Arc::new(NodeShared {
            mailbox: Mailbox::new(abort.clone(), liveness.clone(), revocations),
            session,
            liveness,
            registry,
            peers,
            cur_size: AtomicUsize::new(cfg.size),
            abort,
            shutdown: AtomicBool::new(false),
            stats: StatsInner::default(),
            trace,
            cfg,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new().name(format!("wire-accept-{}", shared.cfg.rank)).spawn(
                move || {
                    let _trace = shared.install_trace();
                    let s = Arc::clone(&shared);
                    s.acceptor_loop(listener)
                },
            )?
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new().name(format!("wire-monitor-{}", shared.cfg.rank)).spawn(
                move || {
                    let _trace = shared.install_trace();
                    shared.monitor_loop()
                },
            )?
        };
        Ok(WireNode { shared, acceptor: Some(acceptor), monitor: Some(monitor) })
    }

    /// Completes the mesh: dials every lower rank (retrying while peers
    /// are still binding) and waits until every higher rank has dialed us.
    pub fn connect(&self) -> io::Result<()> {
        let cfg = &self.shared.cfg;
        let deadline = Instant::now() + cfg.connect_timeout;
        for peer in 0..cfg.rank {
            loop {
                match UnixStream::connect(cfg.sock_path(peer)) {
                    Ok(stream) => {
                        self.shared.attach(peer, stream, FrameReader::new(), false, 0)?;
                        break;
                    }
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("rank {peer} never bound its socket: {e}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        }
        // Higher ranks dial us; wait for all of them.
        for peer in cfg.rank + 1..cfg.size {
            loop {
                if self.shared.peers[peer].ever_connected.load(Ordering::Acquire) {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("rank {peer} never dialed us"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(())
    }

    /// This node's global rank.
    pub fn rank(&self) -> usize {
        self.shared.cfg.rank
    }

    /// Current mesh size (grows when a spare-process join commits).
    pub fn size(&self) -> usize {
        self.shared.cur_size()
    }

    /// The preallocated membership ceiling ([`WireConfig::max_size`]).
    pub fn max_size(&self) -> usize {
        self.shared.cfg.max_size
    }

    /// The shared liveness registry — the same type, with the same
    /// semantics, the in-proc world uses.
    pub fn liveness(&self) -> &Arc<Liveness> {
        &self.shared.liveness
    }

    /// Whether `rank` has been declared dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.shared.liveness.is_dead(rank)
    }

    /// Blocks until `rank` is declared dead or `timeout` passes; returns
    /// whether it died in time.
    pub fn await_death(&self, rank: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_dead(rank) {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Whether `rank` is currently quarantined (provisionally dead: frames
    /// dropped, operations fail fast, but readmission is still possible).
    pub fn is_quarantined(&self, rank: usize) -> bool {
        self.shared.peers[rank].quarantined.load(Ordering::Acquire)
    }

    /// Whether the quarantine verdict on `rank` became final.
    pub fn is_evicted(&self, rank: usize) -> bool {
        self.shared.peers[rank].evicted.load(Ordering::Acquire)
    }

    /// Blocks until `rank` enters quarantine (or is evicted outright) or
    /// `timeout` passes; returns whether it happened in time.
    pub fn await_quarantine(&self, rank: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_quarantined(rank) && !self.is_evicted(rank) {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Blocks until `rank` is back in good standing — neither quarantined
    /// nor dead — or `timeout` passes; returns whether it was re-admitted.
    pub fn await_readmit(&self, rank: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.is_quarantined(rank) || self.is_dead(rank) {
            if self.is_evicted(rank) || Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Arms or disarms frame-layer fault injection on every link (the
    /// wire analogue of `Process::set_faults_armed`).
    pub fn set_faults_armed(&self, armed: bool) {
        for peer in 0..self.shared.cur_size() {
            if peer != self.shared.cfg.rank {
                self.shared.peers[peer].sender.lock().set_armed(armed);
            }
        }
    }

    /// Sends `value` to `dst`'s mailbox bucket `(context, tag)`. The type
    /// must be registered in both processes' codec registries.
    pub fn send<T: Any + Send>(&self, dst: usize, context: u32, tag: i32, value: T) -> Result<()> {
        let (codec, bytes) =
            self.shared.registry.encode_any(&value).ok_or(RuntimeError::TypeMismatch {
                expected: std::any::type_name::<T>(),
                src: self.shared.cfg.rank,
                tag,
            })?;
        self.shared.send_encoded(dst, context, tag, codec, bytes)
    }

    /// Receives a `T` from `src` on `(context, tag)`, blocking until it
    /// arrives, `src` is declared dead, or a damaged frame for this bucket
    /// surfaces as [`RuntimeError::Corrupt`].
    pub fn recv<T: Any>(&self, src: usize, context: u32, tag: i32) -> Result<T> {
        let env = self.shared.mailbox.take(
            context,
            Src::Rank(src),
            Tag::Value(tag),
            &[PeerRef { global: src, local: src }],
        )?;
        Self::unpack(env, src, tag)
    }

    /// [`WireNode::recv`] with a deadline.
    pub fn recv_timeout<T: Any>(
        &self,
        src: usize,
        context: u32,
        tag: i32,
        timeout: Duration,
    ) -> Result<T> {
        let env = self.shared.mailbox.take_timeout(
            context,
            Src::Rank(src),
            Tag::Value(tag),
            timeout,
            &[PeerRef { global: src, local: src }],
        )?;
        Self::unpack(env, src, tag)
    }

    fn unpack<T: Any>(env: Envelope, src: usize, tag: i32) -> Result<T> {
        if !env.verify() {
            return Err(RuntimeError::Corrupt { src, tag });
        }
        env.payload.into_owned::<T>().map(|(v, _)| v).map_err(|_| RuntimeError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            src,
            tag,
        })
    }

    /// Agrees with the surviving peers on who is alive: two rounds of
    /// dead-set exchange on the reserved control context (round two
    /// spreads unions, so every survivor leaves with the same set — the
    /// wire analogue of the membership plane's agreement). Peers that stay
    /// silent past `timeout` are treated as dead.
    pub fn agree_survivors(&self, epoch: u32, timeout: Duration) -> Result<Vec<usize>> {
        let size = self.shared.cur_size();
        assert!(size <= 64, "bitmap agreement supports up to 64 ranks");
        let me = self.shared.cfg.rank;
        let mut view: u64 = 0;
        for r in self.shared.liveness.dead_ranks() {
            if r < size {
                view |= 1 << r;
            }
        }
        for round in 0..2i32 {
            let tag = (epoch as i32) * 2 + round;
            let audience: Vec<usize> =
                (0..size).filter(|&r| r != me && view & (1 << r) == 0).collect();
            for &r in &audience {
                match self.send(r, WIRE_CTRL_CONTEXT, tag, view) {
                    Ok(()) | Err(RuntimeError::PeerDead { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            for &r in &audience {
                match self.recv_timeout::<u64>(r, WIRE_CTRL_CONTEXT, tag, timeout) {
                    Ok(bits) => view |= bits,
                    Err(RuntimeError::PeerDead { .. }) | Err(RuntimeError::Timeout { .. }) => {
                        view |= 1 << r;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        // Commit the verdict locally: every rank in the agreed dead set is
        // dead *and evicted* here, even if this node never independently
        // detected it — and a quarantined zombie that resumes after this
        // point must not resurrect (the agreement is the point of no
        // return, exactly like the membership plane's epoch commit).
        for r in 0..size {
            if r != me && view & (1 << r) != 0 {
                let p = &self.shared.peers[r];
                p.quarantined.store(false, Ordering::Release);
                p.evicted.store(true, Ordering::Release);
                self.shared.declare_dead(r);
            }
        }
        Ok((0..size).filter(|r| view & (1 << r) == 0).collect())
    }

    /// Sponsors one attempt to admit a spare process as rank
    /// `self.size()`, mirroring the membership plane's §4i join handshake
    /// at the wire plane: offer → unanimous vote → commit, any failure →
    /// rescind. On commit, `state` is replayed to the newcomer (the wire
    /// analogue of the RMA rebind: the blob carries whatever the
    /// application needs to resume — last committed step, bounds, data)
    /// and every incumbent's mesh has grown by one. On abort, everything
    /// rolls back and the old mesh stays fully usable.
    ///
    /// The sequence, from the sponsor's seat:
    /// 1. open the admission window (raise membership to `new_rank + 1`);
    /// 2. wait for the newcomer's `JoinReq` — it has already dialed the
    ///    whole mesh by the time it sends one;
    /// 3. serialize a [`JoinOffer`](mxn_runtime::JoinOffer) to every live
    ///    incumbent and collect their votes (a vote arrives only if the
    ///    newcomer's connection reached that incumbent too);
    /// 4. unanimity → commit + state replay; anything else →
    ///    [`RuntimeError::ReconfigAborted`] and a rescind on every node.
    pub fn expand_mesh(&self, attempt: u64, state: &[u8], timeout: Duration) -> Result<usize> {
        let me = self.shared.cfg.rank;
        let new_rank = self.shared.cur_size();
        emit(EventId::WireJoin, Phase::Begin, [new_rank as u64, attempt, 0, new_rank as u64]);
        self.shared.begin_admit(new_rank)?;
        let incumbents: Vec<usize> =
            (0..new_rank).filter(|&r| r != me && !self.is_dead(r)).collect();
        let abort = |offered: bool, err: RuntimeError| -> Result<usize> {
            // Tell the incumbents — but only if the offer went out and
            // they are actually waiting on a commit tag; a stray verdict
            // frame would linger and could satisfy a later same-numbered
            // attempt. Notify the newcomer if it is reachable, then roll
            // the window back.
            if offered {
                for &r in &incumbents {
                    let _ = self.send(r, WIRE_CTRL_CONTEXT, join_commit_tag(attempt), 0u64);
                }
            }
            let mut notice = vec![0u8];
            notice.extend_from_slice(&(attempt as u32).to_le_bytes());
            let _ = self.send(new_rank, WIRE_CTRL_CONTEXT, JOIN_STATE_TAG, notice);
            self.shared.rescind_admit(new_rank);
            self.shared.stats.joins_aborted.fetch_add(1, Ordering::Relaxed);
            emit(EventId::WireJoin, Phase::End, [new_rank as u64, attempt, 0, new_rank as u64]);
            Err(err)
        };
        // 2. The newcomer announces itself once its side of the mesh is up.
        match self.recv_timeout::<u64>(new_rank, WIRE_CTRL_CONTEXT, JOIN_REQ_TAG, timeout) {
            Ok(claimed) if claimed as usize == new_rank => {}
            Ok(_) | Err(_) => {
                return abort(
                    false,
                    RuntimeError::ReconfigAborted { context: WIRE_CTRL_CONTEXT, attempt },
                )
            }
        }
        // 3. Offer + votes.
        let new_group: Vec<usize> = (0..=new_rank).collect();
        let offer = mxn_runtime::JoinOffer {
            side: 0,
            local_rank: new_rank,
            context: WIRE_CTRL_CONTEXT,
            attempt,
            epoch: (new_rank + 1) as u64,
            local_group: new_group.clone(),
            remote_group: Vec::new(),
            old_local_group: (0..new_rank).collect(),
            old_remote_group: Vec::new(),
            participants: new_group,
        };
        let bytes = offer.to_wire_bytes();
        for &r in &incumbents {
            let _ = self.send(r, WIRE_CTRL_CONTEXT, JOIN_OFFER_TAG, bytes.clone());
        }
        let mut unanimous = true;
        for &r in &incumbents {
            match self.recv_timeout::<u64>(r, WIRE_CTRL_CONTEXT, join_vote_tag(attempt), timeout) {
                Ok(1) => {}
                Ok(_) | Err(_) => unanimous = false,
            }
        }
        // Our own vote: the newcomer must still be wired to us.
        if self.is_dead(new_rank) || !self.shared.peers[new_rank].sender.lock().is_connected() {
            unanimous = false;
        }
        if !unanimous {
            return abort(
                true,
                RuntimeError::ReconfigAborted { context: WIRE_CTRL_CONTEXT, attempt },
            );
        }
        // 4. Commit everywhere, then hand the newcomer its state.
        for &r in &incumbents {
            let _ = self.send(r, WIRE_CTRL_CONTEXT, join_commit_tag(attempt), 1u64);
        }
        let mut msg = Vec::with_capacity(5 + state.len());
        msg.push(1u8);
        msg.extend_from_slice(&(attempt as u32).to_le_bytes());
        msg.extend_from_slice(state);
        self.send(new_rank, WIRE_CTRL_CONTEXT, JOIN_STATE_TAG, msg)?;
        self.shared.stats.joins_committed.fetch_add(1, Ordering::Relaxed);
        emit(
            EventId::WireJoin,
            Phase::End,
            [new_rank as u64, attempt, 1, (new_rank + 1) as u64],
        );
        Ok(new_rank + 1)
    }

    /// Incumbent's side of one join attempt: receives the sponsor's offer,
    /// opens the admission window, waits for the newcomer's connection to
    /// arrive, votes, and applies the sponsor's verdict — growing the mesh
    /// on commit, rescinding on abort. Returns the admitted rank.
    pub fn join_vote(&self, sponsor: usize, timeout: Duration) -> Result<usize> {
        let bytes: Vec<u8> =
            self.recv_timeout(sponsor, WIRE_CTRL_CONTEXT, JOIN_OFFER_TAG, timeout)?;
        let offer = mxn_runtime::JoinOffer::from_wire_bytes(&bytes)
            .ok_or(RuntimeError::Corrupt { src: sponsor, tag: JOIN_OFFER_TAG })?;
        let attempt = offer.attempt;
        let new_rank = offer.local_rank;
        let admitted = self.shared.begin_admit(new_rank).is_ok();
        // The newcomer dials the whole mesh before announcing itself to
        // the sponsor, so its connection is usually already here; a dead
        // newcomer (killed mid-join) shows up as EOF → never connected.
        let mut wired = false;
        if admitted {
            let deadline = Instant::now() + timeout;
            loop {
                if self.shared.peers[new_rank].sender.lock().is_connected() {
                    wired = true;
                    break;
                }
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let _ =
            self.send(sponsor, WIRE_CTRL_CONTEXT, join_vote_tag(attempt), u64::from(wired));
        let verdict =
            self.recv_timeout::<u64>(sponsor, WIRE_CTRL_CONTEXT, join_commit_tag(attempt), timeout);
        match verdict {
            Ok(1) => {
                self.shared.stats.joins_committed.fetch_add(1, Ordering::Relaxed);
                emit_instant(EventId::WireJoin, [new_rank as u64, attempt, 1, self.size() as u64]);
                Ok(new_rank)
            }
            _ => {
                if admitted {
                    self.shared.rescind_admit(new_rank);
                }
                self.shared.stats.joins_aborted.fetch_add(1, Ordering::Relaxed);
                emit_instant(EventId::WireJoin, [new_rank as u64, attempt, 0, self.size() as u64]);
                Err(RuntimeError::ReconfigAborted { context: WIRE_CTRL_CONTEXT, attempt })
            }
        }
    }

    /// Newcomer's side: announces itself to the sponsor (call after
    /// [`WireNode::connect`] wired the mesh) and blocks for the verdict.
    /// On commit, returns the state blob the sponsor replayed — the
    /// newcomer resumes exactly where the membership left off. On abort,
    /// [`RuntimeError::ReconfigAborted`].
    pub fn join_mesh(&self, sponsor: usize, timeout: Duration) -> Result<Vec<u8>> {
        self.send(sponsor, WIRE_CTRL_CONTEXT, JOIN_REQ_TAG, self.rank() as u64)?;
        let msg: Vec<u8> = self.recv_timeout(sponsor, WIRE_CTRL_CONTEXT, JOIN_STATE_TAG, timeout)?;
        match msg.split_first() {
            Some((1, rest)) if rest.len() >= 4 => Ok(rest[4..].to_vec()),
            Some((_, rest)) => {
                let attempt = rest
                    .get(..4)
                    .map_or(0, |b| u32::from_le_bytes(b.try_into().expect("4 bytes")));
                Err(RuntimeError::ReconfigAborted {
                    context: WIRE_CTRL_CONTEXT,
                    attempt: u64::from(attempt),
                })
            }
            None => Err(RuntimeError::Corrupt { src: sponsor, tag: JOIN_STATE_TAG }),
        }
    }

    /// Snapshot of the wire counters.
    pub fn stats(&self) -> WireStats {
        let s = &self.shared.stats;
        WireStats {
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            frames_received: s.frames_received.load(Ordering::Relaxed),
            corrupt_frames: s.corrupt_frames.load(Ordering::Relaxed),
            duplicates_dropped: s.duplicates_dropped.load(Ordering::Relaxed),
            reconnect_dials: s.reconnect_dials.load(Ordering::Relaxed),
            heartbeat_misses: s.heartbeat_misses.load(Ordering::Relaxed),
            fences_sent: s.fences_sent.load(Ordering::Relaxed),
            zombies_quarantined: s.zombies_quarantined.load(Ordering::Relaxed),
            zombies_readmitted: s.zombies_readmitted.load(Ordering::Relaxed),
            zombies_evicted: s.zombies_evicted.load(Ordering::Relaxed),
            joins_committed: s.joins_committed.load(Ordering::Relaxed),
            joins_aborted: s.joins_aborted.load(Ordering::Relaxed),
        }
    }

    /// A [`Transport`] handle over this node, for code written against
    /// the runtime's transport seam.
    pub fn transport(&self) -> UdsTransport {
        UdsTransport { shared: Arc::clone(&self.shared) }
    }

    /// Orderly shutdown: says goodbye to every live peer, stops the
    /// service threads, closes every link, and removes the socket file.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for peer in 0..self.shared.cur_size() {
            if peer == self.shared.cfg.rank || self.shared.liveness.is_dead(peer) {
                continue;
            }
            let mut sender = self.shared.peers[peer].sender.lock();
            let _ = sender.send_control(FrameKind::Bye);
            sender.shutdown();
        }
        self.shared.abort.store(true, Ordering::Release);
        self.shared.mailbox.wake_all();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(self.shared.cfg.sock_path(self.shared.cfg.rank));
    }
}

impl Drop for WireNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The Unix-domain-socket [`Transport`]: envelopes crossing this seam are
/// codec-encoded into frames. [`Payload::Shared`] — the `Arc`-based
/// zero-clone multicast representation — is rejected: sharing one
/// allocation only means something inside one address space, and a silent
/// deep copy here would falsify the in-proc zero-clone accounting.
pub struct UdsTransport {
    shared: Arc<NodeShared>,
}

impl Transport for UdsTransport {
    fn kind(&self) -> &'static str {
        "uds"
    }

    fn size(&self) -> usize {
        self.shared.cur_size()
    }

    fn capacity(&self) -> usize {
        self.shared.cfg.max_size
    }

    fn deliver(&self, dst: usize, env: Envelope) -> Result<()> {
        match env.payload {
            Payload::Shared { .. } => Err(RuntimeError::TypeMismatch {
                expected: "wire-encodable payload (Payload::Shared is in-proc-only)",
                src: env.src_global,
                tag: env.tag,
            }),
            Payload::Owned(boxed) => {
                let (codec, bytes) = self.shared.registry.encode_any(boxed.as_ref()).ok_or(
                    RuntimeError::TypeMismatch {
                        expected: "a type registered in the CodecRegistry",
                        src: env.src_global,
                        tag: env.tag,
                    },
                )?;
                self.shared.send_encoded(dst, env.context, env.tag, codec, bytes)
            }
        }
    }

    fn deliver_pair(&self, dst: usize, first: Envelope, second: Envelope) -> Result<()> {
        self.deliver(dst, first)?;
        self.deliver(dst, second)
    }

    fn wake_all(&self) {
        self.shared.mailbox.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mxn-wire-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mesh(dir: &Path, n: usize) -> Vec<WireNode> {
        let nodes: Vec<WireNode> = (0..n)
            .map(|r| {
                WireNode::start(WireConfig::new(dir, r, n), CodecRegistry::with_defaults()).unwrap()
            })
            .collect();
        // Connect concurrently: dialing blocks until the peer binds, and
        // every node both dials and is dialed.
        std::thread::scope(|s| {
            for node in &nodes {
                s.spawn(move || node.connect().unwrap());
            }
        });
        nodes
    }

    #[test]
    fn two_nodes_exchange_typed_messages() {
        let dir = test_dir("pair");
        let nodes = mesh(&dir, 2);
        nodes[0].send(1, 7, 3, vec![1.5f64, 2.5]).unwrap();
        nodes[1].send(0, 7, 4, String::from("pong")).unwrap();
        let v: Vec<f64> = nodes[1].recv_timeout(0, 7, 3, Duration::from_secs(5)).unwrap();
        assert_eq!(v, vec![1.5, 2.5]);
        let s: String = nodes[0].recv_timeout(1, 7, 4, Duration::from_secs(5)).unwrap();
        assert_eq!(s, "pong");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fifo_order_per_link() {
        let dir = test_dir("fifo");
        let nodes = mesh(&dir, 2);
        for i in 0..100u64 {
            nodes[0].send(1, 1, 1, i).unwrap();
        }
        for i in 0..100u64 {
            let got: u64 = nodes[1].recv_timeout(0, 1, 1, Duration::from_secs(5)).unwrap();
            assert_eq!(got, i);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unregistered_type_is_a_type_error_not_a_hang() {
        struct Opaque;
        let dir = test_dir("unreg");
        let nodes = mesh(&dir, 2);
        let err = nodes[0].send(1, 1, 1, Opaque).unwrap_err();
        assert!(matches!(err, RuntimeError::TypeMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_payloads_are_rejected_by_the_uds_transport() {
        let dir = test_dir("shared");
        let nodes = mesh(&dir, 2);
        let t = nodes[0].transport();
        let env = Envelope::new(0, 0, 1, 1, 8, None, Payload::shared(Arc::new(5u64)));
        assert!(matches!(t.deliver(1, env), Err(RuntimeError::TypeMismatch { .. })));
        // Owned payloads of registered types go through the same seam.
        let env = Envelope::new(0, 0, 1, 2, 8, None, Payload::owned(9u64));
        t.deliver(1, env).unwrap();
        let got: u64 = nodes[1].recv_timeout(0, 1, 2, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 9);
        assert_eq!(t.kind(), "uds");
        assert_eq!(t.size(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (s, d) pair indexing reads clearer
    fn three_node_mesh_all_pairs() {
        let dir = test_dir("mesh3");
        let nodes = mesh(&dir, 3);
        for s in 0..3 {
            for d in 0..3 {
                if s != d {
                    nodes[s].send(d, 2, (s * 3 + d) as i32, (s as u64, d as u64)).unwrap();
                }
            }
        }
        for s in 0..3 {
            for d in 0..3 {
                if s != d {
                    let got: (u64, u64) = nodes[d]
                        .recv_timeout(s, 2, (s * 3 + d) as i32, Duration::from_secs(5))
                        .unwrap();
                    assert_eq!(got, (s as u64, d as u64));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orderly_shutdown_marks_peer_dead_not_hung() {
        let dir = test_dir("bye");
        let mut nodes = mesh(&dir, 2);
        let n1 = nodes.pop().unwrap();
        n1.shutdown();
        assert!(nodes[0].await_death(1, Duration::from_secs(5)), "Bye marks the peer dead");
        let err = nodes[0].recv::<u64>(1, 1, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::PeerDead { rank: 1 }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abrupt_death_is_detected_and_survivors_agree() {
        let dir = test_dir("crash");
        let mut nodes = mesh(&dir, 3);
        // Simulate a crash of rank 2: close its sockets without Bye.
        let crashed = nodes.pop().unwrap();
        {
            // Mark shutdown without the goodbye protocol: readers on the
            // peers see raw EOF, exactly like a kill -9.
            crashed.shared.shutdown.store(true, Ordering::Release);
            for peer in 0..2 {
                crashed.shared.peers[peer].sender.lock().shutdown();
            }
        }
        for node in &nodes {
            assert!(
                node.await_death(2, Duration::from_secs(10)),
                "rank {} never declared 2 dead",
                node.rank()
            );
        }
        let survivors = std::thread::scope(|s| {
            let handles: Vec<_> = nodes
                .iter()
                .map(|n| s.spawn(move || n.agree_survivors(1, Duration::from_secs(5)).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        assert_eq!(survivors[0], vec![0, 1]);
        assert_eq!(survivors[1], vec![0, 1]);
        drop(crashed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn mesh_max(dir: &Path, n: usize, max: usize) -> Vec<WireNode> {
        let nodes: Vec<WireNode> = (0..n)
            .map(|r| {
                let mut cfg = WireConfig::new(dir, r, n);
                cfg.max_size = max;
                WireNode::start(cfg, CodecRegistry::with_defaults()).unwrap()
            })
            .collect();
        std::thread::scope(|s| {
            for node in &nodes {
                s.spawn(move || node.connect().unwrap());
            }
        });
        nodes
    }

    #[test]
    fn zombie_peer_is_quarantined_then_evicted() {
        let dir = test_dir("zombie");
        std::fs::create_dir_all(&dir).unwrap();
        // Rank 0 plays the SIGSTOP'd zombie: its listener's kernel backlog
        // accepts every dial, but the "application" never reads a byte and
        // never speaks. Heartbeat-miss → reconnect loops forever; only the
        // frozen watermark tells the truth.
        let _zombie = UnixListener::bind(dir.join("rank_0.sock")).unwrap();
        let mut cfg = WireConfig::new(&dir, 1, 2);
        cfg.quarantine_grace = Duration::from_millis(400);
        let node = WireNode::start(cfg, CodecRegistry::with_defaults()).unwrap();
        node.connect().unwrap();
        // Outstanding data: the stall detector needs something undelivered.
        node.send(0, 1, 1, 7u64).unwrap();
        assert!(node.await_quarantine(0, Duration::from_secs(10)), "watermark stall missed");
        assert!(node.is_dead(0), "quarantine poisons liveness immediately");
        let deadline = Instant::now() + Duration::from_secs(10);
        while !node.is_evicted(0) {
            assert!(Instant::now() < deadline, "grace expiry never evicted");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!node.is_quarantined(0), "eviction supersedes quarantine");
        let stats = node.stats();
        assert!(stats.fences_sent >= 1);
        assert_eq!(stats.zombies_quarantined, 1);
        assert_eq!(stats.zombies_evicted, 1);
        assert_eq!(stats.zombies_readmitted, 0);
        assert!(matches!(node.send(0, 1, 1, 8u64), Err(RuntimeError::PeerDead { rank: 0 })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spare_node_joins_and_the_mesh_grows() {
        let dir = test_dir("join");
        let nodes = mesh_max(&dir, 3, 4);
        let mut cfg = WireConfig::new(&dir, 3, 4);
        cfg.max_size = 4;
        let spare = WireNode::start(cfg, CodecRegistry::with_defaults()).unwrap();
        let t = Duration::from_secs(10);
        std::thread::scope(|s| {
            let sponsor = s.spawn(|| nodes[0].expand_mesh(0, b"step=42", t).unwrap());
            let v1 = s.spawn(|| nodes[1].join_vote(0, t).unwrap());
            let v2 = s.spawn(|| nodes[2].join_vote(0, t).unwrap());
            let newcomer = s.spawn(|| {
                spare.connect().unwrap();
                spare.join_mesh(0, t).unwrap()
            });
            assert_eq!(sponsor.join().unwrap(), 4);
            assert_eq!(v1.join().unwrap(), 3);
            assert_eq!(v2.join().unwrap(), 3);
            assert_eq!(newcomer.join().unwrap(), b"step=42".to_vec());
        });
        for node in &nodes {
            assert_eq!(node.size(), 4, "rank {} never grew", node.rank());
        }
        // The admitted rank is a first-class member: traffic both ways.
        nodes[1].send(3, 2, 9, 123u64).unwrap();
        let got: u64 = spare.recv_timeout(1, 2, 9, t).unwrap();
        assert_eq!(got, 123);
        spare.send(2, 2, 10, 321u64).unwrap();
        let got: u64 = nodes[2].recv_timeout(3, 2, 10, t).unwrap();
        assert_eq!(got, 321);
        assert_eq!(nodes[0].stats().joins_committed, 1);
        let transport = nodes[0].transport();
        assert_eq!(transport.size(), 4);
        assert_eq!(transport.capacity(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expand_without_a_newcomer_aborts_and_rolls_back() {
        let dir = test_dir("join-abort");
        let nodes = mesh_max(&dir, 2, 3);
        let err = nodes[0].expand_mesh(5, b"", Duration::from_millis(300)).unwrap_err();
        assert!(
            matches!(err, RuntimeError::ReconfigAborted { context: WIRE_CTRL_CONTEXT, attempt: 5 }),
            "got {err:?}"
        );
        assert_eq!(nodes[0].size(), 2, "membership rolled back");
        assert_eq!(nodes[0].stats().joins_aborted, 1);
        // The old mesh is untouched by the aborted attempt.
        nodes[0].send(1, 1, 1, 11u64).unwrap();
        let got: u64 = nodes[1].recv_timeout(0, 1, 1, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn messages_sent_while_disconnected_resume_after_reconnect() {
        let dir = test_dir("resume");
        let nodes = mesh(&dir, 2);
        // Tear down the link from under node 1 (the dialer side).
        nodes[1].shared.peers[0].sender.lock().shutdown();
        nodes[1].shared.peers[0].sender.lock().detach();
        nodes[1].shared.mark_disconnected(0);
        // Send while down: frames land in the ring.
        for i in 0..5u64 {
            nodes[1].send(0, 3, 3, i * 10).unwrap();
        }
        // The monitor redials, Hello resumes, and the ring drains.
        for i in 0..5u64 {
            let got: u64 = nodes[0].recv_timeout(1, 3, 3, Duration::from_secs(10)).unwrap();
            assert_eq!(got, i * 10);
        }
        assert!(nodes[0].stats().frames_received >= 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
