//! A wire-transport node: one OS process's endpoint in a UDS mesh.
//!
//! Each of the `size` participants binds `dir/rank_<r>.sock` and the mesh
//! is completed by the *higher* rank dialing the lower — every pair gets
//! exactly one bidirectional stream. On top of that sit the robustness
//! layers, bottom to top:
//!
//! * **Framing + CRC** ([`crate::frame`]): damage is detected, reported as
//!   a `WireFrameCorrupt` trace event, surfaced to the blocked receiver as
//!   [`RuntimeError::Corrupt`] when the header was routable, and the
//!   stream resyncs.
//! * **Sequencing + session resume** ([`crate::link`]): data frames carry
//!   per-link sequence numbers; a reconnecting peer announces the highest
//!   one it saw (`Hello`) and the sender replays the missing tail from its
//!   ring, while the receiver's duplicate guard drops any overlap — at
//!   the link layer, disconnects lose nothing the ring still holds.
//! * **Heartbeats** : every link is beaconed; silence past the liveness
//!   deadline is a `HeartbeatMiss` and tears the link down for reconnect.
//! * **Bounded reconnect**: the dialing side retries with deterministic
//!   seeded exponential backoff (the fault plane's RNG via
//!   [`CallPolicy::retry_pause`]); when attempts exhaust — or, on the
//!   passive side, the reconnect window passes without a new `Hello` —
//!   the peer is *reported dead* in the same [`Liveness`] registry the
//!   in-proc runtime uses, every blocked receive wakes with
//!   [`RuntimeError::PeerDead`], and recovery proceeds exactly as for an
//!   in-proc rank death: agree on survivors, shrink, go on.
//!
//! The mailbox behind `recv` *is* `mxn_runtime::mailbox::Mailbox` — the
//! wire transport changes how envelopes arrive, not how they match.

use std::any::Any;
use std::io::{self, Read};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mxn_framework::CallPolicy;
use mxn_runtime::envelope::{Envelope, Payload, Src, Tag};
use mxn_runtime::fault::Liveness;
use mxn_runtime::mailbox::{Mailbox, PeerRef};
use mxn_runtime::membership::Revocations;
use mxn_runtime::{splitmix64, Result, RuntimeError, Transport};
use mxn_trace::{emit, emit_instant, EventId, Phase, TraceHandle};

use crate::codec::CodecRegistry;
use crate::fault::WireFaults;
use crate::frame::{Frame, FrameError, FrameKind, FrameReader};
use crate::link::LinkSender;

use std::os::unix::net::{UnixListener, UnixStream};

/// Context id reserved for the node's own control protocol (survivor
/// agreement); application traffic must stay below it.
pub const WIRE_CTRL_CONTEXT: u32 = 0xffff_fff0;

/// Configuration of one wire node.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Directory holding the per-rank socket files.
    pub dir: PathBuf,
    /// This process's global rank.
    pub rank: usize,
    /// Total participants in the mesh.
    pub size: usize,
    /// Interval between heartbeat frames on every live link.
    pub heartbeat: Duration,
    /// Silence beyond this is a heartbeat miss: the link is torn down and
    /// reconnect (or the passive reconnect window) begins.
    pub liveness_deadline: Duration,
    /// Reconnect attempts after the first (total dials = attempts + 1)
    /// before the peer is declared dead.
    pub reconnect_attempts: u32,
    /// Base reconnect backoff; doubles per attempt, jittered by `seed`.
    pub reconnect_backoff: Duration,
    /// How long `connect` waits for the full mesh at startup.
    pub connect_timeout: Duration,
    /// Seed for reconnect jitter (and anything else that must replay).
    pub seed: u64,
    /// Frame-layer fault injection policy.
    pub faults: WireFaults,
}

impl WireConfig {
    /// Defaults tuned for tests: sub-second failure detection.
    pub fn new(dir: impl Into<PathBuf>, rank: usize, size: usize) -> Self {
        WireConfig {
            dir: dir.into(),
            rank,
            size,
            heartbeat: Duration::from_millis(20),
            liveness_deadline: Duration::from_millis(250),
            reconnect_attempts: 4,
            reconnect_backoff: Duration::from_millis(25),
            connect_timeout: Duration::from_secs(10),
            seed: 1,
            faults: WireFaults::none(),
        }
    }

    /// Socket path of `rank` under this configuration.
    pub fn sock_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("rank_{rank}.sock"))
    }

    /// The longest a passive side waits for a dialer to come back before
    /// declaring it dead: the dialer's full (un-jittered) backoff schedule
    /// plus one liveness deadline of slack.
    pub fn reconnect_window(&self) -> Duration {
        let mut total = Duration::ZERO;
        let mut base = self.reconnect_backoff;
        for _ in 0..=self.reconnect_attempts {
            total += base;
            base = base.saturating_mul(2);
        }
        total + self.liveness_deadline * 2
    }
}

/// Monotone wire-level counters (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Data frames handed to the link layer.
    pub frames_sent: u64,
    /// Data frames delivered into the mailbox.
    pub frames_received: u64,
    /// Frames rejected by CRC/framing checks.
    pub corrupt_frames: u64,
    /// Duplicate data frames suppressed by the resume guard.
    pub duplicates_dropped: u64,
    /// Reconnect dials attempted.
    pub reconnect_dials: u64,
    /// Heartbeat misses observed.
    pub heartbeat_misses: u64,
}

#[derive(Default)]
struct StatsInner {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    corrupt_frames: AtomicU64,
    duplicates_dropped: AtomicU64,
    reconnect_dials: AtomicU64,
    heartbeat_misses: AtomicU64,
}

/// Per-peer connection state. The `LinkSender` (sequencing, ring) persists
/// across socket generations; everything else is per-connection.
struct Peer {
    sender: Mutex<LinkSender>,
    /// Last time any intact frame arrived from this peer.
    last_heard: Mutex<Instant>,
    /// Last time we beaconed this peer.
    last_beat: Mutex<Instant>,
    /// When the link dropped; `None` while connected or never-connected.
    disconnected_at: Mutex<Option<Instant>>,
    /// Whether the link has ever been established (gates the monitor).
    ever_connected: AtomicBool,
    /// Bumped on every (re)attach; readers use it to tell whether the
    /// stream that failed is still the current one.
    generation: AtomicU64,
    /// Highest data seq received from this peer (duplicate guard + the
    /// value announced in our `Hello`s).
    last_recv_seq: AtomicU64,
    /// The peer's session id, to detect a restarted peer process.
    session: AtomicU64,
    /// A reconnect thread is in flight.
    reconnecting: AtomicBool,
}

impl Peer {
    fn new(src: u32, dst: u32, faults: WireFaults) -> Self {
        let now = Instant::now();
        Peer {
            sender: Mutex::new(LinkSender::new(src, dst, faults)),
            last_heard: Mutex::new(now),
            last_beat: Mutex::new(now),
            disconnected_at: Mutex::new(None),
            ever_connected: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            last_recv_seq: AtomicU64::new(0),
            session: AtomicU64::new(0),
            reconnecting: AtomicBool::new(false),
        }
    }
}

struct NodeShared {
    cfg: WireConfig,
    /// This process incarnation's session id (announced in `Hello`).
    session: u64,
    mailbox: Mailbox,
    liveness: Arc<Liveness>,
    registry: CodecRegistry,
    peers: Vec<Peer>,
    abort: Arc<AtomicBool>,
    shutdown: AtomicBool,
    stats: StatsInner,
    /// Recorder the node's internal threads install, so wire spans
    /// (connect/reconnect/corrupt/heartbeat-miss) land in Chrome traces.
    trace: Option<TraceHandle>,
}

impl NodeShared {
    /// Installs this node's trace recorder on the calling thread (no-op
    /// without one). Every internal thread calls this at entry.
    fn install_trace(&self) -> Option<mxn_trace::InstallGuard> {
        self.trace.as_ref().map(TraceHandle::install)
    }
    fn declare_dead(&self, peer: usize) {
        if self.liveness.kill(peer) {
            self.mailbox.wake_all();
        }
    }

    fn mark_disconnected(&self, peer: usize) {
        let mut at = self.peers[peer].disconnected_at.lock();
        if at.is_none() {
            *at = Some(Instant::now());
        }
    }

    /// Routes one decoded frame from `peer`.
    fn handle_frame(self: &Arc<Self>, peer: usize, frame: Frame) {
        match frame.kind {
            FrameKind::Data => {
                let p = &self.peers[peer];
                // Duplicate guard: session resume may replay frames the
                // original delivery already landed.
                if frame.seq <= p.last_recv_seq.load(Ordering::Acquire) {
                    self.stats.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                p.last_recv_seq.store(frame.seq, Ordering::Release);
                let bytes = frame.payload.len();
                match self.registry.decode_any(frame.codec, &frame.payload) {
                    Ok(boxed) => {
                        self.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                        self.mailbox.push(Envelope::new(
                            peer,
                            peer,
                            frame.context,
                            frame.tag,
                            bytes,
                            None,
                            Payload::Owned(boxed),
                        ));
                    }
                    // Bytes passed CRC but no/odd codec: a registry
                    // mismatch between the two processes. Surface it as a
                    // detectable Corrupt — never a panic — so the
                    // receiver's retry/NACK machinery engages.
                    Err(_) => self.push_corrupt(peer, frame.context, frame.tag, bytes),
                }
            }
            FrameKind::Heartbeat => {} // `last_heard` already refreshed
            FrameKind::Hello => {
                if let Ok((session, last_recv)) =
                    crate::codec::decode_value::<(u64, u64)>(&frame.payload)
                {
                    self.note_peer_session(peer, session);
                    let mut sender = self.peers[peer].sender.lock();
                    let _ = sender.resend_since(last_recv);
                }
            }
            FrameKind::Bye => {
                // An orderly goodbye still marks the peer dead: blocked
                // receives must fail fast, exactly as for a crash; the
                // difference is no reconnect is attempted.
                self.declare_dead(peer);
            }
        }
    }

    /// Delivers a checksum-damaged envelope so a receiver blocked on this
    /// `(context, tag)` observes `RuntimeError::Corrupt`, mirroring the
    /// in-proc fault plane's corrupt verdict.
    fn push_corrupt(&self, peer: usize, context: u32, tag: i32, bytes: usize) {
        let mut env = Envelope::new(peer, peer, context, tag, bytes, None, Payload::owned(()));
        env.corrupt();
        self.mailbox.push(env);
    }

    /// Records the peer's session id; a changed id means the peer process
    /// restarted, so its data sequence numbers start over.
    fn note_peer_session(&self, peer: usize, session: u64) {
        let p = &self.peers[peer];
        let prev = p.session.swap(session, Ordering::AcqRel);
        if prev != 0 && prev != session {
            p.last_recv_seq.store(0, Ordering::Release);
        }
    }

    /// Attaches a fresh stream for `peer` and spawns its reader thread.
    /// `reader` carries any bytes already consumed during the handshake.
    fn attach(
        self: &Arc<Self>,
        peer: usize,
        stream: UnixStream,
        reader: FrameReader,
        via_listener: bool,
        attempt: u64,
    ) -> io::Result<()> {
        let p = &self.peers[peer];
        let read_half = stream.try_clone()?;
        let generation = {
            let mut sender = p.sender.lock();
            sender.attach(stream);
            let generation = p.generation.fetch_add(1, Ordering::AcqRel) + 1;
            *p.last_heard.lock() = Instant::now();
            *p.disconnected_at.lock() = None;
            p.ever_connected.store(true, Ordering::Release);
            // Announce our session and what we have seen, triggering the
            // peer's resume replay toward us.
            sender.send_hello(self.session, p.last_recv_seq.load(Ordering::Acquire))?;
            generation
        };
        emit_instant(
            EventId::WireConnect,
            [
                peer as u64,
                attempt,
                self.peers[peer].last_recv_seq.load(Ordering::Relaxed),
                u64::from(via_listener),
            ],
        );
        let shared = Arc::clone(self);
        std::thread::Builder::new().name(format!("wire-read-{}-{peer}", self.cfg.rank)).spawn(
            move || {
                let _trace = shared.install_trace();
                shared.reader_loop(peer, read_half, reader, generation)
            },
        )?;
        Ok(())
    }

    /// Blocking per-connection read loop: bytes → frames → mailbox.
    fn reader_loop(
        self: Arc<Self>,
        peer: usize,
        mut stream: UnixStream,
        mut frames: FrameReader,
        generation: u64,
    ) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            // Drain frames already buffered (handshake leftovers first).
            while let Some(res) = frames.next() {
                *self.peers[peer].last_heard.lock() = Instant::now();
                match res {
                    Ok(frame) => self.handle_frame(peer, frame),
                    Err(FrameError::Corrupt { skipped, header, .. }) => {
                        self.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        emit_instant(
                            EventId::WireFrameCorrupt,
                            [peer as u64, u64::from(header.is_some()), skipped as u64, 0],
                        );
                        if let Some(h) = header {
                            self.push_corrupt(peer, h.context, h.tag, skipped);
                        }
                    }
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break, // EOF or failure: the link is down
                Ok(n) => frames.feed(&buf[..n]),
            }
        }
        // Only the *current* stream's reader tears the link down; a stale
        // generation means a reconnect already replaced us.
        let p = &self.peers[peer];
        if p.generation.load(Ordering::Acquire) == generation
            && !self.shutdown.load(Ordering::Acquire)
        {
            p.sender.lock().detach();
            self.mark_disconnected(peer);
        }
    }

    /// Reads the peer's opening `Hello` off a freshly accepted stream.
    fn read_hello(stream: &UnixStream) -> io::Result<(Frame, FrameReader)> {
        let mut s = stream.try_clone()?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut frames = FrameReader::new();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(res) = frames.next() {
                match res {
                    Ok(f) if f.kind == FrameKind::Hello => {
                        stream.set_read_timeout(None)?;
                        return Ok((f, frames));
                    }
                    // Anything else before Hello is a protocol violation
                    // from an unknown peer: drop the connection.
                    Ok(_) | Err(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "expected Hello as first frame",
                        ));
                    }
                }
            }
            let n = s.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before Hello"));
            }
            frames.feed(&buf[..n]);
        }
    }

    /// Accept loop: polls the nonblocking listener, handshakes inbound
    /// connections, attaches them.
    fn acceptor_loop(self: Arc<Self>, listener: UnixListener) {
        while !self.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self);
                    // Handshake off-thread so one slow dialer cannot stall
                    // the accept queue.
                    let _ = std::thread::Builder::new()
                        .name(format!("wire-hello-{}", self.cfg.rank))
                        .spawn(move || {
                            let _trace = shared.install_trace();
                            if let Ok((hello, frames)) = NodeShared::read_hello(&stream) {
                                let peer = hello.src as usize;
                                if peer < shared.cfg.size && peer != shared.cfg.rank {
                                    if let Ok((session, last_recv)) =
                                        crate::codec::decode_value::<(u64, u64)>(&hello.payload)
                                    {
                                        shared.note_peer_session(peer, session);
                                        let _ = shared.attach(peer, stream, frames, true, 0);
                                        let mut sender = shared.peers[peer].sender.lock();
                                        let _ = sender.resend_since(last_recv);
                                    }
                                }
                            }
                        });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }

    /// Heartbeat/liveness monitor: beacons live links, detects silence,
    /// launches reconnects, and expires the passive reconnect window.
    fn monitor_loop(self: Arc<Self>) {
        let tick = self.cfg.heartbeat / 2;
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(tick);
            let now = Instant::now();
            for peer in 0..self.cfg.size {
                if peer == self.cfg.rank || self.liveness.is_dead(peer) {
                    continue;
                }
                let p = &self.peers[peer];
                if !p.ever_connected.load(Ordering::Acquire) {
                    continue; // still in startup; `connect` owns this phase
                }
                let connected = p.sender.lock().is_connected();
                if connected {
                    if now.duration_since(*p.last_beat.lock()) >= self.cfg.heartbeat {
                        *p.last_beat.lock() = now;
                        let mut sender = p.sender.lock();
                        if sender.send_control(FrameKind::Heartbeat).is_err() {
                            sender.detach();
                            drop(sender);
                            self.mark_disconnected(peer);
                            continue;
                        }
                    }
                    let silence = now.duration_since(*p.last_heard.lock());
                    if silence > self.cfg.liveness_deadline {
                        self.stats.heartbeat_misses.fetch_add(1, Ordering::Relaxed);
                        emit_instant(
                            EventId::HeartbeatMiss,
                            [
                                peer as u64,
                                silence.as_micros() as u64,
                                self.cfg.liveness_deadline.as_micros() as u64,
                                0,
                            ],
                        );
                        // Tear the link down; reconnect (or the passive
                        // window) decides whether the peer is dead.
                        let mut sender = p.sender.lock();
                        sender.shutdown();
                        drop(sender);
                        self.mark_disconnected(peer);
                    }
                } else {
                    let since = p.disconnected_at.lock().map(|at| now.duration_since(at));
                    let Some(since) = since else { continue };
                    if peer < self.cfg.rank {
                        // We are the dialer: bounded reconnect attempts.
                        if !p.reconnecting.swap(true, Ordering::AcqRel) {
                            let shared = Arc::clone(&self);
                            let _ = std::thread::Builder::new()
                                .name(format!("wire-redial-{}-{peer}", self.cfg.rank))
                                .spawn(move || {
                                    let _trace = shared.install_trace();
                                    shared.reconnect_loop(peer)
                                });
                        }
                    } else if since > self.cfg.reconnect_window() {
                        // Passive side: the dialer's whole backoff schedule
                        // has passed without a new Hello. It is gone.
                        self.declare_dead(peer);
                    }
                }
            }
        }
    }

    /// Dials `peer` with seeded exponential backoff; on exhaustion the
    /// peer is declared dead and heal takes over.
    fn reconnect_loop(self: Arc<Self>, peer: usize) {
        emit(EventId::WireReconnect, Phase::Begin, [peer as u64, 0, 0, 0]);
        // The jitter draws come from the same splitmix stream as the
        // in-proc retry plane, keyed so each (rank, peer) pair decorrelates.
        let policy = CallPolicy {
            backoff: self.cfg.reconnect_backoff,
            max_retries: self.cfg.reconnect_attempts,
            jitter: Some(splitmix64(self.cfg.seed ^ ((self.cfg.rank as u64) << 32 | peer as u64))),
            ..CallPolicy::default()
        };
        let mut base = self.cfg.reconnect_backoff;
        for attempt in 0..=self.cfg.reconnect_attempts {
            if self.shutdown.load(Ordering::Acquire) || self.liveness.is_dead(peer) {
                break;
            }
            self.stats.reconnect_dials.fetch_add(1, Ordering::Relaxed);
            if let Ok(stream) = UnixStream::connect(self.cfg.sock_path(peer)) {
                if self.attach(peer, stream, FrameReader::new(), false, u64::from(attempt)).is_ok()
                {
                    emit(
                        EventId::WireReconnect,
                        Phase::End,
                        [peer as u64, u64::from(attempt), 1, 0],
                    );
                    self.peers[peer].reconnecting.store(false, Ordering::Release);
                    return;
                }
            }
            std::thread::sleep(policy.retry_pause(base, attempt));
            base = base.saturating_mul(2);
        }
        emit(
            EventId::WireReconnect,
            Phase::End,
            [peer as u64, u64::from(self.cfg.reconnect_attempts) + 1, 0, 0],
        );
        self.declare_dead(peer);
        self.peers[peer].reconnecting.store(false, Ordering::Release);
    }

    /// Encodes and sends one type-erased payload to `dst`. A send while
    /// the link is down still succeeds: the frame enters the resend ring
    /// and session resume redelivers it (or the peer is declared dead and
    /// later operations fail with `PeerDead`).
    fn send_encoded(
        &self,
        dst: usize,
        context: u32,
        tag: i32,
        codec: u32,
        bytes: Vec<u8>,
    ) -> Result<()> {
        if dst >= self.cfg.size {
            return Err(RuntimeError::InvalidRank { rank: dst, size: self.cfg.size });
        }
        if self.liveness.is_dead(dst) {
            return Err(RuntimeError::PeerDead { rank: dst });
        }
        if self.shutdown.load(Ordering::Acquire) {
            return Err(RuntimeError::Aborted);
        }
        let p = &self.peers[dst];
        let mut sender = p.sender.lock();
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        if sender.send_data(context, tag, codec, bytes).is_err() {
            // The write failed but the frame is ring-retained; the
            // reconnect/resume machinery owns redelivery from here.
            sender.detach();
            drop(sender);
            self.mark_disconnected(dst);
        }
        Ok(())
    }
}

/// A running wire-transport endpoint. See the module docs for the design.
pub struct WireNode {
    shared: Arc<NodeShared>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl WireNode {
    /// Binds this rank's socket and starts the acceptor and monitor
    /// threads. The mesh is not connected until [`WireNode::connect`].
    pub fn start(cfg: WireConfig, registry: CodecRegistry) -> io::Result<WireNode> {
        Self::start_traced(cfg, registry, None)
    }

    /// [`WireNode::start`] with a trace recorder the node's internal
    /// threads install, so wire events show up in Chrome traces.
    pub fn start_traced(
        cfg: WireConfig,
        registry: CodecRegistry,
        trace: Option<TraceHandle>,
    ) -> io::Result<WireNode> {
        std::fs::create_dir_all(&cfg.dir)?;
        let path = cfg.sock_path(cfg.rank);
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let abort = Arc::new(AtomicBool::new(false));
        let liveness = Arc::new(Liveness::new(cfg.size));
        let revocations = Arc::new(Revocations::default());
        let session = splitmix64((u64::from(std::process::id()) << 20) ^ cfg.rank as u64 | 1);
        let peers =
            (0..cfg.size).map(|peer| Peer::new(cfg.rank as u32, peer as u32, cfg.faults)).collect();
        let shared = Arc::new(NodeShared {
            mailbox: Mailbox::new(abort.clone(), liveness.clone(), revocations),
            session,
            liveness,
            registry,
            peers,
            abort,
            shutdown: AtomicBool::new(false),
            stats: StatsInner::default(),
            trace,
            cfg,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new().name(format!("wire-accept-{}", shared.cfg.rank)).spawn(
                move || {
                    let _trace = shared.install_trace();
                    let s = Arc::clone(&shared);
                    s.acceptor_loop(listener)
                },
            )?
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new().name(format!("wire-monitor-{}", shared.cfg.rank)).spawn(
                move || {
                    let _trace = shared.install_trace();
                    shared.monitor_loop()
                },
            )?
        };
        Ok(WireNode { shared, acceptor: Some(acceptor), monitor: Some(monitor) })
    }

    /// Completes the mesh: dials every lower rank (retrying while peers
    /// are still binding) and waits until every higher rank has dialed us.
    pub fn connect(&self) -> io::Result<()> {
        let cfg = &self.shared.cfg;
        let deadline = Instant::now() + cfg.connect_timeout;
        for peer in 0..cfg.rank {
            loop {
                match UnixStream::connect(cfg.sock_path(peer)) {
                    Ok(stream) => {
                        self.shared.attach(peer, stream, FrameReader::new(), false, 0)?;
                        break;
                    }
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("rank {peer} never bound its socket: {e}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        }
        // Higher ranks dial us; wait for all of them.
        for peer in cfg.rank + 1..cfg.size {
            loop {
                if self.shared.peers[peer].ever_connected.load(Ordering::Acquire) {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("rank {peer} never dialed us"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(())
    }

    /// This node's global rank.
    pub fn rank(&self) -> usize {
        self.shared.cfg.rank
    }

    /// Mesh size.
    pub fn size(&self) -> usize {
        self.shared.cfg.size
    }

    /// The shared liveness registry — the same type, with the same
    /// semantics, the in-proc world uses.
    pub fn liveness(&self) -> &Arc<Liveness> {
        &self.shared.liveness
    }

    /// Whether `rank` has been declared dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.shared.liveness.is_dead(rank)
    }

    /// Blocks until `rank` is declared dead or `timeout` passes; returns
    /// whether it died in time.
    pub fn await_death(&self, rank: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_dead(rank) {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Arms or disarms frame-layer fault injection on every link (the
    /// wire analogue of `Process::set_faults_armed`).
    pub fn set_faults_armed(&self, armed: bool) {
        for peer in 0..self.shared.cfg.size {
            if peer != self.shared.cfg.rank {
                self.shared.peers[peer].sender.lock().set_armed(armed);
            }
        }
    }

    /// Sends `value` to `dst`'s mailbox bucket `(context, tag)`. The type
    /// must be registered in both processes' codec registries.
    pub fn send<T: Any + Send>(&self, dst: usize, context: u32, tag: i32, value: T) -> Result<()> {
        let (codec, bytes) =
            self.shared.registry.encode_any(&value).ok_or(RuntimeError::TypeMismatch {
                expected: std::any::type_name::<T>(),
                src: self.shared.cfg.rank,
                tag,
            })?;
        self.shared.send_encoded(dst, context, tag, codec, bytes)
    }

    /// Receives a `T` from `src` on `(context, tag)`, blocking until it
    /// arrives, `src` is declared dead, or a damaged frame for this bucket
    /// surfaces as [`RuntimeError::Corrupt`].
    pub fn recv<T: Any>(&self, src: usize, context: u32, tag: i32) -> Result<T> {
        let env = self.shared.mailbox.take(
            context,
            Src::Rank(src),
            Tag::Value(tag),
            &[PeerRef { global: src, local: src }],
        )?;
        Self::unpack(env, src, tag)
    }

    /// [`WireNode::recv`] with a deadline.
    pub fn recv_timeout<T: Any>(
        &self,
        src: usize,
        context: u32,
        tag: i32,
        timeout: Duration,
    ) -> Result<T> {
        let env = self.shared.mailbox.take_timeout(
            context,
            Src::Rank(src),
            Tag::Value(tag),
            timeout,
            &[PeerRef { global: src, local: src }],
        )?;
        Self::unpack(env, src, tag)
    }

    fn unpack<T: Any>(env: Envelope, src: usize, tag: i32) -> Result<T> {
        if !env.verify() {
            return Err(RuntimeError::Corrupt { src, tag });
        }
        env.payload.into_owned::<T>().map(|(v, _)| v).map_err(|_| RuntimeError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            src,
            tag,
        })
    }

    /// Agrees with the surviving peers on who is alive: two rounds of
    /// dead-set exchange on the reserved control context (round two
    /// spreads unions, so every survivor leaves with the same set — the
    /// wire analogue of the membership plane's agreement). Peers that stay
    /// silent past `timeout` are treated as dead.
    pub fn agree_survivors(&self, epoch: u32, timeout: Duration) -> Result<Vec<usize>> {
        let size = self.shared.cfg.size;
        assert!(size <= 64, "bitmap agreement supports up to 64 ranks");
        let me = self.shared.cfg.rank;
        let mut view: u64 = 0;
        for r in self.shared.liveness.dead_ranks() {
            view |= 1 << r;
        }
        for round in 0..2i32 {
            let tag = (epoch as i32) * 2 + round;
            let audience: Vec<usize> =
                (0..size).filter(|&r| r != me && view & (1 << r) == 0).collect();
            for &r in &audience {
                match self.send(r, WIRE_CTRL_CONTEXT, tag, view) {
                    Ok(()) | Err(RuntimeError::PeerDead { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            for &r in &audience {
                match self.recv_timeout::<u64>(r, WIRE_CTRL_CONTEXT, tag, timeout) {
                    Ok(bits) => view |= bits,
                    Err(RuntimeError::PeerDead { .. }) | Err(RuntimeError::Timeout { .. }) => {
                        view |= 1 << r;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok((0..size).filter(|r| view & (1 << r) == 0).collect())
    }

    /// Snapshot of the wire counters.
    pub fn stats(&self) -> WireStats {
        let s = &self.shared.stats;
        WireStats {
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            frames_received: s.frames_received.load(Ordering::Relaxed),
            corrupt_frames: s.corrupt_frames.load(Ordering::Relaxed),
            duplicates_dropped: s.duplicates_dropped.load(Ordering::Relaxed),
            reconnect_dials: s.reconnect_dials.load(Ordering::Relaxed),
            heartbeat_misses: s.heartbeat_misses.load(Ordering::Relaxed),
        }
    }

    /// A [`Transport`] handle over this node, for code written against
    /// the runtime's transport seam.
    pub fn transport(&self) -> UdsTransport {
        UdsTransport { shared: Arc::clone(&self.shared) }
    }

    /// Orderly shutdown: says goodbye to every live peer, stops the
    /// service threads, closes every link, and removes the socket file.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for peer in 0..self.shared.cfg.size {
            if peer == self.shared.cfg.rank || self.shared.liveness.is_dead(peer) {
                continue;
            }
            let mut sender = self.shared.peers[peer].sender.lock();
            let _ = sender.send_control(FrameKind::Bye);
            sender.shutdown();
        }
        self.shared.abort.store(true, Ordering::Release);
        self.shared.mailbox.wake_all();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(self.shared.cfg.sock_path(self.shared.cfg.rank));
    }
}

impl Drop for WireNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The Unix-domain-socket [`Transport`]: envelopes crossing this seam are
/// codec-encoded into frames. [`Payload::Shared`] — the `Arc`-based
/// zero-clone multicast representation — is rejected: sharing one
/// allocation only means something inside one address space, and a silent
/// deep copy here would falsify the in-proc zero-clone accounting.
pub struct UdsTransport {
    shared: Arc<NodeShared>,
}

impl Transport for UdsTransport {
    fn kind(&self) -> &'static str {
        "uds"
    }

    fn size(&self) -> usize {
        self.shared.cfg.size
    }

    fn deliver(&self, dst: usize, env: Envelope) -> Result<()> {
        match env.payload {
            Payload::Shared { .. } => Err(RuntimeError::TypeMismatch {
                expected: "wire-encodable payload (Payload::Shared is in-proc-only)",
                src: env.src_global,
                tag: env.tag,
            }),
            Payload::Owned(boxed) => {
                let (codec, bytes) = self.shared.registry.encode_any(boxed.as_ref()).ok_or(
                    RuntimeError::TypeMismatch {
                        expected: "a type registered in the CodecRegistry",
                        src: env.src_global,
                        tag: env.tag,
                    },
                )?;
                self.shared.send_encoded(dst, env.context, env.tag, codec, bytes)
            }
        }
    }

    fn deliver_pair(&self, dst: usize, first: Envelope, second: Envelope) -> Result<()> {
        self.deliver(dst, first)?;
        self.deliver(dst, second)
    }

    fn wake_all(&self) {
        self.shared.mailbox.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mxn-wire-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mesh(dir: &Path, n: usize) -> Vec<WireNode> {
        let nodes: Vec<WireNode> = (0..n)
            .map(|r| {
                WireNode::start(WireConfig::new(dir, r, n), CodecRegistry::with_defaults()).unwrap()
            })
            .collect();
        // Connect concurrently: dialing blocks until the peer binds, and
        // every node both dials and is dialed.
        std::thread::scope(|s| {
            for node in &nodes {
                s.spawn(move || node.connect().unwrap());
            }
        });
        nodes
    }

    #[test]
    fn two_nodes_exchange_typed_messages() {
        let dir = test_dir("pair");
        let nodes = mesh(&dir, 2);
        nodes[0].send(1, 7, 3, vec![1.5f64, 2.5]).unwrap();
        nodes[1].send(0, 7, 4, String::from("pong")).unwrap();
        let v: Vec<f64> = nodes[1].recv_timeout(0, 7, 3, Duration::from_secs(5)).unwrap();
        assert_eq!(v, vec![1.5, 2.5]);
        let s: String = nodes[0].recv_timeout(1, 7, 4, Duration::from_secs(5)).unwrap();
        assert_eq!(s, "pong");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fifo_order_per_link() {
        let dir = test_dir("fifo");
        let nodes = mesh(&dir, 2);
        for i in 0..100u64 {
            nodes[0].send(1, 1, 1, i).unwrap();
        }
        for i in 0..100u64 {
            let got: u64 = nodes[1].recv_timeout(0, 1, 1, Duration::from_secs(5)).unwrap();
            assert_eq!(got, i);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unregistered_type_is_a_type_error_not_a_hang() {
        struct Opaque;
        let dir = test_dir("unreg");
        let nodes = mesh(&dir, 2);
        let err = nodes[0].send(1, 1, 1, Opaque).unwrap_err();
        assert!(matches!(err, RuntimeError::TypeMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_payloads_are_rejected_by_the_uds_transport() {
        let dir = test_dir("shared");
        let nodes = mesh(&dir, 2);
        let t = nodes[0].transport();
        let env = Envelope::new(0, 0, 1, 1, 8, None, Payload::shared(Arc::new(5u64)));
        assert!(matches!(t.deliver(1, env), Err(RuntimeError::TypeMismatch { .. })));
        // Owned payloads of registered types go through the same seam.
        let env = Envelope::new(0, 0, 1, 2, 8, None, Payload::owned(9u64));
        t.deliver(1, env).unwrap();
        let got: u64 = nodes[1].recv_timeout(0, 1, 2, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 9);
        assert_eq!(t.kind(), "uds");
        assert_eq!(t.size(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (s, d) pair indexing reads clearer
    fn three_node_mesh_all_pairs() {
        let dir = test_dir("mesh3");
        let nodes = mesh(&dir, 3);
        for s in 0..3 {
            for d in 0..3 {
                if s != d {
                    nodes[s].send(d, 2, (s * 3 + d) as i32, (s as u64, d as u64)).unwrap();
                }
            }
        }
        for s in 0..3 {
            for d in 0..3 {
                if s != d {
                    let got: (u64, u64) = nodes[d]
                        .recv_timeout(s, 2, (s * 3 + d) as i32, Duration::from_secs(5))
                        .unwrap();
                    assert_eq!(got, (s as u64, d as u64));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orderly_shutdown_marks_peer_dead_not_hung() {
        let dir = test_dir("bye");
        let mut nodes = mesh(&dir, 2);
        let n1 = nodes.pop().unwrap();
        n1.shutdown();
        assert!(nodes[0].await_death(1, Duration::from_secs(5)), "Bye marks the peer dead");
        let err = nodes[0].recv::<u64>(1, 1, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::PeerDead { rank: 1 }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abrupt_death_is_detected_and_survivors_agree() {
        let dir = test_dir("crash");
        let mut nodes = mesh(&dir, 3);
        // Simulate a crash of rank 2: close its sockets without Bye.
        let crashed = nodes.pop().unwrap();
        {
            // Mark shutdown without the goodbye protocol: readers on the
            // peers see raw EOF, exactly like a kill -9.
            crashed.shared.shutdown.store(true, Ordering::Release);
            for peer in 0..2 {
                crashed.shared.peers[peer].sender.lock().shutdown();
            }
        }
        for node in &nodes {
            assert!(
                node.await_death(2, Duration::from_secs(10)),
                "rank {} never declared 2 dead",
                node.rank()
            );
        }
        let survivors = std::thread::scope(|s| {
            let handles: Vec<_> = nodes
                .iter()
                .map(|n| s.spawn(move || n.agree_survivors(1, Duration::from_secs(5)).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        assert_eq!(survivors[0], vec![0, 1]);
        assert_eq!(survivors[1], vec![0, 1]);
        drop(crashed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn messages_sent_while_disconnected_resume_after_reconnect() {
        let dir = test_dir("resume");
        let nodes = mesh(&dir, 2);
        // Tear down the link from under node 1 (the dialer side).
        nodes[1].shared.peers[0].sender.lock().shutdown();
        nodes[1].shared.peers[0].sender.lock().detach();
        nodes[1].shared.mark_disconnected(0);
        // Send while down: frames land in the ring.
        for i in 0..5u64 {
            nodes[1].send(0, 3, 3, i * 10).unwrap();
        }
        // The monitor redials, Hello resumes, and the ring drains.
        for i in 0..5u64 {
            let got: u64 = nodes[0].recv_timeout(1, 3, 3, Duration::from_secs(10)).unwrap();
            assert_eq!(got, i * 10);
        }
        assert!(nodes[0].stats().frames_received >= 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
